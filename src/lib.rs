//! # temporal-sampling
//!
//! A from-scratch Rust reproduction of *Temporally-Biased Sampling for Online
//! Model Management* (Hentschel, Haas & Tian, EDBT 2018, arXiv:1801.09709).
//!
//! The library maintains stream samples whose item-inclusion probabilities
//! decay exponentially in wall-clock time, so that periodically retrained
//! machine-learning models emphasize recent data while retaining a controlled
//! amount of history. The headline algorithm, [`tbs_core::rtbs::RTbs`], is the
//! first sampling scheme that simultaneously
//!
//! 1. enforces the exact exponential relative-inclusion property
//!    `Pr[i ∈ S_t] / Pr[j ∈ S_t] = exp(-λ (t'' − t'))` at all times,
//! 2. guarantees a hard upper bound on the sample size, and
//! 3. tolerates unknown, arbitrarily varying data arrival rates.
//!
//! ## Crate map
//!
//! * [`stats`] — probability substrate: exact binomial / hypergeometric /
//!   multivariate-hypergeometric variate generators, jump-ahead PRNG streams,
//!   stochastic rounding, and the expected-shortfall risk measure.
//! * [`core`] — the sampling algorithms themselves: R-TBS, T-TBS, B-TBS,
//!   batched reservoir sampling, batched time-decayed Chao, sliding windows,
//!   and the closed-form theory of Theorem 3.1.
//! * [`datagen`] — the paper's evaluation workloads: batch-size processes,
//!   normal/abnormal mode schedules, Gaussian-mixture classification streams,
//!   drifting linear-regression streams, and a synthetic Usenet2 substitute.
//! * [`ml`] — from-scratch learners retrained on the maintained samples:
//!   kNN, OLS linear regression, multinomial naive Bayes, plus the online
//!   model-management pipeline and evaluation metrics.
//! * [`distributed`] — a simulated Spark-like cluster substrate running
//!   D-R-TBS and D-T-TBS with co-partitioned or key-value-store reservoirs
//!   and centralized or distributed insert/delete decisions — plus the
//!   real multi-core sharded ingest engine
//!   (`distributed::engine::ParallelIngestEngine`), which maintains one
//!   mergeable sampler per worker thread and combines them exactly on
//!   demand (`core::merge`).
//!
//! ## Quickstart
//!
//! The [`api`] module is the front door: one validating builder for every
//! sampling algorithm (and the multi-core sharded engine), a unified
//! [`api::Sampler`] handle that owns its RNG, versioned
//! snapshot/restore, and a [`api::ModelManager`] that closes the paper's
//! retraining loop.
//!
//! ```
//! use temporal_sampling::api::SamplerConfig;
//!
//! // R-TBS: decay rate λ = 0.07, hard sample-size bound n = 100.
//! let config = SamplerConfig::rtbs(0.07, 100).seed(42);
//! let mut sampler = config.build::<u64>().expect("valid config");
//! for t in 0..50u64 {
//!     sampler.observe((0..20).map(|i| t * 20 + i).collect()).unwrap();
//! }
//! assert!(sampler.sample().unwrap().len() <= 100);
//!
//! // Invalid configs are errors, not panics…
//! assert!(SamplerConfig::rtbs(-1.0, 100).build::<u64>().is_err());
//!
//! // …and the complete state (RNG position included) round-trips
//! // through a versioned blob, continuing bit-identically.
//! let blob = sampler.snapshot().unwrap();
//! let mut restored = temporal_sampling::api::Sampler::restore(&config, blob).unwrap();
//! sampler.observe((0..20).collect()).unwrap();
//! restored.observe((0..20).collect()).unwrap();
//! assert_eq!(sampler.sample().unwrap(), restored.sample().unwrap());
//! ```
//!
//! The per-crate expert layer below remains fully available — e.g.
//! [`tbs_core::rtbs::RTbs::new`] with a caller-supplied RNG for hot loops
//! that manage their own randomness (see the `api` docs for the
//! migration table).

pub mod api;

pub use tbs_core as core;
pub use tbs_datagen as datagen;
pub use tbs_distributed as distributed;
pub use tbs_ml as ml;
pub use tbs_stats as stats;

/// Convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use crate::api::{
        Algorithm, IngestMode, ModelManager, RetrainPolicy, Sampler, SamplerConfig, TbsError,
        TimeSemantics,
    };
    pub use tbs_core::brs::BatchedReservoir;
    pub use tbs_core::btbs::BTbs;
    pub use tbs_core::chao::BChao;
    pub use tbs_core::rtbs::RTbs;
    pub use tbs_core::sliding::{CountWindow, TimeWindow};
    pub use tbs_core::traits::{BatchSampler, TimedBatchSampler};
    pub use tbs_core::ttbs::TTbs;
    pub use tbs_stats::rng::Xoshiro256PlusPlus;
    pub use tbs_stats::summary::{expected_shortfall, OnlineMoments};
}
