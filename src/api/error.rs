//! The unified error type of the public API.
//!
//! The expert layer underneath (`tbs_core`, `tbs_distributed`) validates
//! with `assert!` — appropriate for internal invariants, hostile to
//! service code that assembles configurations from user input. Every
//! fallible path of [`crate::api`] reports through [`TbsError`] instead:
//! construction ([`crate::api::SamplerConfig::build`]), time semantics
//! ([`crate::api::Sampler::observe_after`]), and checkpoint decoding
//! ([`crate::api::Sampler::restore`], which wraps the codec's
//! [`CheckpointError`] via `From`).

use tbs_core::checkpoint::CheckpointError;
use tbs_distributed::engine::EngineError;

/// Everything that can go wrong at the `temporal_sampling::api` surface.
#[derive(Debug, Clone, PartialEq)]
pub enum TbsError {
    /// The decay rate λ is negative, NaN, or infinite.
    InvalidDecay {
        /// The offending value.
        lambda: f64,
    },
    /// A capacity / target sample size of zero was requested.
    InvalidCapacity,
    /// The algorithm needs a parameter the config never set.
    MissingParameter {
        /// Which builder knob is missing (`"capacity"`, `"mean_batch"`, …).
        what: &'static str,
        /// The algorithm that needs it.
        algorithm: &'static str,
    },
    /// A parameter was set that the chosen algorithm does not use —
    /// almost always a mis-assembled config, so it is rejected rather
    /// than silently ignored.
    UnusedParameter {
        /// Which builder knob is superfluous.
        what: &'static str,
        /// The algorithm that ignores it.
        algorithm: &'static str,
    },
    /// T-TBS feasibility (§3): the assumed mean batch size must satisfy
    /// `b ≥ n(1 − e^{−λ})`, or items decay faster than they arrive at the
    /// target size and the scheme cannot hold it.
    InfeasibleTarget {
        /// Requested target size `n`.
        target: usize,
        /// Assumed mean batch size `b`.
        mean_batch: f64,
        /// The feasibility floor `n(1 − e^{−λ})`.
        min_mean_batch: f64,
    },
    /// The time-window width is zero, negative, NaN, or infinite.
    InvalidWindowWidth {
        /// The offending value.
        width: f64,
    },
    /// The deferred-downsampling drift threshold θ lies outside (0, 1]
    /// (see [`crate::api::SamplerConfig::defer_threshold`]).
    InvalidDeferThreshold {
        /// The offending value.
        theta: f64,
    },
    /// The shard count is unusable: zero, or λ = 0 with K > 1 (the merge
    /// algebra's skew headroom `1/(1 − e^{−λ})` diverges), or real-valued
    /// gaps were requested for a sharded stream (the engine's shards
    /// advance integer clocks).
    InvalidShardCount {
        /// Requested shard count K.
        shards: usize,
        /// Why it is rejected.
        reason: &'static str,
    },
    /// Sharding was requested for an algorithm with no merge algebra
    /// (only R-TBS and T-TBS are mergeable — see `tbs_core::merge`).
    UnshardableAlgorithm {
        /// The non-mergeable algorithm.
        algorithm: &'static str,
    },
    /// An automatic publication policy was configured with a batch
    /// threshold of zero ([`crate::api::PublishPolicy`]).
    InvalidPublishPolicy {
        /// Why it is rejected.
        reason: &'static str,
    },
    /// `observe_after` was called but the sampler cannot honor
    /// real-valued inter-arrival gaps — either the algorithm is
    /// integer-clocked by nature, or the config never declared
    /// [`crate::api::TimeSemantics::RealGaps`].
    UnsupportedGap {
        /// The algorithm involved.
        algorithm: &'static str,
        /// What exactly is unsupported.
        reason: &'static str,
    },
    /// A checkpoint blob encodes a different algorithm than the config
    /// restoring it expects.
    AlgorithmMismatch {
        /// Algorithm the config wants.
        expected: &'static str,
        /// Algorithm found in the blob.
        found: &'static str,
    },
    /// A checkpoint blob's parameters disagree with the restoring config
    /// (decay rate, capacity, shard count, …).
    ConfigMismatch {
        /// Which parameter disagrees.
        what: &'static str,
    },
    /// The checkpoint blob itself is unreadable (bad magic, unsupported
    /// version, truncation, corrupt field, CRC mismatch).
    Checkpoint(CheckpointError),
    /// An automatic checkpoint policy was configured with a batch
    /// threshold of zero, or without attaching a store
    /// ([`crate::api::CheckpointPolicy`]).
    InvalidCheckpointPolicy {
        /// Why it is rejected.
        reason: &'static str,
    },
    /// The sharded ingest pipeline failed (a worker or the merger died, a
    /// delivery was lost) and could not — or was configured not to —
    /// recover. The engine is terminally failed; every subsequent call
    /// returns this same cause.
    Engine(EngineError),
    /// A checkpoint-store filesystem operation failed (create, write,
    /// rename, read, scan).
    CheckpointIo {
        /// The operation that failed (`"create dir"`, `"write"`, …).
        op: &'static str,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// [`crate::api::Sampler::recover`] walked the whole generation ring
    /// and found no blob that validates and matches the config.
    NoValidCheckpoint {
        /// How many stored generations were tried.
        attempted: usize,
    },
}

impl std::fmt::Display for TbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TbsError::InvalidDecay { lambda } => {
                write!(
                    f,
                    "decay rate must be finite and non-negative, got {lambda}"
                )
            }
            TbsError::InvalidCapacity => write!(f, "capacity must be positive"),
            TbsError::MissingParameter { what, algorithm } => {
                write!(f, "{algorithm} requires `{what}` to be configured")
            }
            TbsError::UnusedParameter { what, algorithm } => {
                write!(
                    f,
                    "{algorithm} does not use `{what}`; remove it from the config"
                )
            }
            TbsError::InfeasibleTarget {
                target,
                mean_batch,
                min_mean_batch,
            } => write!(
                f,
                "T-TBS target {target} is infeasible: mean batch size {mean_batch} \
                 is below the floor n(1-e^-lambda) = {min_mean_batch}"
            ),
            TbsError::InvalidWindowWidth { width } => {
                write!(f, "window width must be positive and finite, got {width}")
            }
            TbsError::InvalidDeferThreshold { theta } => {
                write!(f, "defer threshold must lie in (0, 1], got {theta}")
            }
            TbsError::InvalidShardCount { shards, reason } => {
                write!(f, "shard count {shards} rejected: {reason}")
            }
            TbsError::UnshardableAlgorithm { algorithm } => {
                write!(
                    f,
                    "{algorithm} has no shard-merge algebra; only R-TBS and T-TBS \
                     can run sharded"
                )
            }
            TbsError::InvalidPublishPolicy { reason } => {
                write!(f, "publish policy rejected: {reason}")
            }
            TbsError::UnsupportedGap { algorithm, reason } => {
                write!(
                    f,
                    "{algorithm} cannot honor this inter-arrival gap: {reason}"
                )
            }
            TbsError::AlgorithmMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint holds {found} state, config expects {expected}"
                )
            }
            TbsError::ConfigMismatch { what } => {
                write!(
                    f,
                    "checkpoint disagrees with the restoring config on {what}"
                )
            }
            TbsError::Checkpoint(e) => write!(f, "checkpoint unreadable: {e}"),
            TbsError::InvalidCheckpointPolicy { reason } => {
                write!(f, "checkpoint policy rejected: {reason}")
            }
            TbsError::Engine(e) => write!(f, "ingest pipeline failed: {e}"),
            TbsError::CheckpointIo { op, detail } => {
                write!(f, "checkpoint store {op} failed: {detail}")
            }
            TbsError::NoValidCheckpoint { attempted } => {
                write!(
                    f,
                    "no stored checkpoint generation validates \
                     ({attempted} tried)"
                )
            }
        }
    }
}

impl std::error::Error for TbsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TbsError::Checkpoint(e) => Some(e),
            TbsError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TbsError {
    fn from(e: CheckpointError) -> Self {
        TbsError::Checkpoint(e)
    }
}

impl From<EngineError> for TbsError {
    fn from(e: EngineError) -> Self {
        TbsError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_renders_every_variant() {
        let cases: Vec<TbsError> = vec![
            TbsError::InvalidDecay { lambda: -1.0 },
            TbsError::InvalidCapacity,
            TbsError::MissingParameter {
                what: "capacity",
                algorithm: "R-TBS",
            },
            TbsError::UnusedParameter {
                what: "mean_batch",
                algorithm: "B-TBS",
            },
            TbsError::InfeasibleTarget {
                target: 100,
                mean_batch: 1.0,
                min_mean_batch: 9.5,
            },
            TbsError::InvalidWindowWidth { width: 0.0 },
            TbsError::InvalidShardCount {
                shards: 0,
                reason: "need at least one shard",
            },
            TbsError::UnshardableAlgorithm {
                algorithm: "B-Chao",
            },
            TbsError::InvalidPublishPolicy {
                reason: "threshold must be at least 1",
            },
            TbsError::UnsupportedGap {
                algorithm: "Unif",
                reason: "integer-clocked",
            },
            TbsError::AlgorithmMismatch {
                expected: "R-TBS",
                found: "T-TBS",
            },
            TbsError::ConfigMismatch { what: "decay rate" },
            TbsError::Checkpoint(CheckpointError::Truncated),
            TbsError::InvalidCheckpointPolicy {
                reason: "interval must be at least 1",
            },
            TbsError::Engine(EngineError::MergerDead),
            TbsError::CheckpointIo {
                op: "write",
                detail: "disk full".into(),
            },
            TbsError::NoValidCheckpoint { attempted: 3 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty(), "{e:?} renders empty");
        }
    }

    #[test]
    fn checkpoint_error_converts_and_chains() {
        let e: TbsError = CheckpointError::BadMagic.into();
        assert_eq!(e, TbsError::Checkpoint(CheckpointError::BadMagic));
        assert!(
            e.source().is_some(),
            "wrapped codec error must be the source"
        );
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn engine_error_converts_and_chains() {
        let e: TbsError = EngineError::ShardDead { shard: 2 }.into();
        assert_eq!(e, TbsError::Engine(EngineError::ShardDead { shard: 2 }));
        assert!(e.source().is_some(), "pipeline cause must be the source");
        assert!(e.to_string().contains("shard worker 2"));
    }
}
