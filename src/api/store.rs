//! Durable checkpoint storage: a ring of CRC-framed generation files.
//!
//! A [`CheckpointStore`] owns one directory and writes each checkpoint
//! blob as an atomically-renamed, CRC-framed generation file
//! (`gen-<seq>.tbsc`), keeping the newest G generations and pruning the
//! rest. The two halves of the durability contract:
//!
//! * **Torn writes never corrupt an older generation.** Every write goes
//!   to a temp file first and reaches its final name only through
//!   `rename` (atomic on POSIX filesystems), after an `fsync`. A crash
//!   mid-write leaves a stray temp file and the previous generations
//!   untouched.
//! * **Corrupt reads are detected, not restored.** The frame carries a
//!   CRC32 over the payload (`tbs_core::checkpoint::frame`); a
//!   bit-flipped or truncated file fails [`CheckpointStore::load`] with
//!   a typed error, and [`crate::api::Sampler::recover`] falls back
//!   through the ring to the newest generation that still validates.
//!
//! The store is deliberately dumb about contents: it moves opaque blobs
//! produced by [`crate::api::Sampler::snapshot`] (or the async
//! checkpoint path) and leaves interpretation to
//! [`crate::api::Sampler::restore`].

use bytes::Bytes;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use tbs_core::checkpoint::{frame, unframe};

use crate::api::error::TbsError;

/// Map an I/O failure into the API error vocabulary, naming the
/// operation that failed.
fn io_err(op: &'static str, e: std::io::Error) -> TbsError {
    TbsError::CheckpointIo {
        op,
        detail: e.to_string(),
    }
}

/// A directory-backed ring of checkpoint generations; see the module
/// docs above and [`crate::api::Sampler::recover`].
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Ring capacity: how many generation files are retained.
    generations: usize,
    /// Sequence number the next [`CheckpointStore::save`] will use —
    /// strictly greater than every sequence already in the directory.
    next_seq: u64,
    /// Write-behind worker, spawned lazily by the first
    /// [`CheckpointStore::save_behind`]; `None` until then.
    writer: Option<Writer>,
}

/// A job for the write-behind worker.
enum WriterJob {
    /// Persist `blob` as generation `seq` (frame + temp + fsync +
    /// rename + prune, exactly like a synchronous save).
    Save { seq: u64, blob: Vec<u8> },
    /// Acknowledge once every job queued before this one has hit disk.
    Flush(mpsc::Sender<()>),
}

/// The write-behind worker: a thread owning the slow half of `save`
/// (CRC framing, temp-file write, `fsync`, rename, prune) so the ingest
/// thread only pays for serialization. The first I/O failure is parked
/// in `err` and re-raised by the next `save_behind`/`flush` — write-
/// behind defers the *work*, never the *error report* past the next
/// durability point.
struct Writer {
    tx: Option<mpsc::Sender<WriterJob>>,
    join: Option<std::thread::JoinHandle<()>>,
    err: Arc<Mutex<Option<TbsError>>>,
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Writer").finish_non_exhaustive()
    }
}

impl Drop for Writer {
    /// Closing the channel ends the worker loop; joining makes every
    /// queued generation durable before the store (and with it the
    /// directory handle) goes away. A worker that panicked is ignored —
    /// its queued saves are lost, which the ring's CRC validation treats
    /// exactly like any other missing/torn generation.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Persist one framed generation file: temp + `fsync` + atomic rename,
/// then prune the ring down to `generations`. Shared by the synchronous
/// and write-behind paths so the two can never disagree on the format.
fn persist_generation(
    dir: &Path,
    generations: usize,
    seq: u64,
    blob: &[u8],
) -> Result<(), TbsError> {
    let finalpath = dir.join(format!("gen-{seq}.tbsc"));
    let tmp = dir.join(format!("gen-{seq}.tbsc.tmp"));
    let framed = frame(blob);
    let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
    file.write_all(&framed).map_err(|e| io_err("write", e))?;
    file.sync_all().map_err(|e| io_err("sync", e))?;
    drop(file);
    fs::rename(&tmp, &finalpath).map_err(|e| io_err("rename", e))?;
    // Prune oldest-first down to the ring capacity. A prune failure is
    // reported but the checkpoint itself is already durable.
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err("scan", e))? {
        let entry = entry.map_err(|e| io_err("scan", e))?;
        if let Some(s) = parse_generation(&entry.file_name()) {
            seqs.push(s);
        }
    }
    seqs.sort_unstable();
    if seqs.len() > generations {
        for &old in &seqs[..seqs.len() - generations] {
            fs::remove_file(dir.join(format!("gen-{old}.tbsc"))).map_err(|e| io_err("prune", e))?;
        }
    }
    Ok(())
}

impl CheckpointStore {
    /// Open (creating if needed) a store over `dir` retaining the newest
    /// `generations` checkpoint files (`generations ≥ 1`).
    ///
    /// Scans the directory so sequence numbers continue monotonically
    /// across process restarts; files that are not `gen-<seq>.tbsc` are
    /// ignored (stray temp files from a crashed writer are harmless).
    pub fn open(dir: impl AsRef<Path>, generations: usize) -> Result<Self, TbsError> {
        if generations == 0 {
            return Err(TbsError::InvalidCheckpointPolicy {
                reason: "the generation ring must retain at least one \
                         checkpoint",
            });
        }
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", e))?;
        let mut store = Self {
            dir,
            generations,
            next_seq: 1,
            writer: None,
        };
        if let Some(&newest) = store.stored_generations()?.last() {
            store.next_seq = newest + 1;
        }
        Ok(store)
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Ring capacity (how many generations are retained).
    pub fn capacity(&self) -> usize {
        self.generations
    }

    /// Sequence numbers of every stored generation, oldest first.
    ///
    /// Reflects what is on disk: write-behind generations still in
    /// flight ([`CheckpointStore::save_behind`]) appear only after a
    /// [`CheckpointStore::flush`].
    pub fn stored_generations(&self) -> Result<Vec<u64>, TbsError> {
        let mut seqs = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("scan", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan", e))?;
            if let Some(seq) = parse_generation(&entry.file_name()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Write `blob` as the next generation — CRC-framed, temp file +
    /// `fsync` + atomic rename — prune the ring down to capacity, and
    /// return the new sequence number. Synchronous: the generation is
    /// durable when this returns. Any write-behind saves still in flight
    /// are flushed first, so generations always land in sequence order.
    pub fn save(&mut self, blob: &[u8]) -> Result<u64, TbsError> {
        self.flush()?;
        let seq = self.next_seq;
        persist_generation(&self.dir, self.generations, seq, blob)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Queue `blob` as the next generation and return its sequence
    /// number **without waiting for the disk**: the CRC framing, temp
    /// write, `fsync`, rename, and prune all happen on a write-behind
    /// thread (spawned lazily on first use), so an ingest loop pays only
    /// for the serialization it already did. Durability is deferred to
    /// [`CheckpointStore::flush`] (or drop, which joins the writer); a
    /// crash before then loses at most the queued generations — which
    /// [`crate::api::Sampler::recover`] handles exactly like any other
    /// missing or torn generation, by falling back through the ring.
    ///
    /// A failed background save is reported by the *next* `save_behind`,
    /// [`CheckpointStore::save`], or [`CheckpointStore::flush`] call.
    pub fn save_behind(&mut self, blob: &[u8]) -> Result<u64, TbsError> {
        self.take_background_err()?;
        let seq = self.next_seq;
        let writer = match &mut self.writer {
            Some(w) => w,
            None => {
                let err = Arc::new(Mutex::new(None));
                let (tx, rx) = mpsc::channel::<WriterJob>();
                let dir = self.dir.clone();
                let generations = self.generations;
                let slot = Arc::clone(&err);
                let join = std::thread::Builder::new()
                    .name("tbs-ckpt-writer".into())
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            match job {
                                WriterJob::Save { seq, blob } => {
                                    if let Err(e) =
                                        persist_generation(&dir, generations, seq, &blob)
                                    {
                                        let mut slot =
                                            slot.lock().unwrap_or_else(|p| p.into_inner());
                                        slot.get_or_insert(e);
                                    }
                                }
                                WriterJob::Flush(ack) => {
                                    let _ = ack.send(());
                                }
                            }
                        }
                    })
                    // INVARIANT: spawn fails only on OS resource
                    // exhaustion — an environment failure, like running
                    // out of disk, that durability cannot paper over.
                    .expect("spawn checkpoint writer");
                self.writer.insert(Writer {
                    tx: Some(tx),
                    join: Some(join),
                    err,
                })
            }
        };
        let tx = writer
            .tx
            .as_ref()
            .expect("writer channel open while writer exists");
        // INVARIANT: the worker only stops when `tx` drops, so a send
        // cannot find the receiver gone while the handle is alive.
        tx.send(WriterJob::Save {
            seq,
            blob: blob.to_vec(),
        })
        .expect("checkpoint writer alive");
        self.next_seq += 1;
        Ok(seq)
    }

    /// Block until every queued write-behind generation is durable,
    /// re-raising the first background I/O failure if one occurred.
    /// No-op when nothing is queued.
    pub fn flush(&mut self) -> Result<(), TbsError> {
        if let Some(writer) = &self.writer {
            let (ack_tx, ack_rx) = mpsc::channel();
            let tx = writer
                .tx
                .as_ref()
                .expect("writer channel open while writer exists");
            tx.send(WriterJob::Flush(ack_tx))
                .expect("checkpoint writer alive");
            // INVARIANT: the worker acks every flush it receives and
            // only exits when the channel closes, which requires this
            // store (the only sender) to have dropped first.
            ack_rx.recv().expect("checkpoint writer acks flushes");
        }
        self.take_background_err()
    }

    /// Surface (and clear) the first recorded background save failure.
    fn take_background_err(&mut self) -> Result<(), TbsError> {
        if let Some(writer) = &self.writer {
            let mut slot = writer.err.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(e) = slot.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Read generation `seq` back, validating the CRC frame. Corruption
    /// (bit flip, truncation, torn header) is a typed
    /// [`TbsError::Checkpoint`] error, never garbage bytes.
    pub fn load(&self, seq: u64) -> Result<Bytes, TbsError> {
        let raw = fs::read(self.generation_path(seq)).map_err(|e| io_err("read", e))?;
        Ok(unframe(&raw)?)
    }

    /// The file path generation `seq` lives at (exposed for tests and
    /// operational tooling; the file is CRC-framed, not a raw blob).
    pub fn generation_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("gen-{seq}.tbsc"))
    }
}

/// Parse `gen-<seq>.tbsc` file names; anything else is not ours.
fn parse_generation(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    name.strip_prefix("gen-")?
        .strip_suffix(".tbsc")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tbs-store-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn blobs_round_trip_and_sequence_monotonically() {
        let dir = scratch("roundtrip");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let a = store.save(b"alpha").unwrap();
        let b = store.save(b"beta").unwrap();
        assert!(b > a);
        assert_eq!(&store.load(a).unwrap()[..], b"alpha");
        assert_eq!(&store.load(b).unwrap()[..], b"beta");
        // Reopening continues the sequence instead of overwriting.
        let mut reopened = CheckpointStore::open(&dir, 3).unwrap();
        let c = reopened.save(b"gamma").unwrap();
        assert!(c > b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ring_prunes_oldest_generations() {
        let dir = scratch("ring");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for blob in [b"one".as_slice(), b"two", b"three", b"four"] {
            store.save(blob).unwrap();
        }
        let seqs = store.stored_generations().unwrap();
        assert_eq!(seqs, vec![3, 4], "only the newest 2 survive");
        assert!(store.load(1).is_err(), "pruned generation is gone");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_restored() {
        let dir = scratch("corrupt");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        let seq = store.save(b"precious state").unwrap();
        let path = store.generation_path(seq);
        let bytes = fs::read(&path).unwrap();
        let corrupt = tbs_distributed::fault::bit_flip(&bytes, 13 * 8 + 2);
        fs::write(&path, &corrupt).unwrap();
        match store.load(seq) {
            Err(TbsError::Checkpoint(_)) => {}
            other => panic!("corrupt frame must fail typed, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_saves_land_after_flush() {
        let dir = scratch("behind");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let a = store.save_behind(b"alpha").unwrap();
        let b = store.save_behind(b"beta").unwrap();
        assert!(b > a, "sequence numbers allocate immediately");
        store.flush().unwrap();
        assert_eq!(store.stored_generations().unwrap(), vec![a, b]);
        assert_eq!(&store.load(b).unwrap()[..], b"beta");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_save_after_write_behind_keeps_sequence_order() {
        let dir = scratch("mixed");
        let mut store = CheckpointStore::open(&dir, 8).unwrap();
        let a = store.save_behind(b"queued").unwrap();
        // The synchronous save flushes the queue first, so on return both
        // generations are durable and ordered.
        let b = store.save(b"durable").unwrap();
        assert!(b > a);
        assert_eq!(store.stored_generations().unwrap(), vec![a, b]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_joins_the_writer_making_queued_saves_durable() {
        let dir = scratch("dropjoin");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        let seq = store.save_behind(b"last words").unwrap();
        drop(store);
        let reopened = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(&reopened.load(seq).unwrap()[..], b"last words");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_behind_prunes_the_ring_too() {
        let dir = scratch("behindring");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for blob in [b"one".as_slice(), b"two", b"three", b"four"] {
            store.save_behind(blob).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.stored_generations().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_failures_surface_on_the_next_durability_point() {
        let dir = scratch("behinderr");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        store.save_behind(b"fine").unwrap();
        store.flush().unwrap();
        // Yank the directory out from under the writer: the queued save
        // fails in the background and the *flush* reports it.
        fs::remove_dir_all(&dir).unwrap();
        store.save_behind(b"doomed").unwrap();
        match store.flush() {
            Err(TbsError::CheckpointIo { .. }) => {}
            other => panic!("background failure must surface typed, got {other:?}"),
        }
        // The error is cleared once reported; the store stays usable.
        store.flush().unwrap();
    }

    #[test]
    fn zero_capacity_ring_is_rejected() {
        assert!(matches!(
            CheckpointStore::open(scratch("zero"), 0),
            Err(TbsError::InvalidCheckpointPolicy { .. })
        ));
    }
}
