//! The model-management loop as a reusable component.
//!
//! The paper's whole point (§1, §6) is that a temporally-biased sample
//! *feeds periodic retraining* so deployed models track evolving streams
//! — the serving-loop role Velox carves out for model management systems.
//! [`ModelManager`] packages that loop: it owns a [`Sampler`] and an
//! [`OnlineModel`], applies the §6 test-then-train discipline per batch
//! (score the arriving batch out-of-sample, update the sample, maybe
//! refit), and decides *when* to refit through a
//! [`RetrainPolicy`] — every batch, every N batches, or
//! drift-triggered via `tbs_ml::drift`'s error-jump detector with a
//! periodic fallback.

use tbs_ml::drift::{DriftDetector, RetrainPolicy, RetrainScheduler};
use tbs_ml::pipeline::OnlineModel;
use tbs_stats::summary::OnlineMoments;

use crate::api::sampler::Sampler;

/// Cumulative counters and error statistics of a manager's run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerMetrics {
    /// Batches ingested.
    pub batches: u64,
    /// Items ingested.
    pub items: u64,
    /// Model refits performed.
    pub retrains: u64,
    /// Error of the most recent scored batch.
    pub last_error: f64,
    /// Training-sample size at the most recent refit.
    pub last_sample_size: usize,
    /// Streaming mean/variance of the per-batch error series
    /// (test-then-train, so every score is out-of-sample).
    pub error_moments: OnlineMoments,
}

/// What one [`ModelManager::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Out-of-sample error of the model on the arriving batch, scored
    /// *before* the batch entered the sample.
    pub batch_error: f64,
    /// Whether the model was refit after this batch.
    pub retrained: bool,
    /// Training-set size used for the refit (0 when `retrained` is
    /// false).
    pub sample_size: usize,
}

/// Owns a sampler, a model, and a retraining policy; see the
/// [`crate::api`] module docs.
///
/// ```
/// use temporal_sampling::api::{ModelManager, RetrainPolicy, SamplerConfig};
/// use temporal_sampling::datagen::gmm::LabeledPoint;
/// use temporal_sampling::ml::knn::KnnClassifier;
///
/// let sampler = SamplerConfig::rtbs(0.1, 300)
///     .seed(7)
///     .build::<LabeledPoint>()
///     .expect("valid config");
/// let mut mgr = ModelManager::new(sampler, KnnClassifier::new(7), RetrainPolicy::EveryBatch);
/// assert_eq!(mgr.metrics().batches, 0);
/// ```
pub struct ModelManager<T: Clone + Send + 'static, M: OnlineModel<T>> {
    sampler: Sampler<T>,
    model: M,
    scheduler: RetrainScheduler,
    metrics: ManagerMetrics,
    /// Reused realization buffer: refits read the sample from here, so
    /// steady-state retraining allocates no fresh sample vector.
    sample_buf: Vec<T>,
}

impl<T: Clone + Send + 'static, M: OnlineModel<T>> ModelManager<T, M> {
    /// Bundle a sampler, a model, and a policy, using the default drift
    /// detector (window 10, 3σ, 5-point minimum jump — calibrated for
    /// errors expressed in percent). The detector only matters for
    /// [`RetrainPolicy::OnDrift`].
    pub fn new(sampler: Sampler<T>, model: M, policy: RetrainPolicy) -> Self {
        Self::with_detector(
            sampler,
            model,
            policy,
            DriftDetector::default_for_percent_errors(),
        )
    }

    /// [`ModelManager::new`] with an explicitly tuned drift detector.
    pub fn with_detector(
        sampler: Sampler<T>,
        model: M,
        policy: RetrainPolicy,
        detector: DriftDetector,
    ) -> Self {
        Self {
            sampler,
            model,
            scheduler: RetrainScheduler::new(policy, detector),
            metrics: ManagerMetrics::default(),
            sample_buf: Vec::new(),
        }
    }

    /// One turn of the §6 loop: **predict** (score the arriving batch
    /// with the current model — out-of-sample by construction),
    /// **update** (feed the batch to the sampler), and **retrain** when
    /// the policy fires (refit on the freshly realized sample).
    pub fn ingest(&mut self, batch: Vec<T>) -> IngestReport {
        let batch_error = self.model.batch_error(&batch);
        self.metrics.batches += 1;
        self.metrics.items += batch.len() as u64;
        self.metrics.last_error = batch_error;
        self.metrics.error_moments.push(batch_error);

        self.sampler.observe(batch);

        let retrained = self.scheduler.should_retrain(batch_error);
        let mut sample_size = 0;
        if retrained {
            self.sampler.sample_into(&mut self.sample_buf);
            sample_size = self.sample_buf.len();
            self.model.retrain(&self.sample_buf);
            self.metrics.retrains += 1;
            self.metrics.last_sample_size = sample_size;
        }
        IngestReport {
            batch_error,
            retrained,
            sample_size,
        }
    }

    /// The model as trained by the most recent refit.
    pub fn current_model(&self) -> &M {
        &self.model
    }

    /// The managed sampler (e.g. to snapshot it alongside the stream
    /// position).
    pub fn sampler(&self) -> &Sampler<T> {
        &self.sampler
    }

    /// Mutable access to the managed sampler — checkpointing
    /// ([`Sampler::snapshot`]) needs `&mut`.
    pub fn sampler_mut(&mut self) -> &mut Sampler<T> {
        &mut self.sampler
    }

    /// Cumulative run metrics.
    pub fn metrics(&self) -> &ManagerMetrics {
        &self.metrics
    }

    /// Refits triggered so far (shorthand for `metrics().retrains`).
    pub fn retrain_count(&self) -> u64 {
        self.metrics.retrains
    }

    /// Tear the manager apart into its sampler and model (e.g. to move
    /// the model to a serving tier while the sampler keeps ingesting
    /// elsewhere).
    pub fn into_parts(self) -> (Sampler<T>, M) {
        (self.sampler, self.model)
    }
}
