//! The model-management loop as a reusable component.
//!
//! The paper's whole point (§1, §6) is that a temporally-biased sample
//! *feeds periodic retraining* so deployed models track evolving streams
//! — the serving-loop role Velox carves out for model management systems.
//! [`ModelManager`] packages that loop: it owns a [`Sampler`] and an
//! [`OnlineModel`], applies the §6 test-then-train discipline per batch
//! (score the arriving batch out-of-sample, update the sample, maybe
//! refit), and decides *when* to refit through a
//! [`RetrainPolicy`] — every batch, every N batches, or
//! drift-triggered via `tbs_ml::drift`'s error-jump detector with a
//! periodic fallback.
//!
//! ## Retraining off snapshots
//!
//! Refits consume **epoch-published snapshots**
//! ([`Sampler::publish`] + [`SampleReader`]), not a quiesced read of live
//! sampler state. For sharded samplers this is what keeps the pipeline
//! flowing: publication only injects a barrier, shards fork their state
//! and keep ingesting, and the manager blocks only until the background
//! merger lands the epoch — never on a stop-the-world quiesce. The same
//! `Arc<FrozenSample>` the manager trains on is simultaneously visible to
//! every other [`ModelManager::reader`] handle (a serving tier can watch
//! exactly what the model was fit on), and
//! [`ManagerMetrics::last_sample_epoch`] records which publication that
//! was.

use std::sync::Arc;
use tbs_core::frozen::FrozenSample;
use tbs_ml::drift::{DriftDetector, RetrainPolicy, RetrainScheduler};
use tbs_ml::pipeline::OnlineModel;
use tbs_stats::summary::OnlineMoments;

use crate::api::error::TbsError;
use crate::api::reader::SampleReader;
use crate::api::sampler::Sampler;

/// Cumulative counters and error statistics of a manager's run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ManagerMetrics {
    /// Batches ingested.
    pub batches: u64,
    /// Items ingested.
    pub items: u64,
    /// Model refits performed.
    pub retrains: u64,
    /// Error of the most recent scored batch.
    pub last_error: f64,
    /// Training-sample size at the most recent refit.
    pub last_sample_size: usize,
    /// Publication epoch of the snapshot the most recent refit trained
    /// on (0 before the first refit).
    pub last_sample_epoch: u64,
    /// Streaming mean/variance of the per-batch error series
    /// (test-then-train, so every score is out-of-sample).
    pub error_moments: OnlineMoments,
}

/// What one [`ModelManager::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Out-of-sample error of the model on the arriving batch, scored
    /// *before* the batch entered the sample.
    pub batch_error: f64,
    /// Whether the model was refit after this batch.
    pub retrained: bool,
    /// Training-set size used for the refit (0 when `retrained` is
    /// false).
    pub sample_size: usize,
}

/// Owns a sampler, a model, and a retraining policy; see the
/// [`crate::api`] module docs.
///
/// ```
/// use temporal_sampling::api::{ModelManager, RetrainPolicy, SamplerConfig};
/// use temporal_sampling::datagen::gmm::LabeledPoint;
/// use temporal_sampling::ml::knn::KnnClassifier;
///
/// let sampler = SamplerConfig::rtbs(0.1, 300)
///     .seed(7)
///     .build::<LabeledPoint>()
///     .expect("valid config");
/// let mut mgr = ModelManager::new(sampler, KnnClassifier::new(7), RetrainPolicy::EveryBatch);
/// assert_eq!(mgr.metrics().batches, 0);
/// ```
pub struct ModelManager<T: Clone + Send + Sync + 'static, M: OnlineModel<T>> {
    sampler: Sampler<T>,
    model: M,
    scheduler: RetrainScheduler,
    metrics: ManagerMetrics,
    /// The manager's own view of the publication stream it retrains from.
    reader: SampleReader<T>,
}

impl<T: Clone + Send + Sync + 'static, M: OnlineModel<T>> ModelManager<T, M> {
    /// Bundle a sampler, a model, and a policy, using the default drift
    /// detector (window 10, 3σ, 5-point minimum jump — calibrated for
    /// errors expressed in percent). The detector only matters for
    /// [`RetrainPolicy::OnDrift`].
    pub fn new(sampler: Sampler<T>, model: M, policy: RetrainPolicy) -> Self {
        Self::with_detector(
            sampler,
            model,
            policy,
            DriftDetector::default_for_percent_errors(),
        )
    }

    /// [`ModelManager::new`] with an explicitly tuned drift detector.
    pub fn with_detector(
        sampler: Sampler<T>,
        model: M,
        policy: RetrainPolicy,
        detector: DriftDetector,
    ) -> Self {
        let reader = sampler.reader();
        Self {
            sampler,
            model,
            scheduler: RetrainScheduler::new(policy, detector),
            metrics: ManagerMetrics::default(),
            reader,
        }
    }

    /// One turn of the §6 loop: **predict** (score the arriving batch
    /// with the current model — out-of-sample by construction),
    /// **update** (feed the batch to the sampler), and **retrain** when
    /// the policy fires — by publishing an epoch snapshot and fitting on
    /// it, so a sharded ingest pipeline never stops for the refit.
    pub fn ingest(&mut self, batch: Vec<T>) -> Result<IngestReport, TbsError> {
        let batch_error = self.model.batch_error(&batch);
        self.metrics.batches += 1;
        self.metrics.items += batch.len() as u64;
        self.metrics.last_error = batch_error;
        self.metrics.error_moments.push(batch_error);

        self.sampler.observe(batch)?;

        // `retrained` reports what actually happened, not what the policy
        // asked for: if the publication pipeline is gone (a shard/merger
        // died), retrain_now returns None and the refit did not occur.
        let mut retrained = false;
        let mut sample_size = 0;
        if self.scheduler.should_retrain(batch_error) {
            if let Some(frozen) = self.retrain_now() {
                retrained = true;
                sample_size = frozen.len();
            }
        }
        Ok(IngestReport {
            batch_error,
            retrained,
            sample_size,
        })
    }

    /// Publish a snapshot of the current sample, refit the model on it,
    /// and return it. The snapshot stays available to every reader handle
    /// — consumers can see exactly what the model was trained on.
    ///
    /// Returns `None` only if the publication could not complete — the
    /// sampler's publisher shut down, or a sharded pipeline died and was
    /// not configured to recover (inspect
    /// [`crate::api::Sampler::health`] via [`ModelManager::sampler`] to
    /// distinguish).
    pub fn retrain_now(&mut self) -> Option<Arc<FrozenSample<T>>> {
        let epoch = self.sampler.publish().ok()?;
        let frozen = self.reader.wait_for_epoch(epoch)?;
        self.model.retrain(frozen.items());
        self.metrics.retrains += 1;
        self.metrics.last_sample_size = frozen.len();
        self.metrics.last_sample_epoch = frozen.epoch();
        Some(frozen)
    }

    /// A fresh read handle onto the publication stream the manager
    /// retrains from — hand these to serving threads that want to follow
    /// the training snapshots concurrently.
    pub fn reader(&self) -> SampleReader<T> {
        self.sampler.reader()
    }

    /// The model as trained by the most recent refit.
    pub fn current_model(&self) -> &M {
        &self.model
    }

    /// The managed sampler (e.g. to snapshot it alongside the stream
    /// position).
    pub fn sampler(&self) -> &Sampler<T> {
        &self.sampler
    }

    /// Mutable access to the managed sampler — checkpointing
    /// ([`Sampler::snapshot`]) needs `&mut`.
    pub fn sampler_mut(&mut self) -> &mut Sampler<T> {
        &mut self.sampler
    }

    /// Cumulative run metrics.
    pub fn metrics(&self) -> &ManagerMetrics {
        &self.metrics
    }

    /// Refits triggered so far (shorthand for `metrics().retrains`).
    pub fn retrain_count(&self) -> u64 {
        self.metrics.retrains
    }

    /// Tear the manager apart into its sampler and model (e.g. to move
    /// the model to a serving tier while the sampler keeps ingesting
    /// elsewhere).
    pub fn into_parts(self) -> (Sampler<T>, M) {
        (self.sampler, self.model)
    }
}
