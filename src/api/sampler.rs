//! The unified sampler handle.
//!
//! [`Sampler`] wraps all eight core sampling algorithms *and* the K-shard
//! [`ParallelIngestEngine`] behind one type with four verbs — `observe`,
//! `sample`, `snapshot`, `restore` — plus the metadata accessors the
//! evaluation harness relies on. Dispatch is a **match on an enum**, not a
//! vtable: every arm calls the sampler's inherent generic method with the
//! handle's concrete xoshiro256++ RNG, so the monomorphized, zero-
//! steady-state-allocation fast path of PR 2 survives intact (the
//! `bench_throughput` `facade` rows measure the residual cost of the
//! branch, which must stay within ±10% of the raw fast path).
//!
//! The handle **owns its RNG** (seeded by
//! [`crate::api::SamplerConfig::seed`]). That is what makes
//! [`Sampler::snapshot`] self-contained: the blob carries the RNG
//! position alongside the sampler state, so a snapshot restored into a
//! fresh process continues the stream **bit-identically** to an
//! uninterrupted run — for the sharded engine too, whose per-shard RNG
//! substream positions and balanced-split deviation ledger ride along.

use bytes::Bytes;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tbs_core::checkpoint::{CheckpointError, Reader, Wire, Writer};
use tbs_core::frozen::FrozenSample;
use tbs_core::merge::{MergeableSample, ShardSpec};
use tbs_core::{BAres, BChao, BTbs, BatchedReservoir, CountWindow, RTbs, TTbs, TimeWindow};
use tbs_distributed::engine::{EngineCheckpoint, EngineConfig, EngineHealth, ParallelIngestEngine};
use tbs_distributed::fault::FaultPlan;
use tbs_distributed::snapshot::EpochCell;
use tbs_stats::rng::Xoshiro256PlusPlus;

use crate::api::config::{
    Algorithm, CheckpointPolicy, IngestMode, PublishPolicy, SamplerConfig, TimeSemantics,
};
use crate::api::error::TbsError;
use crate::api::reader::SampleReader;
use crate::api::store::CheckpointStore;

/// The algorithm-specific state behind a [`Sampler`] handle. Engines are
/// boxed so the enum's footprint stays at the size of the largest
/// single-node sampler.
enum Inner<T: Clone + Send + Sync + 'static> {
    RTbs(RTbs<T>),
    TTbs(TTbs<T>),
    BTbs(BTbs<T>),
    Uniform(BatchedReservoir<T>),
    Chao(BChao<T>),
    SlidingCount(CountWindow<T>),
    SlidingTime(TimeWindow<T>),
    ARes(BAres<T>),
    ParallelRTbs(Box<ParallelIngestEngine<RTbs<T>>>),
    ParallelTTbs(Box<ParallelIngestEngine<TTbs<T>>>),
}

/// The automatic-checkpoint driver: a monomorphized fn pointer over
/// the handle (see [`Sampler::set_checkpoint_store`]).
type CkptTick<T> = fn(&mut Sampler<T>) -> Result<(), TbsError>;

/// A builder-configured sampler over items of type `T`; see the
/// [`crate::api`] module docs and [`crate::api::SamplerConfig`].
///
/// `T: Sync` because published snapshots ([`Sampler::publish`]) are
/// `Arc`-shared with concurrent [`SampleReader`]s on other threads.
pub struct Sampler<T: Clone + Send + Sync + 'static> {
    inner: Inner<T>,
    /// Drives every random draw of the single-node samplers and the
    /// realization coin of `sample`; sharded engines keep their own
    /// jump-ahead substreams and leave this untouched.
    rng: Xoshiro256PlusPlus,
    config: SamplerConfig,
    /// Batches observed through this handle (survives snapshot/restore).
    batches: u64,
    /// Epoch-publication cell shared with every [`SampleReader`]. For
    /// sharded engines this *is* the engine's cell (the background merger
    /// publishes into it); single-node samplers publish synchronously.
    cell: Arc<EpochCell<T>>,
    /// Highest epoch requested through this handle (single-node publishes
    /// are synchronous, so requested == published for them).
    requested_epoch: u64,
    /// Batch count at the most recent publication request — what the
    /// [`PublishPolicy::MaxLagBatches`] lag is measured against.
    last_publish_batches: u64,
    /// Durable checkpoint destination, when attached
    /// ([`Sampler::set_checkpoint_store`]).
    store: Option<CheckpointStore>,
    /// The automatic-checkpoint driver, captured as a monomorphized fn
    /// pointer when the store is attached (attachment requires
    /// `T: Wire`, but `observe` does not — the pointer carries the
    /// serialization capability across that bound).
    ckpt_tick: Option<CkptTick<T>>,
    /// Async checkpoint generations requested from a sharded engine but
    /// not yet persisted: `(engine generation, engine recovery count at
    /// request)`. A pending generation whose recovery count is stale
    /// died with the old pipeline and is dropped, never half-written.
    pending_ckpts: Vec<(u64, u64)>,
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for Sampler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("algorithm", &self.config.algorithm().label())
            .field("shards", &self.config.shard_count())
            .field("batches", &self.batches)
            .finish_non_exhaustive()
    }
}

/// The core-layer ingest mode a validated config resolves to. The
/// facade's [`IngestMode::Auto`] is resolved here — config is strategy,
/// so restore paths re-apply it rather than reading it from blobs.
fn core_ingest_mode(config: &SamplerConfig) -> tbs_core::IngestMode {
    match config.resolved_ingest_mode() {
        IngestMode::Jump => tbs_core::IngestMode::Jump,
        _ => tbs_core::IngestMode::PerItem,
    }
}

/// The engine configuration a *validated* sharded config describes — the
/// single source for both `build` (fresh engine) and `restore`
/// (checkpointed engine), so the two can never disagree on the sharding.
fn engine_config(config: &SamplerConfig) -> EngineConfig {
    let lambda = config.decay_rate();
    let spec = match config.algorithm {
        Algorithm::RTbs => {
            ShardSpec::rtbs(lambda, config.capacity.expect("validated"), config.shards)
        }
        Algorithm::TTbs => ShardSpec::ttbs(
            lambda,
            config.capacity.expect("validated"),
            config.mean_batch.expect("validated"),
            config.shards,
        ),
        _ => unreachable!("validate rejects sharded non-mergeable algorithms"),
    }
    .with_ingest_mode(core_ingest_mode(config))
    // validate() pins θ to 1.0 for anything but R-TBS, so applying both
    // knobs unconditionally is safe for T-TBS specs.
    .with_defer_threshold(config.defer_threshold)
    .with_group_threshold(config.group_threshold);
    EngineConfig {
        spec,
        queue_depth: config.queue_depth,
        seed: config.seed,
        recovery: config.recovery,
    }
}

impl<T: Clone + Send + Sync + 'static> Sampler<T> {
    /// Construct from a config [`SamplerConfig::validate`] has already
    /// accepted (the only caller is [`SamplerConfig::build`]).
    pub(crate) fn from_valid_config(config: &SamplerConfig) -> Self {
        Self::from_valid_config_faults(config, None)
    }

    /// Like [`Sampler::from_valid_config`], but with an optional injected
    /// fault schedule threaded into the sharded engine — the plumbing
    /// behind [`SamplerConfig::build_with_fault_plan`]. Single-node
    /// configs ignore the plan (the caller rejects them first).
    pub(crate) fn from_valid_config_faults(
        config: &SamplerConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let config = *config;
        let lambda = config.decay_rate();
        let inner = if config.shards > 1 {
            let engine_cfg = engine_config(&config);
            match (config.algorithm, faults) {
                (Algorithm::RTbs, None) => {
                    Inner::ParallelRTbs(Box::new(ParallelIngestEngine::new(engine_cfg)))
                }
                (Algorithm::RTbs, Some(plan)) => Inner::ParallelRTbs(Box::new(
                    ParallelIngestEngine::with_fault_plan(engine_cfg, plan),
                )),
                (Algorithm::TTbs, None) => {
                    Inner::ParallelTTbs(Box::new(ParallelIngestEngine::new(engine_cfg)))
                }
                (Algorithm::TTbs, Some(plan)) => Inner::ParallelTTbs(Box::new(
                    ParallelIngestEngine::with_fault_plan(engine_cfg, plan),
                )),
                _ => unreachable!(),
            }
        } else {
            match config.algorithm {
                Algorithm::RTbs => {
                    let mut s = RTbs::new(lambda, config.capacity.expect("validated"));
                    s.set_ingest_mode(core_ingest_mode(&config));
                    s.set_defer_threshold(config.defer_threshold);
                    Inner::RTbs(s)
                }
                Algorithm::TTbs => {
                    let mut s = TTbs::new(
                        lambda,
                        config.capacity.expect("validated"),
                        config.mean_batch.expect("validated"),
                    );
                    s.set_ingest_mode(core_ingest_mode(&config));
                    Inner::TTbs(s)
                }
                Algorithm::BTbs => Inner::BTbs(BTbs::new(lambda)),
                Algorithm::Uniform => {
                    Inner::Uniform(BatchedReservoir::new(config.capacity.expect("validated")))
                }
                Algorithm::Chao => {
                    Inner::Chao(BChao::new(lambda, config.capacity.expect("validated")))
                }
                Algorithm::SlidingCount => {
                    Inner::SlidingCount(CountWindow::new(config.capacity.expect("validated")))
                }
                Algorithm::SlidingTime => {
                    Inner::SlidingTime(TimeWindow::new(config.window_width.expect("validated")))
                }
                Algorithm::ARes => {
                    Inner::ARes(BAres::new(lambda, config.capacity.expect("validated")))
                }
            }
        };
        let cell = match &inner {
            Inner::ParallelRTbs(e) => e.snapshot_cell(),
            Inner::ParallelTTbs(e) => e.snapshot_cell(),
            _ => Arc::new(EpochCell::new()),
        };
        Self {
            inner,
            rng: Xoshiro256PlusPlus::seed_from_u64(config.seed),
            config,
            batches: 0,
            cell,
            requested_epoch: 0,
            last_publish_batches: 0,
            store: None,
            ckpt_tick: None,
            pending_ckpts: Vec::new(),
        }
    }

    /// Advance the clock by one time unit and absorb the arriving batch
    /// (which may be empty). Enum-dispatched onto each sampler's
    /// monomorphized inherent fast path — no `dyn` anywhere inside.
    ///
    /// Errors only for sharded engines whose pipeline has terminally
    /// failed ([`TbsError::Engine`]); single-node ingest is infallible
    /// (automatic checkpoint-store writes are the one exception).
    #[inline]
    pub fn observe(&mut self, batch: Vec<T>) -> Result<(), TbsError> {
        match &mut self.inner {
            Inner::RTbs(s) => s.observe(batch, &mut self.rng),
            Inner::TTbs(s) => s.observe(batch, &mut self.rng),
            Inner::BTbs(s) => s.observe(batch, &mut self.rng),
            Inner::Uniform(s) => s.observe(batch, &mut self.rng),
            Inner::Chao(s) => s.observe(batch, &mut self.rng),
            Inner::SlidingCount(s) => s.observe(batch, &mut self.rng),
            Inner::SlidingTime(s) => s.observe(batch, &mut self.rng),
            Inner::ARes(s) => s.observe(batch, &mut self.rng),
            Inner::ParallelRTbs(e) => e.ingest(batch)?,
            Inner::ParallelTTbs(e) => e.ingest(batch)?,
        }
        self.batches += 1;
        self.maybe_publish()?;
        self.maybe_checkpoint()
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    /// Requires the config to have declared
    /// [`TimeSemantics::RealGaps`]; integer-step streams should call
    /// [`Sampler::observe`].
    ///
    /// Errors (never panics) when gaps were not declared, when the
    /// algorithm is integer-clocked, or when `gap` is negative/non-finite.
    pub fn observe_after(&mut self, batch: Vec<T>, gap: f64) -> Result<(), TbsError> {
        let label = self.config.algorithm.label();
        if self.config.time != TimeSemantics::RealGaps {
            return Err(TbsError::UnsupportedGap {
                algorithm: label,
                reason: "config declares integer time steps; build with \
                         .time(TimeSemantics::RealGaps)",
            });
        }
        if !(gap.is_finite() && gap >= 0.0) {
            return Err(TbsError::UnsupportedGap {
                algorithm: label,
                reason: "gap must be finite and non-negative",
            });
        }
        match &mut self.inner {
            Inner::RTbs(s) => s.observe_after(batch, gap, &mut self.rng),
            Inner::TTbs(s) => s.observe_after(batch, gap, &mut self.rng),
            Inner::BTbs(s) => s.observe_after(batch, gap, &mut self.rng),
            Inner::Chao(s) => s.observe_after(batch, gap, &mut self.rng),
            Inner::SlidingTime(s) => s.observe_after(batch, gap, &mut self.rng),
            _ => unreachable!("validate rejects RealGaps for gap-free algorithms"),
        }
        self.batches += 1;
        self.maybe_publish()?;
        self.maybe_checkpoint()
    }

    /// Materialize the current sample `S_t`.
    ///
    /// Latent schemes (R-TBS) realize the fractional item with a coin from
    /// the handle RNG; sharded engines serve through the snapshot barrier —
    /// the driver enqueues one epoch marker and the shard workers fold the
    /// merge tree off the driver thread — then hand back the published
    /// merged sample (so the call also advances the epoch counters).
    pub fn sample(&mut self) -> Result<Vec<T>, TbsError> {
        let out = match &mut self.inner {
            Inner::RTbs(s) => s.sample(&mut self.rng),
            Inner::TTbs(s) => s.sample(&mut self.rng),
            Inner::BTbs(s) => s.sample(&mut self.rng),
            Inner::Uniform(s) => s.sample(&mut self.rng),
            Inner::Chao(s) => s.sample(&mut self.rng),
            Inner::SlidingCount(s) => s.sample(&mut self.rng),
            Inner::SlidingTime(s) => s.sample(&mut self.rng),
            Inner::ARes(s) => s.sample(&mut self.rng),
            Inner::ParallelRTbs(e) => e.sample()?,
            Inner::ParallelTTbs(e) => e.sample()?,
        };
        self.sync_engine_epoch();
        Ok(out)
    }

    /// [`Sampler::sample`] into a caller-owned buffer — allocation-free
    /// for the single-node samplers once the buffer capacity covers the
    /// sample footprint (retraining loops should hold one buffer and
    /// reuse it). Sharded engines assemble the merged sample in a fresh
    /// vector and move it into `out`.
    pub fn sample_into(&mut self, out: &mut Vec<T>) -> Result<(), TbsError> {
        match &mut self.inner {
            Inner::RTbs(s) => s.sample_into(&mut self.rng, out),
            Inner::TTbs(s) => {
                out.clear();
                out.extend_from_slice(s.items());
            }
            Inner::BTbs(s) => {
                out.clear();
                out.extend_from_slice(s.items());
            }
            Inner::Uniform(s) => {
                out.clear();
                out.extend_from_slice(s.items());
            }
            Inner::SlidingCount(s) => {
                out.clear();
                out.extend(s.iter().cloned());
            }
            Inner::SlidingTime(s) => *out = s.sample(&mut self.rng),
            Inner::Chao(s) => *out = s.sample(&mut self.rng),
            Inner::ARes(s) => *out = s.sample(&mut self.rng),
            Inner::ParallelRTbs(e) => *out = e.sample()?,
            Inner::ParallelTTbs(e) => *out = e.sample()?,
        }
        self.sync_engine_epoch();
        Ok(())
    }

    /// Expected size of `S_t` — the sample weight `C_t` for R-TBS, the
    /// exact current size elsewhere. Sharded engines quiesce and merge to
    /// answer, which is why this takes `&mut self`.
    pub fn expected_size(&mut self) -> Result<f64, TbsError> {
        Ok(match &mut self.inner {
            Inner::RTbs(s) => s.expected_size(),
            Inner::TTbs(s) => s.expected_size(),
            Inner::BTbs(s) => s.expected_size(),
            Inner::Uniform(s) => s.expected_size(),
            Inner::Chao(s) => s.expected_size(),
            Inner::SlidingCount(s) => s.expected_size(),
            Inner::SlidingTime(s) => s.expected_size(),
            Inner::ARes(s) => s.expected_size(),
            Inner::ParallelRTbs(e) => e.snapshot_merged()?.sample_weight(),
            Inner::ParallelTTbs(e) => e.snapshot_merged()?.len() as f64,
        })
    }

    /// Hard upper bound on the realized sample size, if the algorithm
    /// guarantees one.
    pub fn max_size(&self) -> Option<usize> {
        if self.config.algorithm.is_bounded() {
            self.config.capacity
        } else {
            None
        }
    }

    /// The exponential decay rate λ (0 for unbiased schemes).
    pub fn decay_rate(&self) -> f64 {
        self.config.decay_rate()
    }

    /// Batches observed through this handle (including before a
    /// snapshot/restore cycle).
    pub fn batches_observed(&self) -> u64 {
        self.batches
    }

    /// The algorithm behind this handle.
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm()
    }

    /// Short display name ("R-TBS", "SW", …).
    pub fn name(&self) -> &'static str {
        self.config.algorithm.label()
    }

    /// The config this handle was built from.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Number of ingest shards (1 for the single-node samplers).
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Block until every sharded ingest queue has drained (no-op for
    /// single-node samplers). Useful before reading shard statistics or
    /// timing a quiescent point.
    pub fn quiesce(&mut self) -> Result<(), TbsError> {
        match &mut self.inner {
            Inner::ParallelRTbs(e) => e.quiesce()?,
            Inner::ParallelTTbs(e) => e.quiesce()?,
            _ => {}
        }
        Ok(())
    }

    /// Supervision state of the underlying pipeline: always
    /// [`EngineHealth::Healthy`] for single-node samplers; sharded
    /// engines report `Degraded` after supervised recoveries and
    /// `Failed` with the typed cause after an unrecovered fault.
    pub fn health(&self) -> EngineHealth {
        match &self.inner {
            Inner::ParallelRTbs(e) => e.health(),
            Inner::ParallelTTbs(e) => e.health(),
            _ => EngineHealth::Healthy,
        }
    }

    /// Supervised pipeline recoveries performed so far (0 for
    /// single-node samplers and for [`RecoveryPolicy::Fail`] engines).
    ///
    /// [`RecoveryPolicy::Fail`]: tbs_distributed::engine::RecoveryPolicy::Fail
    pub fn recoveries(&self) -> u64 {
        match &self.inner {
            Inner::ParallelRTbs(e) => e.recoveries(),
            Inner::ParallelTTbs(e) => e.recoveries(),
            _ => 0,
        }
    }

    /// A clonable, `Send + Sync` handle for reading epoch-published
    /// snapshots concurrently with ingest; hand one to every consumer
    /// thread. See [`SampleReader`] for the polling contract and
    /// [`Sampler::publish`] for how snapshots get there.
    ///
    /// Prefer `reader()` + [`Sampler::publish`] whenever consumers live on
    /// other threads or reads must not stall ingest; prefer the exact
    /// synchronous [`Sampler::sample`] when you hold `&mut self` anyway
    /// and want the freshest possible sample with no epoch machinery.
    pub fn reader(&self) -> SampleReader<T> {
        SampleReader::new(Arc::clone(&self.cell))
    }

    /// Publish a snapshot of the current sample to every reader and
    /// return its epoch number.
    ///
    /// For **sharded engines** this is the non-blocking barrier protocol:
    /// the call only enqueues markers (backpressure aside) and returns
    /// immediately; shards fork their state at the barrier and keep
    /// ingesting while the background merger folds and publishes the
    /// result. It consumes no randomness from the handle, and the
    /// published sample is bit-identical to what [`Sampler::sample`]
    /// would have returned at this exact point. Use
    /// [`SampleReader::wait_for_epoch`] with the returned epoch to block
    /// until it lands.
    ///
    /// For **single-node samplers** the handle owns the state, so the
    /// snapshot is realized synchronously (consuming the same realization
    /// randomness `sample()` would) and is already published when the
    /// call returns.
    pub fn publish(&mut self) -> Result<u64, TbsError> {
        self.last_publish_batches = self.batches;
        match &mut self.inner {
            Inner::ParallelRTbs(e) => {
                self.requested_epoch = e.request_snapshot()?;
                return Ok(self.requested_epoch);
            }
            Inner::ParallelTTbs(e) => {
                self.requested_epoch = e.request_snapshot()?;
                return Ok(self.requested_epoch);
            }
            _ => {}
        }
        let items = self.sample()?;
        let (total_weight, expected_size) = match &self.inner {
            Inner::RTbs(s) => (Some(s.total_weight()), s.expected_size()),
            Inner::TTbs(s) => (None, s.expected_size()),
            Inner::BTbs(s) => (None, s.expected_size()),
            Inner::Uniform(s) => (None, s.expected_size()),
            Inner::Chao(s) => (None, s.expected_size()),
            Inner::SlidingCount(s) => (None, s.expected_size()),
            Inner::SlidingTime(s) => (None, s.expected_size()),
            Inner::ARes(s) => (None, s.expected_size()),
            Inner::ParallelRTbs(_) | Inner::ParallelTTbs(_) => unreachable!("handled above"),
        };
        self.requested_epoch += 1;
        let epoch = self.requested_epoch;
        self.cell.publish(Arc::new(FrozenSample::new(
            epoch,
            self.batches,
            total_weight,
            expected_size,
            items,
        )));
        Ok(epoch)
    }

    /// Highest epoch published to readers so far (0 before the first
    /// [`Sampler::publish`] completes).
    pub fn published_epoch(&self) -> u64 {
        self.cell.published_epoch()
    }

    /// Highest epoch requested so far. `requested_epoch() -
    /// published_epoch()` is the number of snapshots still in flight
    /// (always 0 for single-node samplers).
    pub fn requested_epoch(&self) -> u64 {
        self.requested_epoch
    }

    /// Mirror the engine's epoch counter after any engine call that may
    /// have consumed epochs internally (`ParallelIngestEngine::sample`
    /// serves through the snapshot pipeline, so each call requests —
    /// and waits out — one epoch).
    fn sync_engine_epoch(&mut self) {
        match &self.inner {
            Inner::ParallelRTbs(e) => self.requested_epoch = e.requested_epoch(),
            Inner::ParallelTTbs(e) => self.requested_epoch = e.requested_epoch(),
            _ => {}
        }
    }

    /// Apply the configured [`PublishPolicy`] after a batch lands.
    ///
    /// `MaxLagBatches` additionally requires the previous snapshot to
    /// have published (`requested == published`) before starting another,
    /// so a slow merge stretches the cadence instead of stacking
    /// barriers behind it.
    fn maybe_publish(&mut self) -> Result<(), TbsError> {
        match self.config.publish {
            PublishPolicy::Manual => {}
            PublishPolicy::EveryBatches(n) => {
                if self.batches.is_multiple_of(n) {
                    self.publish()?;
                }
            }
            PublishPolicy::MaxLagBatches(s) => {
                if self.batches - self.last_publish_batches > s
                    && self.requested_epoch == self.cell.published_epoch()
                {
                    self.publish()?;
                }
            }
        }
        Ok(())
    }

    /// Apply the configured [`CheckpointPolicy`] after a batch lands.
    /// Inert until [`Sampler::set_checkpoint_store`] installs the tick
    /// (which requires `T: Wire`; the stored fn pointer carries that
    /// capability into this non-`Wire` method).
    fn maybe_checkpoint(&mut self) -> Result<(), TbsError> {
        match self.ckpt_tick {
            Some(tick) if self.store.is_some() => tick(self),
            _ => Ok(()),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for Sampler<T> {
    fn drop(&mut self) {
        match &self.inner {
            // The engine's merger drains in-flight barriers and then
            // closes the shared cell itself (engine drop joins it).
            Inner::ParallelRTbs(_) | Inner::ParallelTTbs(_) => {}
            // Single-node: no more publications can ever arrive — wake
            // any reader blocked in wait_for_epoch.
            _ => self.cell.close(),
        }
    }
}

impl<T: Wire + Send + Sync + 'static> Sampler<T> {
    /// Serialize the handle's complete durable state — config echo,
    /// handle RNG position, batch counter, and the algorithm payload
    /// (for sharded engines: every shard's sampler + RNG substream
    /// position, the driver RNG, and the balanced-split deviation
    /// ledger) — into a self-contained, versioned blob.
    ///
    /// Checkpointing consumes **no randomness**: a mid-stream snapshot
    /// leaves the trajectory untouched, and [`Sampler::restore`] resumes
    /// it bit-identically. Sharded engines quiesce first (`&mut self`);
    /// they are also the only fallible case ([`TbsError::Engine`] when
    /// the pipeline has terminally failed).
    pub fn snapshot(&mut self) -> Result<Bytes, TbsError> {
        let mut w = Writer::new();
        w.put_u8(self.config.algorithm.tag());
        w.put_u32(self.config.shards as u32);
        w.put_u64(self.batches);
        w.put_rng_state(self.rng.state());
        match &mut self.inner {
            Inner::RTbs(s) => s.save_state(&mut w),
            Inner::TTbs(s) => s.save_state(&mut w),
            Inner::BTbs(s) => s.save_state(&mut w),
            Inner::Uniform(s) => s.save_state(&mut w),
            Inner::Chao(s) => s.save_state(&mut w),
            Inner::SlidingCount(s) => s.save_state(&mut w),
            Inner::SlidingTime(s) => s.save_state(&mut w),
            Inner::ARes(s) => s.save_state(&mut w),
            Inner::ParallelRTbs(e) => save_engine(&mut w, e.save_parts()?),
            Inner::ParallelTTbs(e) => save_engine(&mut w, e.save_parts()?),
        }
        Ok(w.finish())
    }

    /// Rebuild a sampler from a [`Sampler::snapshot`] blob.
    ///
    /// The blob must have been taken from a sampler built with an
    /// equivalent config: algorithm, shard count, decay rate, and
    /// capacity/target parameters are all cross-checked, and any
    /// disagreement — as well as a truncated, corrupt, or
    /// future-format-version blob — is reported as a [`TbsError`], never
    /// a panic.
    pub fn restore(config: &SamplerConfig, blob: Bytes) -> Result<Self, TbsError> {
        config.validate()?;
        let mut r = Reader::new(blob)?;
        let tag = r.get_u8()?;
        let found = Algorithm::from_tag(tag).ok_or(CheckpointError::Corrupt("algorithm tag"))?;
        if found != config.algorithm {
            return Err(TbsError::AlgorithmMismatch {
                expected: config.algorithm.label(),
                found: found.label(),
            });
        }
        let shards = r.get_u32()? as usize;
        if shards != config.shards {
            return Err(TbsError::ConfigMismatch {
                what: "shard count",
            });
        }
        let batches = r.get_u64()?;
        let rng = Xoshiro256PlusPlus::from_state(r.get_rng_state()?);
        let lambda = config.decay_rate();

        let inner = if config.shards > 1 {
            let engine_cfg = engine_config(config);
            let spec = engine_cfg.spec;
            match config.algorithm {
                Algorithm::RTbs => {
                    let parts = load_engine::<RTbs<T>>(&mut r, spec.cells(), |r| {
                        let mut s = RTbs::load_state(r)?;
                        if s.decay_rate() != lambda {
                            return Err(CheckpointError::Corrupt("shard decay rate"));
                        }
                        if s.capacity() != spec.shard_capacity() {
                            return Err(CheckpointError::Corrupt("shard capacity"));
                        }
                        if s.defer_threshold() != spec.defer_threshold {
                            return Err(CheckpointError::Corrupt("shard defer threshold"));
                        }
                        s.set_ingest_mode(spec.ingest);
                        Ok(s)
                    })?;
                    // The facade and engine batch counters advance in
                    // lockstep through `observe`; a blob where they
                    // disagree was not produced by this code.
                    check(parts.batches == batches, "engine batch count")?;
                    Inner::ParallelRTbs(Box::new(ParallelIngestEngine::from_parts(
                        engine_cfg, parts,
                    )))
                }
                Algorithm::TTbs => {
                    let parts = load_engine::<TTbs<T>>(&mut r, spec.cells(), |r| {
                        let mut s = TTbs::load_state(r)?;
                        if s.decay_rate() != lambda
                            || s.target() != spec.capacity
                            || s.assumed_mean_batch() != spec.mean_batch
                        {
                            return Err(CheckpointError::Corrupt("shard configuration"));
                        }
                        s.set_ingest_mode(spec.ingest);
                        Ok(s)
                    })?;
                    check(parts.batches == batches, "engine batch count")?;
                    Inner::ParallelTTbs(Box::new(ParallelIngestEngine::from_parts(
                        engine_cfg, parts,
                    )))
                }
                _ => unreachable!(),
            }
        } else {
            match config.algorithm {
                Algorithm::RTbs => {
                    let mut s = RTbs::load_state(&mut r)?;
                    check(s.decay_rate() == lambda, "decay rate")?;
                    check(Some(s.capacity()) == config.capacity, "capacity")?;
                    // θ shapes the RNG spend schedule, so a blob written
                    // under a different threshold cannot be resumed
                    // bit-identically — it is a config mismatch, not a
                    // knob to silently re-apply like the ingest mode.
                    check(
                        s.defer_threshold() == config.defer_threshold,
                        "defer threshold",
                    )?;
                    s.set_ingest_mode(core_ingest_mode(config));
                    Inner::RTbs(s)
                }
                Algorithm::TTbs => {
                    let mut s = TTbs::load_state(&mut r)?;
                    check(s.decay_rate() == lambda, "decay rate")?;
                    check(Some(s.target()) == config.capacity, "target size")?;
                    check(
                        Some(s.assumed_mean_batch()) == config.mean_batch,
                        "mean batch",
                    )?;
                    s.set_ingest_mode(core_ingest_mode(config));
                    Inner::TTbs(s)
                }
                Algorithm::BTbs => {
                    let s = BTbs::load_state(&mut r)?;
                    check(s.decay_rate() == lambda, "decay rate")?;
                    Inner::BTbs(s)
                }
                Algorithm::Uniform => {
                    let s = BatchedReservoir::load_state(&mut r)?;
                    check(s.max_size() == config.capacity, "capacity")?;
                    Inner::Uniform(s)
                }
                Algorithm::Chao => {
                    let s = BChao::load_state(&mut r)?;
                    check(s.decay_rate() == lambda, "decay rate")?;
                    check(s.max_size() == config.capacity, "capacity")?;
                    Inner::Chao(s)
                }
                Algorithm::SlidingCount => {
                    let s = CountWindow::load_state(&mut r)?;
                    check(s.max_size() == config.capacity, "capacity")?;
                    Inner::SlidingCount(s)
                }
                Algorithm::SlidingTime => {
                    let s = TimeWindow::load_state(&mut r)?;
                    check(Some(s.width()) == config.window_width, "window width")?;
                    Inner::SlidingTime(s)
                }
                Algorithm::ARes => {
                    let s = BAres::load_state(&mut r)?;
                    check(s.decay_rate() == lambda, "decay rate")?;
                    check(s.max_size() == config.capacity, "capacity")?;
                    Inner::ARes(s)
                }
            }
        };
        if !r.is_exhausted() {
            return Err(CheckpointError::Corrupt("trailing bytes").into());
        }
        let cell = match &inner {
            Inner::ParallelRTbs(e) => e.snapshot_cell(),
            Inner::ParallelTTbs(e) => e.snapshot_cell(),
            _ => Arc::new(EpochCell::new()),
        };
        Ok(Self {
            inner,
            rng,
            config: *config,
            batches,
            cell,
            // Serving epochs are ephemeral: a restored sampler starts a
            // fresh publication sequence (snapshots are not persisted),
            // and the lag clock starts at the restore point.
            requested_epoch: 0,
            last_publish_batches: batches,
            store: None,
            ckpt_tick: None,
            pending_ckpts: Vec::new(),
        })
    }

    /// Rebuild a sampler from the **newest stored checkpoint generation
    /// that validates**, returning it with the generation's sequence
    /// number.
    ///
    /// Walks the store's ring newest→oldest: a generation whose CRC
    /// frame fails ([`tbs_core::checkpoint::frame`] detects bit flips
    /// and torn writes), whose blob is unreadable, or whose parameters
    /// disagree with `config` is *skipped*, not restored — a corrupted
    /// latest checkpoint silently falls back to the one before it. Only
    /// when every stored generation fails does this return
    /// [`TbsError::NoValidCheckpoint`].
    pub fn recover(
        config: &SamplerConfig,
        store: &CheckpointStore,
    ) -> Result<(Self, u64), TbsError> {
        config.validate()?;
        let seqs = store.stored_generations()?;
        let mut attempted = 0;
        for &seq in seqs.iter().rev() {
            attempted += 1;
            let blob = match store.load(seq) {
                Ok(blob) => blob,
                Err(_) => continue,
            };
            if let Ok(sampler) = Self::restore(config, blob) {
                return Ok((sampler, seq));
            }
        }
        Err(TbsError::NoValidCheckpoint { attempted })
    }

    /// Attach a durable checkpoint destination. From here on,
    /// [`Sampler::checkpoint_now`] writes to it and a configured
    /// [`CheckpointPolicy::EveryBatches`] fires automatically during
    /// [`Sampler::observe`] — asynchronously for sharded engines (the
    /// generation rides the barrier machinery and lands a moment later;
    /// [`Sampler::flush_checkpoints`] forces completion), synchronously
    /// for single-node samplers.
    pub fn set_checkpoint_store(&mut self, store: CheckpointStore) {
        self.store = Some(store);
        self.ckpt_tick = Some(Self::checkpoint_tick);
    }

    /// Detach and return the checkpoint store (automatic checkpointing
    /// stops).
    pub fn take_checkpoint_store(&mut self) -> Option<CheckpointStore> {
        self.ckpt_tick = None;
        self.pending_ckpts.clear();
        self.store.take()
    }

    /// Serialize the complete current state and write it to the attached
    /// store as a new generation, returning its sequence number.
    /// Synchronous (sharded engines quiesce, exactly like
    /// [`Sampler::snapshot`]); consumes no randomness.
    pub fn checkpoint_now(&mut self) -> Result<u64, TbsError> {
        if self.store.is_none() {
            return Err(TbsError::InvalidCheckpointPolicy {
                reason: "no checkpoint store attached; call \
                         set_checkpoint_store first",
            });
        }
        let blob = self.snapshot()?;
        let store = self.store.as_mut().expect("checked above");
        store.save(&blob)
    }

    /// Persist every async checkpoint generation still in flight (or
    /// drop the ones a pipeline recovery invalidated), returning how
    /// many generations were written. For single-node samplers this
    /// drains the store's write-behind queue instead (automatic policy
    /// checkpoints defer their disk work to the store's writer thread);
    /// their count is reported at queue time, not here.
    pub fn flush_checkpoints(&mut self) -> Result<usize, TbsError> {
        let mut persisted = self.drain_completed_checkpoints()?;
        let deadline = Instant::now() + Duration::from_secs(10);
        while !self.pending_ckpts.is_empty() && Instant::now() < deadline {
            let store = match self.store.as_mut() {
                Some(store) => store,
                None => break,
            };
            let wait = Duration::from_millis(50);
            persisted += match &mut self.inner {
                Inner::ParallelRTbs(e) => wait_engine_checkpoint(
                    e,
                    store,
                    &self.config,
                    &self.rng,
                    &mut self.pending_ckpts,
                    wait,
                )?,
                Inner::ParallelTTbs(e) => wait_engine_checkpoint(
                    e,
                    store,
                    &self.config,
                    &self.rng,
                    &mut self.pending_ckpts,
                    wait,
                )?,
                _ => break,
            };
        }
        // Single-node write-behind generations: wait for the store's
        // writer to drain, surfacing any background I/O failure here.
        if let Some(store) = self.store.as_mut() {
            store.flush()?;
        }
        Ok(persisted)
    }

    /// One automatic-checkpoint turn, run after each observed batch once
    /// a store is attached: drain async generations that finished
    /// assembling, then fire the policy at its interval boundary.
    fn checkpoint_tick(&mut self) -> Result<(), TbsError> {
        self.drain_completed_checkpoints()?;
        if let CheckpointPolicy::EveryBatches(n) = self.config.checkpoint {
            if self.batches.is_multiple_of(n) {
                self.request_checkpoint_generation()?;
            }
        }
        Ok(())
    }

    /// Start one checkpoint generation: non-blocking barrier request for
    /// sharded engines, immediate serialize-and-write for single-node.
    fn request_checkpoint_generation(&mut self) -> Result<(), TbsError> {
        match &mut self.inner {
            Inner::ParallelRTbs(e) => {
                let gen = e.request_checkpoint()?;
                let recoveries = e.recoveries();
                self.pending_ckpts.push((gen, recoveries));
            }
            Inner::ParallelTTbs(e) => {
                let gen = e.request_checkpoint()?;
                let recoveries = e.recoveries();
                self.pending_ckpts.push((gen, recoveries));
            }
            _ => {
                // Single-node: serialize here (the state must be captured
                // at this batch boundary) but leave the disk work —
                // framing, fsync, rename — to the store's write-behind
                // thread, so the policy costs the ingest loop only the
                // serialization. `flush_checkpoints` (or store drop)
                // makes the queued generations durable.
                let blob = self.snapshot()?;
                if let Some(store) = self.store.as_mut() {
                    store.save_behind(&blob)?;
                }
            }
        }
        Ok(())
    }

    /// Persist every async generation the engine has finished
    /// assembling, and drop pendings that died with a recovered
    /// pipeline. Returns how many generations were written.
    fn drain_completed_checkpoints(&mut self) -> Result<usize, TbsError> {
        let store = match self.store.as_mut() {
            Some(store) => store,
            None => return Ok(0),
        };
        match &mut self.inner {
            Inner::ParallelRTbs(e) => {
                drain_engine_checkpoints(e, store, &self.config, &self.rng, &mut self.pending_ckpts)
            }
            Inner::ParallelTTbs(e) => {
                drain_engine_checkpoints(e, store, &self.config, &self.rng, &mut self.pending_ckpts)
            }
            _ => Ok(0),
        }
    }
}

/// Map a failed cross-check of blob vs config to [`TbsError::ConfigMismatch`].
fn check(ok: bool, what: &'static str) -> Result<(), TbsError> {
    if ok {
        Ok(())
    } else {
        Err(TbsError::ConfigMismatch { what })
    }
}

/// Serialize an async-assembled [`EngineCheckpoint`] into the same
/// blob layout [`Sampler::snapshot`] produces, and write it to the
/// store. The header batch count comes from the checkpoint (the barrier
/// boundary it captured), and the handle RNG is recorded as-is —
/// sharded ingest never touches it, so the blob is byte-identical to a
/// synchronous snapshot taken at that boundary.
fn persist_engine_parts<S>(
    store: &mut CheckpointStore,
    config: &SamplerConfig,
    rng: &Xoshiro256PlusPlus,
    parts: EngineCheckpoint<S>,
) -> Result<u64, TbsError>
where
    S: SaveState,
{
    let mut w = Writer::new();
    w.put_u8(config.algorithm.tag());
    w.put_u32(config.shards as u32);
    w.put_u64(parts.batches);
    w.put_rng_state(rng.state());
    save_engine(&mut w, parts);
    store.save(&w.finish())
}

/// Drop pending async generations that were requested against a
/// pipeline incarnation older than the engine's current one: their fork
/// messages died with it, so they will never assemble.
fn prune_stale_pendings(pending: &mut Vec<(u64, u64)>, current_recoveries: u64) {
    pending.retain(|&(_, requested_at)| requested_at >= current_recoveries);
}

/// Non-blocking drain of every checkpoint generation the engine's
/// merger has finished assembling.
fn drain_engine_checkpoints<S>(
    engine: &mut ParallelIngestEngine<S>,
    store: &mut CheckpointStore,
    config: &SamplerConfig,
    rng: &Xoshiro256PlusPlus,
    pending: &mut Vec<(u64, u64)>,
) -> Result<usize, TbsError>
where
    S: MergeableSample + SaveState + Clone + Send + 'static,
    S::Item: Clone + Send + Sync + 'static,
{
    let mut persisted = 0;
    while let Some((generation, parts)) = engine.try_take_checkpoint() {
        persist_engine_parts(store, config, rng, parts)?;
        pending.retain(|&(g, _)| g != generation);
        persisted += 1;
    }
    prune_stale_pendings(pending, engine.recoveries());
    Ok(persisted)
}

/// One bounded wait for an async generation to assemble; persists it if
/// one lands within `wait`.
fn wait_engine_checkpoint<S>(
    engine: &mut ParallelIngestEngine<S>,
    store: &mut CheckpointStore,
    config: &SamplerConfig,
    rng: &Xoshiro256PlusPlus,
    pending: &mut Vec<(u64, u64)>,
    wait: Duration,
) -> Result<usize, TbsError>
where
    S: MergeableSample + SaveState + Clone + Send + 'static,
    S::Item: Clone + Send + Sync + 'static,
{
    match engine.wait_checkpoint(wait)? {
        Some((generation, parts)) => {
            persist_engine_parts(store, config, rng, parts)?;
            pending.retain(|&(g, _)| g != generation);
            Ok(1)
        }
        None => {
            prune_stale_pendings(pending, engine.recoveries());
            Ok(0)
        }
    }
}

/// Serialize a quiesced engine checkpoint: the group ledger (the cell
/// count every following section is sized by), the balanced-split
/// deviation ledger (one f64 per cell — the splitter's memory of how
/// far each cell's decayed intake sits from the fair share), driver
/// RNG, then each cell's RNG substream position and sampler payload.
fn save_engine<S>(w: &mut Writer, parts: EngineCheckpoint<S>)
where
    S: SaveState,
{
    w.put_u32(parts.shard_states.len() as u32);
    for d in &parts.split_deviations {
        w.put_f64(*d);
    }
    w.put_u64(parts.batches);
    w.put_rng_state(parts.driver_rng);
    w.put_u32(parts.shard_states.len() as u32);
    for (sampler, rng_state) in &parts.shard_states {
        w.put_rng_state(*rng_state);
        sampler.save_state_dyn(w);
    }
}

/// Deserialize [`save_engine`]'s layout, validating each shard cell with
/// `load_shard`. `expect_cells` is the config's [`ShardSpec::cells`] —
/// the logical reservoir count, which is below the worker count when
/// shard groups are active.
fn load_engine<S>(
    r: &mut Reader,
    expect_cells: usize,
    mut load_shard: impl FnMut(&mut Reader) -> Result<S, CheckpointError>,
) -> Result<EngineCheckpoint<S>, CheckpointError> {
    // Group ledger: the blob's own claim of how many cells it carries. A
    // disagreement with the restoring config's grouping cannot resume
    // (every RNG substream and the merge tree are sized by it).
    let cells = r.get_u32()? as usize;
    if cells != expect_cells {
        return Err(CheckpointError::Corrupt("shard group ledger"));
    }
    let mut split_deviations = Vec::with_capacity(cells);
    for _ in 0..cells {
        let d = r.get_f64()?;
        // The balanced splitter keeps every deviation in [-1, 1]; anything
        // outside (or non-finite) cannot have come from a real run.
        if !d.is_finite() || d.abs() > 1.0 + 1e-9 {
            return Err(CheckpointError::Corrupt("split deviation"));
        }
        split_deviations.push(d);
    }
    let batches = r.get_u64()?;
    let driver_rng = r.get_rng_state()?;
    let n = r.get_u32()? as usize;
    if n != cells {
        return Err(CheckpointError::Corrupt("engine shard count"));
    }
    let mut shard_states = Vec::with_capacity(n);
    for _ in 0..n {
        let rng_state = r.get_rng_state()?;
        shard_states.push((load_shard(r)?, rng_state));
    }
    Ok(EngineCheckpoint {
        shard_states,
        driver_rng,
        split_deviations,
        batches,
    })
}

/// Object-safe shim over the samplers' inherent `save_state`, so
/// [`save_engine`] can be generic without a public trait.
trait SaveState {
    fn save_state_dyn(&self, w: &mut Writer);
}

impl<T: Wire> SaveState for RTbs<T> {
    fn save_state_dyn(&self, w: &mut Writer) {
        self.save_state(w);
    }
}

impl<T: Wire> SaveState for TTbs<T> {
    fn save_state_dyn(&self, w: &mut Writer) {
        self.save_state(w);
    }
}
