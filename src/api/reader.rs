//! Concurrent, clonable read handles over epoch-published samples.
//!
//! A [`SampleReader`] is the serving-side counterpart of
//! [`crate::api::Sampler::publish`]: the sampler (or its sharded engine)
//! publishes immutable [`FrozenSample`]s into a shared epoch cell, and any
//! number of reader handles — `Send + Sync + Clone`, one per consumer
//! thread — pull the latest publication without ever touching the ingest
//! path's queues or locks. One `ModelManager` retraining, four dashboard
//! threads polling, and a saturated ingest loop can all run at once.
//!
//! ## Polling cost
//!
//! [`SampleReader::latest`] first checks the published-epoch counter (one
//! atomic load) against the handle's cache and returns the cached `Arc`
//! when nothing new was published — the hot-poll path is lock-free and
//! allocation-free. Only when the epoch moved does it clone the new `Arc`
//! out of the publication slot (a refcount bump under a nanoseconds-scale
//! critical section no ingest thread ever enters).
//!
//! ## Staleness semantics
//!
//! Readers see the newest *published* sample, which trails live ingest by
//! the snapshots still in flight. Every [`FrozenSample`] carries its
//! epoch and the number of batches it reflects
//! ([`FrozenSample::batches_observed`]), so a consumer can decide whether
//! a publication is fresh enough — or call [`SampleReader::wait_for_epoch`]
//! to block until a specific request lands.

use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;
use tbs_core::frozen::FrozenSample;
use tbs_distributed::snapshot::{EpochCell, EpochWait, EpochWaitFuture};

/// A clonable, thread-safe handle reading epoch-published samples; see
/// the [`crate::api`] module docs and [`crate::api::Sampler::reader`].
#[derive(Debug)]
pub struct SampleReader<T> {
    cell: Arc<EpochCell<T>>,
    /// Epoch of `cached` (0 = nothing seen yet).
    seen_epoch: u64,
    cached: Option<Arc<FrozenSample<T>>>,
}

impl<T> Clone for SampleReader<T> {
    /// Cloning shares the publication cell; the cache travels along, so a
    /// clone handed to another thread starts warm.
    fn clone(&self) -> Self {
        Self {
            cell: Arc::clone(&self.cell),
            seen_epoch: self.seen_epoch,
            cached: self.cached.clone(),
        }
    }
}

impl<T> SampleReader<T> {
    pub(crate) fn new(cell: Arc<EpochCell<T>>) -> Self {
        Self {
            cell,
            seen_epoch: 0,
            cached: None,
        }
    }

    /// The most recently published sample, or `None` before the first
    /// publication. Non-blocking: a poll that finds nothing new is one
    /// atomic load plus an `Arc` clone of the cached value, and never
    /// acquires any lock the ingest path uses.
    pub fn latest(&mut self) -> Option<Arc<FrozenSample<T>>> {
        let published = self.cell.published_epoch();
        if published > self.seen_epoch {
            self.cached = self.cell.latest();
            // Trust the sample's own stamp: a publication newer than the
            // counter we read may already sit in the slot.
            self.seen_epoch = self.cached.as_ref().map_or(0, |f| f.epoch());
        }
        self.cached.clone()
    }

    /// Block until a sample of epoch ≥ `epoch` is published, then return
    /// the latest publication (which may be newer). Returns `None` only
    /// when the publisher shut down — its `Sampler` was dropped — before
    /// reaching `epoch`. Shares the timeout variant's closed-check wait
    /// loop, so a publisher dying at any point relative to the wait
    /// (including between the epoch load and the park) unblocks it.
    pub fn wait_for_epoch(&mut self, epoch: u64) -> Option<Arc<FrozenSample<T>>> {
        let frozen = self.cell.wait_for_epoch(epoch)?;
        self.seen_epoch = frozen.epoch();
        self.cached = Some(Arc::clone(&frozen));
        Some(frozen)
    }

    /// [`SampleReader::wait_for_epoch`] with a deadline: block until a
    /// sample of epoch ≥ `epoch` is published, the publisher dies, or
    /// `timeout` elapses — whichever comes first. A consumer waiting on
    /// a publisher whose pipeline is killed mid-wait returns promptly
    /// with [`EpochWait::PublisherGone`] instead of hanging; a healthy
    /// but slow merge returns [`EpochWait::TimedOut`] so the caller can
    /// fall back to [`SampleReader::latest`] or give up.
    pub fn wait_for_epoch_timeout(&mut self, epoch: u64, timeout: Duration) -> EpochWait<T> {
        let wait = self.cell.wait_for_epoch_timeout(epoch, timeout);
        if let EpochWait::Published(frozen) = &wait {
            self.seen_epoch = frozen.epoch();
            self.cached = Some(Arc::clone(frozen));
        }
        wait
    }

    /// Async-task counterpart of [`SampleReader::wait_for_epoch`]:
    /// resolve immediately when a sample of epoch ≥ `epoch` is available
    /// (or the publisher is gone), otherwise park `cx`'s waker for the
    /// next publication — a connection task long-polling for fresh
    /// models parks here instead of pinning a thread. Never returns
    /// [`EpochWait::TimedOut`]; race the wait against a timer for
    /// deadlines.
    pub fn poll_epoch(&mut self, epoch: u64, cx: &mut Context<'_>) -> Poll<EpochWait<T>> {
        let wait = self.cell.poll_epoch(epoch, cx);
        if let Poll::Ready(EpochWait::Published(frozen)) = &wait {
            self.seen_epoch = frozen.epoch();
            self.cached = Some(Arc::clone(frozen));
        }
        wait
    }

    /// An owned future resolving like [`SampleReader::poll_epoch`] (it
    /// does not update this handle's cache; poll through the handle when
    /// you want that).
    pub fn wait_for_epoch_owned(&self, epoch: u64) -> EpochWaitFuture<T> {
        self.cell.wait_for_epoch_owned(epoch)
    }

    /// Highest epoch published so far (0 before the first publication) —
    /// one atomic load. Compare with the epoch of the sample you hold to
    /// measure staleness in publications.
    pub fn published_epoch(&self) -> u64 {
        self.cell.published_epoch()
    }

    /// Epoch of the sample this handle currently caches (0 = none).
    pub fn cached_epoch(&self) -> u64 {
        self.seen_epoch
    }

    /// Whether the publishing sampler has been dropped. The last
    /// publication, if any, remains readable via [`SampleReader::latest`].
    pub fn is_publisher_gone(&self) -> bool {
        self.cell.is_closed()
    }
}

#[cfg(test)]
mod tests {
    use crate::api::SamplerConfig;
    use std::time::{Duration, Instant};

    #[test]
    fn untimed_wait_unblocks_when_the_publisher_dies_mid_wait() {
        // Regression: wait_for_epoch (no timeout) must take the same
        // closed-checked path as wait_for_epoch_timeout, so a sampler
        // dropped while the reader is parked — or closing concurrently
        // with the wait's own epoch check — returns None instead of
        // blocking forever. Sweep drop delays to land the close on both
        // sides of the epoch-load → park edge.
        for delay_us in [0u64, 50, 200, 2000] {
            let sampler = SamplerConfig::rtbs(0.1, 64)
                .seed(9)
                .build::<u64>()
                .expect("valid config");
            let mut reader = sampler.reader();
            let dropper = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                drop(sampler);
            });
            let start = Instant::now();
            assert!(
                reader.wait_for_epoch(1).is_none(),
                "delay {delay_us}µs: wait returned a sample that was never published"
            );
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "delay {delay_us}µs: wait effectively hung"
            );
            assert!(reader.is_publisher_gone());
            dropper.join().unwrap();
        }
    }
}
