//! The production-shaped public API: builder-configured sampler handles,
//! versioned checkpoint/restore, and the model-management loop.
//!
//! Everything in this module is a facade over the expert layer in
//! `tbs_core` / `tbs_distributed` / `tbs_ml` — the raw constructors and
//! inherent methods remain available and unchanged underneath. The facade
//! adds the properties a service needs that the expert layer
//! deliberately does not provide:
//!
//! 1. **Validated construction.** [`SamplerConfig`] is one builder for
//!    all eight sampling algorithms *and* the K-shard parallel ingest
//!    engine; `build` returns a [`TbsError`] instead of panicking on an
//!    invalid λ, capacity, feasibility bound, or shard count.
//! 2. **Durable state.** [`Sampler::snapshot`] serializes the complete
//!    sampler state (RNG positions included) into a versioned blob;
//!    [`Sampler::restore`] rebuilds it in a fresh process and the stream
//!    continues **bit-identically** — verified property-test-style for
//!    every algorithm, saturated and not, single-node and 4-shard.
//! 3. **The retraining loop.** [`ModelManager`] closes the paper's
//!    model-management loop (§6): per batch it scores out-of-sample,
//!    updates the sample, and refits on a policy — every batch,
//!    periodic, or drift-triggered.
//! 4. **Batch-level ingest acceleration.** [`SamplerConfig::ingest_mode`]
//!    selects between the per-item reference path and the exponential-
//!    jumps path ([`IngestMode`]): binomial accept counts with windowed
//!    segment swaps for saturated R-TBS, geometric acceptance gaps with a
//!    checkpointed cross-batch cursor for sparse T-TBS. Statistically
//!    equivalent by construction and *verified* by the chi-square/KS
//!    harness in `tests/statistical_equivalence.rs`; `Auto` opts in
//!    wherever a jump path exists.
//! 5. **Concurrent serving.** [`Sampler::publish`] freezes the current
//!    sample into an epoch-stamped, `Arc`-shared [`FrozenSample`], and
//!    clonable [`SampleReader`] handles (`Send + Sync`) poll it from any
//!    number of threads without stopping ingest — for sharded samplers
//!    the publication runs as a barrier through the pipeline and a
//!    background merge, so one retrain no longer stalls the stream.
//!
//! # Serving quickstart
//!
//! ```
//! use temporal_sampling::api::SamplerConfig;
//!
//! let mut sampler = SamplerConfig::rtbs(0.1, 100)
//!     .seed(1)
//!     .build::<u64>()
//!     .expect("valid config");
//! let mut reader = sampler.reader(); // Send + Sync + Clone
//! assert!(reader.latest().is_none()); // nothing published yet
//!
//! sampler.observe((0..500).collect()).unwrap();
//! let epoch = sampler.publish().unwrap();
//! let frozen = reader.wait_for_epoch(epoch).expect("published");
//! assert_eq!(frozen.epoch(), 1);
//! assert!(frozen.len() <= 100);
//! // `frozen` is immutable and Arc-shared: hand clones of `reader` to
//! // other threads and keep ingesting here.
//! ```
//!
//! # Quickstart
//!
//! ```
//! use temporal_sampling::api::{Algorithm, SamplerConfig};
//!
//! // R-TBS, λ = 0.07, hard bound 1000, 1 shard, fixed seed.
//! let config = SamplerConfig::new(Algorithm::RTbs)
//!     .decay(0.07)
//!     .capacity(1000)
//!     .seed(42);
//! let mut sampler = config.build::<u64>().expect("valid config");
//!
//! for t in 0..50u64 {
//!     sampler.observe((0..100).map(|i| t * 100 + i).collect()).unwrap();
//! }
//!
//! // Durable state: snapshot, restore, continue — bit-identical.
//! let blob = sampler.snapshot().unwrap();
//! let mut restored = temporal_sampling::api::Sampler::restore(&config, blob).unwrap();
//! sampler.observe((0..100).collect()).unwrap();
//! restored.observe((0..100).collect()).unwrap();
//! assert_eq!(sampler.sample().unwrap(), restored.sample().unwrap());
//! ```
//!
//! # Migration from raw constructors
//!
//! | Expert layer (still works) | Facade |
//! |---|---|
//! | `RTbs::new(0.07, 1000)` + own RNG | `SamplerConfig::rtbs(0.07, 1000).seed(s).build()` |
//! | `TTbs::new(λ, n, b)` (panics if infeasible) | `SamplerConfig::ttbs(λ, n, b).build()` → `Err(InfeasibleTarget)` |
//! | `ParallelIngestEngine::new(EngineConfig::new(ShardSpec::rtbs(λ, n, k), s))` | `SamplerConfig::rtbs(λ, n).shards(k).seed(s).build()` |
//! | `sampler.observe(batch, &mut rng)` | `sampler.observe(batch)` (handle owns the RNG) |
//! | hand-rolled `checkpoint::Writer` state | `sampler.snapshot()` / `Sampler::restore(&config, blob)` |

mod config;
mod error;
mod manager;
mod reader;
mod sampler;
mod store;

pub use config::{
    Algorithm, CheckpointPolicy, IngestMode, PublishPolicy, SamplerConfig, TimeSemantics,
};
pub use error::TbsError;
pub use manager::{IngestReport, ManagerMetrics, ModelManager};
pub use reader::SampleReader;
pub use sampler::Sampler;
pub use store::CheckpointStore;

// The failure-semantics vocabulary of the sharded engine is part of the
// facade's surface: configs carry a `RecoveryPolicy`, `TbsError::Engine`
// wraps an `EngineError`, `Sampler::health` reports `EngineHealth`, and
// `SampleReader::wait_for_epoch_timeout` returns an `EpochWait`.
pub use tbs_distributed::engine::{EngineError, EngineHealth, RecoveryPolicy};
pub use tbs_distributed::snapshot::EpochWait;

// Published snapshots are the currency of the serving layer: `publish`
// produces them, `SampleReader::latest` hands them out.
pub use tbs_core::frozen::FrozenSample;

// The retraining-policy vocabulary is part of this module's surface:
// `ModelManager::new` takes a policy, `with_detector` a detector.
pub use tbs_ml::drift::{DriftDetector, DriftVerdict, RetrainPolicy};
// Item types stream through `snapshot`/`restore` via the wire codec.
pub use tbs_core::checkpoint::{CheckpointError, Wire};
