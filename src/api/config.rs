//! Validating builder for every sampler the system offers.
//!
//! [`SamplerConfig`] is the single entry point into the sampling layer:
//! one builder covers all eight core algorithms *and* the K-shard
//! parallel ingest engine, and `build` returns a [`TbsError`] instead of
//! panicking, so service code can assemble configurations from user input
//! safely. The expert layer underneath (raw `RTbs::new` etc.) remains
//! available for code that statically knows its parameters are valid.

use crate::api::error::TbsError;
use crate::api::sampler::Sampler;
use tbs_distributed::engine::RecoveryPolicy;

/// The sampling scheme to run. Capability accessors (bounded size, exact
/// decay law, mergeable, gap support) drive config validation and the
/// README's capability matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// R-TBS (Algorithm 2): exact decay, hard size bound, any arrival
    /// rate — the paper's headline scheme.
    RTbs,
    /// T-TBS (Algorithm 1): exact decay, probabilistic size target,
    /// requires a known constant mean batch size.
    TTbs,
    /// B-TBS (Algorithm 4): exact decay, no size control.
    BTbs,
    /// Batched uniform reservoir (Algorithm 5): no decay, hard bound.
    Uniform,
    /// B-Chao (Algorithms 6–7): hard bound; decay law violated during
    /// fill-up and slow arrivals.
    Chao,
    /// Count-based sliding window: the last `n` items.
    SlidingCount,
    /// Time-based sliding window: everything younger than `width`.
    SlidingTime,
    /// A-Res weighted reservoir (§7): hard bound, non-intuitive
    /// appearance probabilities.
    ARes,
}

impl Algorithm {
    /// All algorithms, in presentation order.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::RTbs,
            Algorithm::TTbs,
            Algorithm::BTbs,
            Algorithm::Uniform,
            Algorithm::Chao,
            Algorithm::SlidingCount,
            Algorithm::SlidingTime,
            Algorithm::ARes,
        ]
    }

    /// Display label, matching the experiment harness
    /// (`"R-TBS"`, `"SW"`, …).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::RTbs => "R-TBS",
            Algorithm::TTbs => "T-TBS",
            Algorithm::BTbs => "B-TBS",
            Algorithm::Uniform => "Unif",
            Algorithm::Chao => "B-Chao",
            Algorithm::SlidingCount => "SW",
            Algorithm::SlidingTime => "SW-time",
            Algorithm::ARes => "A-Res",
        }
    }

    /// Whether the realized sample size has a hard upper bound.
    pub fn is_bounded(self) -> bool {
        !matches!(
            self,
            Algorithm::TTbs | Algorithm::BTbs | Algorithm::SlidingTime
        )
    }

    /// Whether the scheme enforces the exponential relative-inclusion
    /// law (1) exactly at all times.
    pub fn has_exact_decay(self) -> bool {
        matches!(self, Algorithm::RTbs | Algorithm::TTbs | Algorithm::BTbs)
    }

    /// Whether the scheme uses a decay rate λ at all.
    pub fn uses_decay(self) -> bool {
        !matches!(
            self,
            Algorithm::Uniform | Algorithm::SlidingCount | Algorithm::SlidingTime
        )
    }

    /// Whether shard-local states can be merged exactly
    /// (`tbs_core::merge`) — the prerequisite for `shards > 1`.
    pub fn is_mergeable(self) -> bool {
        matches!(self, Algorithm::RTbs | Algorithm::TTbs)
    }

    /// Whether the scheme offers the jump-ahead ingest mode
    /// ([`IngestMode::Jump`]): batch-level acceptance counts plus
    /// geometric inter-acceptance gaps instead of per-item coin flips.
    pub fn supports_jump_ingest(self) -> bool {
        matches!(self, Algorithm::RTbs | Algorithm::TTbs)
    }

    /// Whether the scheme honors real-valued inter-arrival gaps
    /// (`observe_after`).
    pub fn supports_gaps(self) -> bool {
        matches!(
            self,
            Algorithm::RTbs
                | Algorithm::TTbs
                | Algorithm::BTbs
                | Algorithm::Chao
                | Algorithm::SlidingTime
        )
    }

    /// The checkpoint-blob tag byte for this algorithm.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Algorithm::RTbs => 1,
            Algorithm::TTbs => 2,
            Algorithm::BTbs => 3,
            Algorithm::Uniform => 4,
            Algorithm::Chao => 5,
            Algorithm::SlidingCount => 6,
            Algorithm::SlidingTime => 7,
            Algorithm::ARes => 8,
        }
    }

    /// Inverse of [`Algorithm::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.tag() == tag)
    }
}

/// How a sampler spends randomness while absorbing a batch.
///
/// Both concrete strategies realize the *same* distribution over samples
/// (Theorem 4.2's inclusion probabilities; see `tbs_core::jumps` for the
/// equivalence argument and `tests/statistical_equivalence.rs` for the
/// empirical proof) — they differ only in cost and in how the RNG stream
/// is consumed, so trajectories are bit-identical *within* a mode but not
/// *across* modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Let the library choose: jump-ahead for the algorithms that support
    /// it (R-TBS and T-TBS), per-item for everything else.
    Auto,
    /// One acceptance decision per item — the paper's literal Algorithms
    /// 1–2. The default, so existing seeded pipelines keep their exact
    /// historical trajectories.
    #[default]
    PerItem,
    /// Batch-level acceptance sampling: draw per-batch accept *counts*
    /// (`Binomial`) and the *gaps* between acceptances (`Geometric`,
    /// A-ExpJ style), skipping whole runs of rejected items. 2–7× faster
    /// ingest on R-TBS workloads; only R-TBS and T-TBS support it.
    Jump,
}

impl IngestMode {
    /// Display label, matching the benchmark harness's path column.
    pub fn label(self) -> &'static str {
        match self {
            IngestMode::Auto => "auto",
            IngestMode::PerItem => "per-item",
            IngestMode::Jump => "jump",
        }
    }

    /// Resolve against an algorithm: what the shard-local samplers will
    /// actually run.
    pub fn resolve(self, algorithm: Algorithm) -> IngestMode {
        match self {
            IngestMode::Auto if algorithm.supports_jump_ingest() => IngestMode::Jump,
            IngestMode::Auto => IngestMode::PerItem,
            explicit => explicit,
        }
    }
}

/// How the stream's clock advances between batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSemantics {
    /// Batches arrive at integer times; every `observe` advances the
    /// clock by exactly one unit (the paper's §2 base setting).
    #[default]
    IntegerSteps,
    /// Batches carry real-valued inter-arrival gaps fed through
    /// [`Sampler::observe_after`]. Requires a gap-capable algorithm and a
    /// single shard.
    RealGaps,
}

/// When the handle pushes epoch snapshots to its [`SampleReader`]s
/// (see [`Sampler::publish`] and [`Sampler::reader`]).
///
/// Publication is what hands a frozen sample to concurrent reader
/// threads; ingest itself never blocks on it. The automatic policies
/// piggyback on [`Sampler::observe`] / [`Sampler::observe_after`], so a
/// retraining service can consume fresh snapshots without sprinkling
/// `publish()` calls through its ingest loop.
///
/// [`Sampler::publish`]: crate::api::Sampler::publish
/// [`Sampler::reader`]: crate::api::Sampler::reader
/// [`Sampler::observe`]: crate::api::Sampler::observe
/// [`Sampler::observe_after`]: crate::api::Sampler::observe_after
/// [`SampleReader`]: crate::api::SampleReader
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PublishPolicy {
    /// Publish only when [`crate::api::Sampler::publish`] is called — the
    /// default, preserving the explicit-barrier behavior of earlier
    /// releases.
    #[default]
    Manual,
    /// Publish a snapshot every `n` observed batches (`n ≥ 1`; at batch
    /// counts `n, 2n, 3n, …`). Steady cadence, simplest to reason about;
    /// with sharded engines each publication is a non-blocking barrier,
    /// so several may be in flight at once under bursty ingest.
    EveryBatches(u64),
    /// Publish whenever the batches ingested since the last publication
    /// exceed `s` **and** no snapshot is still in flight (`s ≥ 1`).
    /// Bounds reader staleness without ever stacking barriers: a slow
    /// merge simply stretches the interval instead of queueing work.
    MaxLagBatches(u64),
}

/// When the handle writes durable checkpoint generations to its attached
/// [`CheckpointStore`] (see [`Sampler::set_checkpoint_store`] and
/// [`Sampler::recover`]).
///
/// Checkpointing is the durability counterpart of [`PublishPolicy`]:
/// publication hands frozen samples to in-process readers, checkpointing
/// writes CRC-framed state blobs to disk so a crashed process can
/// [`Sampler::recover`] and resume **bit-identically**. For sharded
/// engines the automatic policy rides the same non-blocking barrier
/// machinery as publication — shards fork their state at the boundary
/// and keep ingesting while the checkpoint assembles in the background;
/// single-node samplers serialize synchronously (their state is handle-
/// owned and small).
///
/// A non-`Manual` policy is **inert without a store**: configure it and
/// attach one with [`Sampler::set_checkpoint_store`]; nothing is written
/// until the store arrives.
///
/// [`CheckpointStore`]: crate::api::CheckpointStore
/// [`Sampler::set_checkpoint_store`]: crate::api::Sampler::set_checkpoint_store
/// [`Sampler::recover`]: crate::api::Sampler::recover
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckpointPolicy {
    /// Checkpoint only when [`crate::api::Sampler::checkpoint_now`] is
    /// called — the default.
    #[default]
    Manual,
    /// Write a checkpoint generation every `n` observed batches
    /// (`n ≥ 1`; at batch counts `n, 2n, 3n, …`). Sharded engines
    /// checkpoint asynchronously (the write lands a few batches after
    /// the boundary it captures); [`crate::api::Sampler::flush_checkpoints`]
    /// forces completion.
    EveryBatches(u64),
}

/// Builder for every sampler in the system; see the [`crate::api`] module docs.
///
/// ```
/// use temporal_sampling::api::{Algorithm, SamplerConfig};
///
/// let mut sampler = SamplerConfig::new(Algorithm::RTbs)
///     .decay(0.07)
///     .capacity(1000)
///     .seed(42)
///     .build::<u64>()
///     .expect("valid config");
/// sampler.observe((0..100).collect()).unwrap();
/// assert!(sampler.sample().unwrap().len() <= 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    pub(crate) algorithm: Algorithm,
    pub(crate) decay: Option<f64>,
    pub(crate) capacity: Option<usize>,
    pub(crate) mean_batch: Option<f64>,
    pub(crate) window_width: Option<f64>,
    pub(crate) shards: usize,
    pub(crate) queue_depth: usize,
    pub(crate) defer_threshold: f64,
    pub(crate) group_threshold: usize,
    pub(crate) seed: u64,
    pub(crate) time: TimeSemantics,
    pub(crate) ingest: IngestMode,
    pub(crate) publish: PublishPolicy,
    pub(crate) checkpoint: CheckpointPolicy,
    pub(crate) recovery: RecoveryPolicy,
}

impl SamplerConfig {
    /// Start a config for `algorithm` with nothing else decided.
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            decay: None,
            capacity: None,
            mean_batch: None,
            window_width: None,
            shards: 1,
            queue_depth: 64,
            defer_threshold: 1.0,
            group_threshold: 0,
            seed: 0,
            time: TimeSemantics::default(),
            ingest: IngestMode::default(),
            publish: PublishPolicy::default(),
            checkpoint: CheckpointPolicy::default(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Shorthand: R-TBS with decay rate λ and hard sample-size bound `n`.
    pub fn rtbs(lambda: f64, capacity: usize) -> Self {
        Self::new(Algorithm::RTbs).decay(lambda).capacity(capacity)
    }

    /// Shorthand: T-TBS with decay rate λ, target size `n`, and assumed
    /// mean batch size `b`.
    pub fn ttbs(lambda: f64, target: usize, mean_batch: f64) -> Self {
        Self::new(Algorithm::TTbs)
            .decay(lambda)
            .capacity(target)
            .mean_batch(mean_batch)
    }

    /// Shorthand: B-TBS with decay rate λ (unbounded size).
    pub fn btbs(lambda: f64) -> Self {
        Self::new(Algorithm::BTbs).decay(lambda)
    }

    /// Shorthand: uniform bounded reservoir of `capacity` items.
    pub fn uniform(capacity: usize) -> Self {
        Self::new(Algorithm::Uniform).capacity(capacity)
    }

    /// Shorthand: B-Chao with decay rate λ and capacity `n`.
    pub fn chao(lambda: f64, capacity: usize) -> Self {
        Self::new(Algorithm::Chao).decay(lambda).capacity(capacity)
    }

    /// Shorthand: count-based sliding window over the last `n` items.
    pub fn sliding_count(capacity: usize) -> Self {
        Self::new(Algorithm::SlidingCount).capacity(capacity)
    }

    /// Shorthand: time-based sliding window of the given width.
    pub fn sliding_time(width: f64) -> Self {
        Self::new(Algorithm::SlidingTime).window_width(width)
    }

    /// Shorthand: A-Res weighted reservoir with rate λ and capacity `n`.
    pub fn ares(lambda: f64, capacity: usize) -> Self {
        Self::new(Algorithm::ARes).decay(lambda).capacity(capacity)
    }

    /// Set the exponential decay rate λ.
    pub fn decay(mut self, lambda: f64) -> Self {
        self.decay = Some(lambda);
        self
    }

    /// Set the capacity: R-TBS/Unif/Chao/A-Res hard bound, T-TBS target,
    /// count-window size.
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = Some(n);
        self
    }

    /// Set T-TBS's assumed mean batch size `b`.
    pub fn mean_batch(mut self, b: f64) -> Self {
        self.mean_batch = Some(b);
        self
    }

    /// Set the time-window width.
    pub fn window_width(mut self, w: f64) -> Self {
        self.window_width = Some(w);
        self
    }

    /// Run K shard-local samplers on K threads behind the parallel ingest
    /// engine (K > 1 requires a mergeable algorithm and λ > 0).
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }

    /// Bounded depth of each shard's work queue, in batches (only
    /// meaningful with `shards > 1`; deeper queues smooth bursty
    /// producers, shallower ones bound in-flight memory).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Enable batch-granular (deferred) downsampling on R-TBS with drift
    /// threshold `theta ∈ (0, 1]`. At the default 1.0 every unsaturated
    /// step pays the eager `O(n)` downsample sweep of Algorithm 2; below
    /// 1.0 the per-step decay factors accumulate as a lazy scalar and the
    /// physical sweep is deferred until the accumulated scale drifts
    /// below θ (or a merge/realize/snapshot forces it), making the
    /// per-batch reservoir bookkeeping `O(1)` amortized. The realized
    /// inclusion probabilities are exactly those of the eager path
    /// (Theorem 4.1 downsample scaling composes multiplicatively); with
    /// `theta > e^{-λ}` the run is bit-identical to eager. θ outside
    /// (0, 1], or θ < 1 on a non-R-TBS algorithm, is a validation error.
    pub fn defer_threshold(mut self, theta: f64) -> Self {
        self.defer_threshold = theta;
        self
    }

    /// Group shard worker threads onto shared reservoir *cells* once the
    /// per-cell capacity share `⌈n/G⌉` would fall below `min_cell_capacity`
    /// (0, the default, disables grouping). The cell count G starts at
    /// `shards` and halves until the share clears the bound, so at high K
    /// with small n the K ingest threads drive G < K reservoirs through
    /// the work-stealing protocol instead of K tiny ones — the per-batch
    /// reservoir fixed costs then scale with G, not K. Requires
    /// `shards > 1`; a grouped engine with G cells produces bit-identical
    /// samples to an ungrouped engine built with `shards(G)`.
    pub fn group_threshold(mut self, min_cell_capacity: usize) -> Self {
        self.group_threshold = min_cell_capacity;
        self
    }

    /// Seed for the sampler's RNG (and, sharded, for the jump-ahead
    /// substream family). Same config + same seed + same stream ⇒
    /// bit-identical samples.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declare the stream's time semantics (integer steps vs real gaps).
    pub fn time(mut self, semantics: TimeSemantics) -> Self {
        self.time = semantics;
        self
    }

    /// Choose how ingest spends randomness (see [`IngestMode`]). `Auto`
    /// picks jump-ahead whenever the algorithm supports it; the default
    /// `PerItem` preserves the exact RNG trajectories of earlier releases.
    /// An explicit `Jump` on an algorithm without jump support is a
    /// validation error.
    pub fn ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest = mode;
        self
    }

    /// Choose when snapshots are pushed to readers (see
    /// [`PublishPolicy`]). The default `Manual` publishes only on
    /// explicit `publish()` calls. Batch thresholds of zero are a
    /// validation error.
    pub fn publish_policy(mut self, policy: PublishPolicy) -> Self {
        self.publish = policy;
        self
    }

    /// Choose when durable checkpoint generations are written (see
    /// [`CheckpointPolicy`]). The default `Manual` checkpoints only on
    /// explicit `checkpoint_now()` calls; batch intervals of zero are a
    /// validation error. Inert until a store is attached with
    /// [`crate::api::Sampler::set_checkpoint_store`].
    pub fn checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Choose what a sharded engine does when part of its pipeline dies
    /// (see [`RecoveryPolicy`]): fail typed (default) or respawn the
    /// dead shard from its last barrier fork and replay, restoring
    /// bit-identical state. Requires `shards > 1` — the single-node
    /// samplers have no pipeline to supervise, so configuring recovery
    /// for them is rejected rather than silently ignored.
    pub fn recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The effective decay rate λ (0 when never set).
    pub fn decay_rate(&self) -> f64 {
        self.decay.unwrap_or(0.0)
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The configured RNG seed.
    pub fn rng_seed(&self) -> u64 {
        self.seed
    }

    /// The configured deferred-downsampling drift threshold θ
    /// (1.0 = eager; see [`SamplerConfig::defer_threshold`]).
    pub fn defer_threshold_config(&self) -> f64 {
        self.defer_threshold
    }

    /// The configured shard-group threshold (0 = grouping disabled; see
    /// [`SamplerConfig::group_threshold`]).
    pub fn group_threshold_config(&self) -> usize {
        self.group_threshold
    }

    /// The declared time semantics.
    pub fn time_semantics(&self) -> TimeSemantics {
        self.time
    }

    /// The configured (unresolved) ingest mode.
    pub fn ingest_mode_config(&self) -> IngestMode {
        self.ingest
    }

    /// The configured snapshot-publication policy.
    pub fn publish_policy_config(&self) -> PublishPolicy {
        self.publish
    }

    /// The configured checkpoint policy.
    pub fn checkpoint_policy_config(&self) -> CheckpointPolicy {
        self.checkpoint
    }

    /// The configured pipeline recovery policy.
    pub fn recovery_policy_config(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The ingest mode the samplers will actually run:
    /// [`IngestMode::Auto`] resolved against the algorithm.
    pub fn resolved_ingest_mode(&self) -> IngestMode {
        self.ingest.resolve(self.algorithm)
    }

    /// Check every constraint without constructing anything. `build`
    /// calls this first; exposed so configs can be validated where they
    /// are assembled (e.g. at service-config load time) rather than where
    /// the sampler is spawned.
    pub fn validate(&self) -> Result<(), TbsError> {
        let alg = self.algorithm;
        let label = alg.label();

        // λ: required semantics per algorithm.
        if let Some(lambda) = self.decay {
            if !(lambda.is_finite() && lambda >= 0.0) {
                return Err(TbsError::InvalidDecay { lambda });
            }
            if !alg.uses_decay() && lambda != 0.0 {
                return Err(TbsError::UnusedParameter {
                    what: "decay",
                    algorithm: label,
                });
            }
        }

        // Capacity: required by the bounded schemes, meaningless for the
        // time window; B-TBS takes none.
        match alg {
            Algorithm::RTbs
            | Algorithm::TTbs
            | Algorithm::Uniform
            | Algorithm::Chao
            | Algorithm::SlidingCount
            | Algorithm::ARes => match self.capacity {
                None => {
                    return Err(TbsError::MissingParameter {
                        what: "capacity",
                        algorithm: label,
                    })
                }
                Some(0) => return Err(TbsError::InvalidCapacity),
                Some(_) => {}
            },
            Algorithm::BTbs | Algorithm::SlidingTime => {
                if self.capacity.is_some() {
                    return Err(TbsError::UnusedParameter {
                        what: "capacity",
                        algorithm: label,
                    });
                }
            }
        }

        // Mean batch size: T-TBS only, and it gates feasibility.
        if alg == Algorithm::TTbs {
            let target = self.capacity.expect("checked above");
            let mean_batch = self.mean_batch.ok_or(TbsError::MissingParameter {
                what: "mean_batch",
                algorithm: label,
            })?;
            if !(mean_batch.is_finite() && mean_batch > 0.0) {
                return Err(TbsError::InfeasibleTarget {
                    target,
                    mean_batch,
                    min_mean_batch: 0.0,
                });
            }
            let min_mean_batch = target as f64 * (1.0 - (-self.decay_rate()).exp());
            if mean_batch < min_mean_batch {
                return Err(TbsError::InfeasibleTarget {
                    target,
                    mean_batch,
                    min_mean_batch,
                });
            }
        } else if self.mean_batch.is_some() {
            return Err(TbsError::UnusedParameter {
                what: "mean_batch",
                algorithm: label,
            });
        }

        // Window width: the time window only.
        if alg == Algorithm::SlidingTime {
            let width = self.window_width.ok_or(TbsError::MissingParameter {
                what: "window_width",
                algorithm: label,
            })?;
            if !(width.is_finite() && width > 0.0) {
                return Err(TbsError::InvalidWindowWidth { width });
            }
        } else if self.window_width.is_some() {
            return Err(TbsError::UnusedParameter {
                what: "window_width",
                algorithm: label,
            });
        }

        // Deferred downsampling: θ must be a usable drift bound, and the
        // lazy-scalar machinery exists only in R-TBS (the other schemes
        // have no latent downsample to defer).
        let theta = self.defer_threshold;
        if !(theta.is_finite() && theta > 0.0 && theta <= 1.0) {
            return Err(TbsError::InvalidDeferThreshold { theta });
        }
        if theta < 1.0 && alg != Algorithm::RTbs {
            return Err(TbsError::UnusedParameter {
                what: "defer_threshold",
                algorithm: label,
            });
        }

        // Shard groups exist only in the sharded engine: grouping shares
        // reservoir cells between worker threads, and a single-node
        // sampler has no workers to group.
        if self.group_threshold > 0 && self.shards <= 1 {
            return Err(TbsError::InvalidShardCount {
                shards: self.shards,
                reason: "group_threshold shares reservoir cells between engine \
                         worker threads; single-node samplers have none",
            });
        }

        // Sharding: mergeable algorithms, λ > 0, integer clocks only.
        if self.shards == 0 {
            return Err(TbsError::InvalidShardCount {
                shards: 0,
                reason: "need at least one shard",
            });
        }
        if self.shards > 1 {
            if !alg.is_mergeable() {
                return Err(TbsError::UnshardableAlgorithm { algorithm: label });
            }
            if self.decay_rate() <= 0.0 {
                return Err(TbsError::InvalidShardCount {
                    shards: self.shards,
                    reason: "sharded sampling requires lambda > 0 (the merge \
                             algebra's skew headroom 1/(1-e^-lambda) diverges)",
                });
            }
            if self.time == TimeSemantics::RealGaps {
                return Err(TbsError::InvalidShardCount {
                    shards: self.shards,
                    reason: "shard workers advance integer clocks; real-valued \
                             gaps need a single shard",
                });
            }
            if self.queue_depth == 0 {
                return Err(TbsError::InvalidShardCount {
                    shards: self.shards,
                    reason: "queue depth must be positive",
                });
            }
        }

        // Jump-ahead ingest exists only for R-TBS and T-TBS.
        if self.ingest == IngestMode::Jump && !alg.supports_jump_ingest() {
            return Err(TbsError::UnusedParameter {
                what: "ingest_mode",
                algorithm: label,
            });
        }

        // Real gaps need a gap-capable algorithm.
        if self.time == TimeSemantics::RealGaps && !alg.supports_gaps() {
            return Err(TbsError::UnsupportedGap {
                algorithm: label,
                reason: "the scheme is integer-clocked by construction",
            });
        }

        // Automatic publication thresholds must be positive.
        match self.publish {
            PublishPolicy::EveryBatches(0) => {
                return Err(TbsError::InvalidPublishPolicy {
                    reason: "EveryBatches(0) would publish before any batch \
                             arrives; the interval must be at least 1",
                });
            }
            PublishPolicy::MaxLagBatches(0) => {
                return Err(TbsError::InvalidPublishPolicy {
                    reason: "MaxLagBatches(0) is every batch — use \
                             EveryBatches(1); the lag bound must be at least 1",
                });
            }
            _ => {}
        }

        // Automatic checkpoint intervals must be positive.
        if self.checkpoint == CheckpointPolicy::EveryBatches(0) {
            return Err(TbsError::InvalidCheckpointPolicy {
                reason: "EveryBatches(0) would checkpoint before any batch \
                         arrives; the interval must be at least 1",
            });
        }

        // Supervised recovery exists only in the sharded engine; a
        // single-node config carrying it is mis-assembled.
        if self.recovery == RecoveryPolicy::RespawnFromBarrier && self.shards <= 1 {
            return Err(TbsError::InvalidShardCount {
                shards: self.shards,
                reason: "RespawnFromBarrier supervises the sharded pipeline; \
                         single-node samplers have no workers to respawn",
            });
        }

        Ok(())
    }

    /// Validate and construct the unified [`Sampler`] handle. (`T: Sync`
    /// because published snapshots are `Arc`-shared with concurrent
    /// readers; see [`Sampler::reader`].)
    pub fn build<T: Clone + Send + Sync + 'static>(&self) -> Result<Sampler<T>, TbsError> {
        self.validate()?;
        Ok(Sampler::from_valid_config(self))
    }

    /// Validate and construct a **sharded** [`Sampler`] whose engine runs
    /// under a deterministic injected-fault schedule — the facade entry
    /// point of the fault-injection harness (see
    /// `tbs_distributed::fault`). Production code never installs a plan;
    /// this exists so the fault-matrix suite can exercise worker death,
    /// merger death, and dropped deliveries through the exact same public
    /// surface applications use, rather than a test-only side door.
    ///
    /// Single-node configs are rejected: there is no pipeline to injure.
    pub fn build_with_fault_plan<T: Clone + Send + Sync + 'static>(
        &self,
        plan: std::sync::Arc<tbs_distributed::fault::FaultPlan>,
    ) -> Result<Sampler<T>, TbsError> {
        self.validate()?;
        if self.shards <= 1 {
            return Err(TbsError::InvalidShardCount {
                shards: self.shards,
                reason: "fault injection targets the sharded pipeline; \
                         single-node samplers have no workers to kill",
            });
        }
        Ok(Sampler::from_valid_config_faults(self, Some(plan)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_builds_from_its_shorthand() {
        let configs = [
            SamplerConfig::rtbs(0.1, 100),
            SamplerConfig::ttbs(0.1, 100, 50.0),
            SamplerConfig::btbs(0.1),
            SamplerConfig::uniform(100),
            SamplerConfig::chao(0.1, 100),
            SamplerConfig::sliding_count(100),
            SamplerConfig::sliding_time(5.0),
            SamplerConfig::ares(0.1, 100),
        ];
        for cfg in configs {
            cfg.build::<u64>()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.algorithm.label()));
        }
    }

    #[test]
    fn invalid_decay_is_an_error_not_a_panic() {
        for lambda in [-0.1, f64::NAN, f64::INFINITY] {
            let err = SamplerConfig::rtbs(lambda, 10).build::<u64>().unwrap_err();
            assert!(matches!(err, TbsError::InvalidDecay { .. }), "{err}");
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert_eq!(
            SamplerConfig::rtbs(0.1, 0).build::<u64>().unwrap_err(),
            TbsError::InvalidCapacity
        );
    }

    #[test]
    fn missing_parameters_are_named() {
        let err = SamplerConfig::new(Algorithm::RTbs)
            .decay(0.1)
            .build::<u64>()
            .unwrap_err();
        assert_eq!(
            err,
            TbsError::MissingParameter {
                what: "capacity",
                algorithm: "R-TBS"
            }
        );
        let err = SamplerConfig::new(Algorithm::TTbs)
            .decay(0.1)
            .capacity(50)
            .build::<u64>()
            .unwrap_err();
        assert_eq!(
            err,
            TbsError::MissingParameter {
                what: "mean_batch",
                algorithm: "T-TBS"
            }
        );
        let err = SamplerConfig::new(Algorithm::SlidingTime)
            .build::<u64>()
            .unwrap_err();
        assert_eq!(
            err,
            TbsError::MissingParameter {
                what: "window_width",
                algorithm: "SW-time"
            }
        );
    }

    #[test]
    fn unused_parameters_are_rejected() {
        let err = SamplerConfig::uniform(10)
            .decay(0.5)
            .build::<u64>()
            .unwrap_err();
        assert!(matches!(
            err,
            TbsError::UnusedParameter { what: "decay", .. }
        ));
        let err = SamplerConfig::btbs(0.1)
            .capacity(10)
            .build::<u64>()
            .unwrap_err();
        assert!(matches!(
            err,
            TbsError::UnusedParameter {
                what: "capacity",
                ..
            }
        ));
        let err = SamplerConfig::rtbs(0.1, 10)
            .mean_batch(5.0)
            .build::<u64>()
            .unwrap_err();
        assert!(matches!(
            err,
            TbsError::UnusedParameter {
                what: "mean_batch",
                ..
            }
        ));
    }

    #[test]
    fn ttbs_feasibility_is_checked() {
        // n = 1000, λ = 0.1 ⇒ floor ≈ 95.2; b = 50 is infeasible.
        let err = SamplerConfig::ttbs(0.1, 1000, 50.0)
            .build::<u64>()
            .unwrap_err();
        match err {
            TbsError::InfeasibleTarget {
                target,
                mean_batch,
                min_mean_batch,
            } => {
                assert_eq!(target, 1000);
                assert_eq!(mean_batch, 50.0);
                assert!((min_mean_batch - 95.16).abs() < 0.01);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn sharding_rules_are_enforced() {
        // K = 0 never makes sense.
        assert!(matches!(
            SamplerConfig::rtbs(0.1, 100).shards(0).build::<u64>(),
            Err(TbsError::InvalidShardCount { shards: 0, .. })
        ));
        // Undecayed sharding diverges.
        assert!(matches!(
            SamplerConfig::rtbs(0.0, 100).shards(4).build::<u64>(),
            Err(TbsError::InvalidShardCount { shards: 4, .. })
        ));
        // Non-mergeable algorithms cannot shard.
        assert!(matches!(
            SamplerConfig::chao(0.1, 100).shards(2).build::<u64>(),
            Err(TbsError::UnshardableAlgorithm { .. })
        ));
        // Real gaps and shards are mutually exclusive.
        assert!(matches!(
            SamplerConfig::rtbs(0.1, 100)
                .shards(2)
                .time(TimeSemantics::RealGaps)
                .build::<u64>(),
            Err(TbsError::InvalidShardCount { .. })
        ));
        // And the happy path works.
        assert!(SamplerConfig::rtbs(0.1, 100)
            .shards(4)
            .build::<u64>()
            .is_ok());
        assert!(SamplerConfig::ttbs(0.1, 100, 50.0)
            .shards(2)
            .build::<u64>()
            .is_ok());
    }

    #[test]
    fn real_gaps_need_a_gap_capable_algorithm() {
        for cfg in [
            SamplerConfig::uniform(10),
            SamplerConfig::sliding_count(10),
            SamplerConfig::ares(0.1, 10),
        ] {
            assert!(matches!(
                cfg.time(TimeSemantics::RealGaps).build::<u64>(),
                Err(TbsError::UnsupportedGap { .. })
            ));
        }
        assert!(SamplerConfig::rtbs(0.1, 10)
            .time(TimeSemantics::RealGaps)
            .build::<u64>()
            .is_ok());
    }

    #[test]
    fn jump_ingest_is_validated_per_algorithm() {
        // Explicit jump on jump-capable algorithms is fine.
        assert!(SamplerConfig::rtbs(0.1, 100)
            .ingest_mode(IngestMode::Jump)
            .build::<u64>()
            .is_ok());
        assert!(SamplerConfig::ttbs(0.1, 100, 50.0)
            .ingest_mode(IngestMode::Jump)
            .shards(2)
            .build::<u64>()
            .is_ok());
        // Explicit jump elsewhere is an error naming the parameter.
        for cfg in [
            SamplerConfig::btbs(0.1),
            SamplerConfig::uniform(10),
            SamplerConfig::chao(0.1, 10),
            SamplerConfig::ares(0.1, 10),
        ] {
            let err = cfg
                .ingest_mode(IngestMode::Jump)
                .build::<u64>()
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    TbsError::UnusedParameter {
                        what: "ingest_mode",
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn auto_ingest_resolves_by_capability() {
        // Auto picks jump exactly where the algorithm supports it.
        for alg in Algorithm::all() {
            let resolved = IngestMode::Auto.resolve(alg);
            if alg.supports_jump_ingest() {
                assert_eq!(resolved, IngestMode::Jump, "{}", alg.label());
            } else {
                assert_eq!(resolved, IngestMode::PerItem, "{}", alg.label());
            }
            // Explicit modes resolve to themselves.
            assert_eq!(IngestMode::PerItem.resolve(alg), IngestMode::PerItem);
            assert_eq!(IngestMode::Jump.resolve(alg), IngestMode::Jump);
        }
        // Auto never fails validation, even on non-jump algorithms.
        assert!(SamplerConfig::uniform(10)
            .ingest_mode(IngestMode::Auto)
            .build::<u64>()
            .is_ok());
        // The default stays per-item so historical trajectories survive.
        assert_eq!(
            SamplerConfig::rtbs(0.1, 10).ingest_mode_config(),
            IngestMode::PerItem
        );
        assert_eq!(
            SamplerConfig::rtbs(0.1, 10)
                .ingest_mode(IngestMode::Auto)
                .resolved_ingest_mode(),
            IngestMode::Jump
        );
    }

    #[test]
    fn publish_policy_thresholds_must_be_positive() {
        for policy in [
            PublishPolicy::EveryBatches(0),
            PublishPolicy::MaxLagBatches(0),
        ] {
            let err = SamplerConfig::rtbs(0.1, 100)
                .publish_policy(policy)
                .build::<u64>()
                .unwrap_err();
            assert!(
                matches!(err, TbsError::InvalidPublishPolicy { .. }),
                "{policy:?}: {err}"
            );
        }
        // Positive thresholds build, sharded or not, and the default is
        // Manual.
        assert_eq!(
            SamplerConfig::rtbs(0.1, 100).publish_policy_config(),
            PublishPolicy::Manual
        );
        assert!(SamplerConfig::rtbs(0.1, 100)
            .publish_policy(PublishPolicy::EveryBatches(8))
            .build::<u64>()
            .is_ok());
        assert!(SamplerConfig::rtbs(0.1, 100)
            .shards(4)
            .publish_policy(PublishPolicy::MaxLagBatches(16))
            .build::<u64>()
            .is_ok());
    }

    #[test]
    fn algorithm_tags_roundtrip() {
        for alg in Algorithm::all() {
            assert_eq!(Algorithm::from_tag(alg.tag()), Some(alg));
        }
        assert_eq!(Algorithm::from_tag(0), None);
        assert_eq!(Algorithm::from_tag(99), None);
    }

    #[test]
    fn capability_matrix_matches_the_paper_table() {
        use Algorithm::*;
        // §1 Table 1 / §2: bounded size.
        assert!(RTbs.is_bounded() && Uniform.is_bounded() && Chao.is_bounded());
        assert!(!BTbs.is_bounded() && !TTbs.is_bounded() && !SlidingTime.is_bounded());
        // Exact decay law.
        assert!(RTbs.has_exact_decay() && TTbs.has_exact_decay() && BTbs.has_exact_decay());
        assert!(!Chao.has_exact_decay() && !ARes.has_exact_decay());
        // Merge algebra.
        assert!(RTbs.is_mergeable() && TTbs.is_mergeable());
        assert!(!BTbs.is_mergeable() && !Chao.is_mergeable());
    }
}
