//! Mean-preserving stochastic rounding.
//!
//! R-TBS (Algorithm 2, line 16) accepts a random number of batch items
//! `M = StochRound(m)` with `M = ⌊m⌋` w.p. `⌈m⌉ − m` and `M = ⌈m⌉`
//! w.p. `m − ⌊m⌋`, so that `E[M] = m` exactly. Theorem 4.4 shows this
//! two-point distribution *minimizes variance* among all integer-valued
//! distributions with mean `m` — the reason R-TBS has optimally stable
//! sample sizes.

use rand::Rng;

/// Round `x ≥ 0` to an integer with expectation exactly `x`.
///
/// # Panics
///
/// Panics if `x` is negative or non-finite.
pub fn stochastic_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> u64 {
    assert!(
        x.is_finite() && x >= 0.0,
        "stochastic_round requires finite x >= 0, got {x}"
    );
    let floor = x.floor();
    let frac = x - floor;
    let base = floor as u64;
    if frac > 0.0 && rng.gen::<f64>() < frac {
        base + 1
    } else {
        base
    }
}

/// Independent-coin-flip alternative used by the ablation benchmarks: accept
/// each of `count` candidates with probability `p` (a `Binomial(count, p)`
/// draw). Same mean `count·p` as stochastic rounding of `count·p`, strictly
/// larger variance (Theorem 4.4's foil).
pub fn bernoulli_total<R: Rng + ?Sized>(rng: &mut R, count: u64, p: f64) -> u64 {
    crate::binomial::binomial(rng, count, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn integer_inputs_pass_through() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for x in [0.0, 1.0, 7.0, 1000.0] {
            for _ in 0..50 {
                assert_eq!(stochastic_round(&mut rng, x), x as u64);
            }
        }
    }

    #[test]
    fn output_is_floor_or_ceil() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..10_000 {
            let r = stochastic_round(&mut rng, 3.6);
            assert!(r == 3 || r == 4);
        }
    }

    #[test]
    fn mean_is_preserved() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let x = 3.6;
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| stochastic_round(&mut rng, x)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - x).abs() < 0.01, "mean {mean} vs {x}");
    }

    #[test]
    fn variance_is_minimal_two_point() {
        // Var[StochRound(x)] = frac(x)(1-frac(x)); compare empirically.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let x = 5.25;
        let n = 200_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| stochastic_round(&mut rng, x) as f64)
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let expect = 0.25 * 0.75;
        assert!((var - expect).abs() < 0.01, "var {var} vs {expect}");
    }

    #[test]
    fn stochastic_rounding_beats_bernoulli_variance() {
        // Theorem 4.4's claim, empirically: for the same mean m = count·p,
        // stochastic rounding has (weakly) smaller variance than binomial.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let (count, p) = (40u64, 0.21);
        let m = count as f64 * p;
        let n = 100_000;
        let var_of = |samples: &[f64]| {
            let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64
        };
        let sr: Vec<f64> = (0..n)
            .map(|_| stochastic_round(&mut rng, m) as f64)
            .collect();
        let bt: Vec<f64> = (0..n)
            .map(|_| bernoulli_total(&mut rng, count, p) as f64)
            .collect();
        assert!(
            var_of(&sr) < var_of(&bt),
            "stochastic rounding variance {} not below binomial {}",
            var_of(&sr),
            var_of(&bt)
        );
    }

    #[test]
    #[should_panic(expected = "requires finite x >= 0")]
    fn rejects_negative() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        stochastic_round(&mut rng, -0.5);
    }
}
