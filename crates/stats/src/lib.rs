//! # tbs-stats
//!
//! Probability substrate for the temporally-biased sampling library.
//!
//! The EDBT 2018 paper leans on a handful of classical Monte-Carlo building
//! blocks that are *not* part of the approved dependency set, so they are
//! implemented here from the primary sources the paper cites:
//!
//! * [`mod@binomial`] — exact binomial variates via BINV inversion and the BTPE
//!   accept/reject algorithm of Kachitvichyanukul & Schmeiser (1988), the
//!   paper's reference \[22\].
//! * [`mod@hypergeometric`] — exact hypergeometric variates via a mode-centred
//!   two-sided inversion walk (in the spirit of K&S 1985, reference \[21\]).
//! * [`multivariate`] — multivariate hypergeometric vectors, used by the
//!   distributed algorithms of §5.3 to split delete/insert counts across
//!   workers without centralized slot generation.
//! * [`rng`] — `xoshiro256++` with `jump()` / `long_jump()`, providing the
//!   statistically independent parallel substreams of reference \[20\].
//! * [`rounding`] — the mean-preserving stochastic rounding used by R-TBS.
//! * [`summary`] — streaming moments, quantiles and the expected-shortfall
//!   (ES) risk measure used in §6.2's robustness evaluation.
//! * [`special`] — log-gamma / log-factorial / log-binomial-coefficient
//!   helpers backing the exact samplers.
//! * [`chi2`] — chi-square goodness-of-fit helpers used by the statistical
//!   test-suites of the sampler crates.
//! * [`mod@geometric`] — exact geometric/exponential variates via cdf
//!   inversion, the jump lengths of the A-ExpJ-style ingest mode.
//! * [`gof`] — the goodness-of-fit *policy* layer: the workspace's shared
//!   false-positive budget, chi² quantile tests, a two-sample
//!   Kolmogorov–Smirnov test, and a TOST mean-equivalence check — the
//!   statistical backbone of `tests/statistical_equivalence.rs`.

pub mod binomial;
pub mod chi2;
pub mod geometric;
pub mod gof;
pub mod hypergeometric;
pub mod multivariate;
pub mod normal;
pub mod rng;
pub mod rounding;
pub mod special;
pub mod summary;

pub use binomial::{binomial, CachedBinomial};
// (function re-exports intentionally shadow module names in docs)
pub use geometric::{exponential, geometric};
pub use hypergeometric::hypergeometric;
pub use multivariate::multivariate_hypergeometric;
pub use rng::Xoshiro256PlusPlus;
pub use rounding::stochastic_round;
pub use summary::{expected_shortfall, OnlineMoments};
