//! Chi-square goodness-of-fit helpers for the statistical test-suites.
//!
//! These are *test utilities*, not a general statistics package: enough to
//! assert that empirical sampler output matches an exact pmf at a chosen
//! significance level, with automatic pooling of low-expectation cells.

/// Pool adjacent cells until every pooled cell has expected count at least
/// `min_expected`, then return `(statistic, degrees_of_freedom)`.
///
/// `observed` are raw counts; `expected` are expected counts on the same
/// support (must have equal lengths). Cells with zero expectation merge into
/// their neighbours. Returns `None` if fewer than two pooled cells remain
/// (no test possible).
pub fn chi2_pooled(observed: &[u64], expected: &[f64], min_expected: f64) -> Option<(f64, usize)> {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_o += o as f64;
        acc_e += e;
        if acc_e >= min_expected {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    // Fold any trailing low-mass remainder into the last cell.
    if acc_e > 0.0 || acc_o > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            pooled.push((acc_o, acc_e));
        }
    }
    if pooled.len() < 2 {
        return None;
    }
    let stat: f64 = pooled
        .iter()
        .map(|&(o, e)| if e > 0.0 { (o - e) * (o - e) / e } else { 0.0 })
        .sum();
    Some((stat, pooled.len() - 1))
}

/// Approximate upper critical value of the chi-square distribution with `df`
/// degrees of freedom at tail probability `alpha`, via the Wilson–Hilferty
/// cube transformation. Accurate to a few percent for `df ≥ 3`, which is
/// ample for pass/fail testing at `alpha ≤ 1e-3`.
pub fn chi2_critical(df: usize, alpha: f64) -> f64 {
    let z = standard_normal_quantile(1.0 - alpha);
    let d = df as f64;
    let term = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * term * term * term
}

/// Standard normal quantile (inverse cdf) via the Acklam rational
/// approximation; absolute error below 1.2e-9 on (0, 1).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -standard_normal_quantile(1.0 - p)
    }
}

/// Convenience: does the chi-square statistic of `observed` against
/// `expected` exceed the critical value at significance `alpha`?
///
/// Returns `false` (i.e. "consistent with the hypothesis") when no test is
/// possible after pooling.
pub fn chi2_statistic_exceeds(
    observed: &[u64],
    expected: &[f64],
    min_expected: f64,
    alpha: f64,
) -> bool {
    match chi2_pooled(observed, expected, min_expected) {
        Some((stat, df)) => stat > chi2_critical(df, alpha),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        // Φ⁻¹(0.975) ≈ 1.959964, Φ⁻¹(0.5) = 0, Φ⁻¹(0.999) ≈ 3.090232.
        assert!((standard_normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!(standard_normal_quantile(0.5).abs() < 1e-8);
        assert!((standard_normal_quantile(0.999) - 3.090_232).abs() < 1e-4);
        // Symmetry.
        assert!((standard_normal_quantile(0.025) + standard_normal_quantile(0.975)).abs() < 1e-8);
    }

    #[test]
    fn chi2_critical_reference_values() {
        // Textbook values: χ²(10, 0.05) ≈ 18.31, χ²(5, 0.01) ≈ 15.09.
        assert!((chi2_critical(10, 0.05) - 18.31).abs() < 0.3);
        assert!((chi2_critical(5, 0.01) - 15.09).abs() < 0.4);
    }

    #[test]
    fn pooling_respects_min_expected() {
        let observed = [1u64, 2, 3, 100, 4, 3];
        let expected = [1.0, 2.0, 3.0, 100.0, 4.0, 3.0];
        let (_, df) = chi2_pooled(&observed, &expected, 5.0).unwrap();
        // Cells (1,2,3) pool together (6 ≥ 5), then 100, then (4,3) → 3 cells.
        assert_eq!(df, 2);
    }

    #[test]
    fn perfect_fit_has_zero_statistic() {
        let observed = [10u64, 20, 30, 40];
        let expected = [10.0, 20.0, 30.0, 40.0];
        let (stat, _) = chi2_pooled(&observed, &expected, 5.0).unwrap();
        assert!(stat < 1e-12);
    }

    #[test]
    fn gross_mismatch_is_detected() {
        let observed = [1000u64, 0, 0, 0];
        let expected = [250.0, 250.0, 250.0, 250.0];
        assert!(chi2_statistic_exceeds(&observed, &expected, 5.0, 1e-4));
    }

    #[test]
    fn single_cell_returns_none() {
        let observed = [3u64];
        let expected = [3.0];
        assert!(chi2_pooled(&observed, &expected, 5.0).is_none());
    }

    #[test]
    fn trailing_remainder_folds_into_last_cell() {
        let observed = [10u64, 10, 1];
        let expected = [10.0, 10.0, 1.0];
        let (stat, df) = chi2_pooled(&observed, &expected, 5.0).unwrap();
        assert_eq!(df, 1);
        assert!(stat < 1e-12);
    }
}
