//! Exact hypergeometric random variates.
//!
//! `HyperGeo(k, a, b)` — the number of "successes" when drawing `k` items
//! without replacement from a population of `a` successes and `b` failures —
//! drives batched reservoir sampling (Algorithm 5 of the paper) and the
//! per-worker split of deletes/inserts in the distributed algorithms (§5.3).
//! The paper cites Kachitvichyanukul & Schmeiser (1985) \[21\] for efficient
//! generation; we implement a mode-centred two-sided inversion walk, which is
//! exact, numerically robust (the pmf is evaluated in log space at the mode
//! only), and O(σ) expected time — entirely adequate for the population
//! sizes the samplers see.

use crate::special::ln_choose;
use rand::Rng;

/// Draw from the hypergeometric distribution with pmf
/// `P(X = x) = C(a, x) · C(b, k − x) / C(a + b, k)` on the support
/// `max(0, k − b) ≤ x ≤ min(a, k)`.
///
/// Mirrors the paper's `HyperGeo(k, a, b)`: draw `k` items from `a`
/// successes and `b` failures; return the number of successes drawn.
///
/// # Panics
///
/// Panics if `k > a + b` (cannot draw more items than the population holds).
pub fn hypergeometric<R: Rng + ?Sized>(rng: &mut R, k: u64, a: u64, b: u64) -> u64 {
    assert!(
        k <= a + b,
        "hypergeometric draw count k={k} exceeds population a+b={}",
        a + b
    );
    let lo = k.saturating_sub(b);
    let hi = a.min(k);
    if lo == hi {
        return lo; // Degenerate support.
    }

    // Mode of the distribution.
    let mode = (((k + 1) as f64 * (a + 1) as f64) / ((a + b + 2) as f64)) as u64;
    let mode = mode.clamp(lo, hi);

    // Log-pmf at the mode, computed exactly in log space.
    let ln_denom = ln_choose(a + b, k);
    let ln_pmf_mode = ln_choose(a, mode) + ln_choose(b, k - mode) - ln_denom;
    let pmf_mode = ln_pmf_mode.exp();

    // Two-sided inversion: spend the uniform deviate outward from the mode.
    // Ratios:
    //   p(x+1)/p(x) = (a−x)(k−x) / ((x+1)(b−k+x+1))
    //   p(x−1)/p(x) = x(b−k+x) / ((a−x+1)(k−x+1))
    loop {
        let mut u: f64 = rng.gen::<f64>();

        u -= pmf_mode;
        if u < 0.0 {
            return mode;
        }

        let mut x_up = mode;
        let mut p_up = pmf_mode;
        let mut x_dn = mode;
        let mut p_dn = pmf_mode;
        let mut up_alive = x_up < hi;
        let mut dn_alive = x_dn > lo;

        while up_alive || dn_alive {
            // Expand in the direction whose next pmf value is larger, so the
            // deviate is consumed as fast as possible.
            let next_up = if up_alive {
                let x = x_up as f64;
                p_up * ((a as f64 - x) * (k as f64 - x))
                    / ((x + 1.0) * (b as f64 - k as f64 + x + 1.0))
            } else {
                -1.0
            };
            let next_dn = if dn_alive {
                let x = x_dn as f64;
                p_dn * (x * (b as f64 - k as f64 + x))
                    / ((a as f64 - x + 1.0) * (k as f64 - x + 1.0))
            } else {
                -1.0
            };

            if next_up >= next_dn {
                x_up += 1;
                p_up = next_up;
                u -= p_up;
                if u < 0.0 {
                    return x_up;
                }
                up_alive = x_up < hi;
            } else {
                x_dn -= 1;
                p_dn = next_dn;
                u -= p_dn;
                if u < 0.0 {
                    return x_dn;
                }
                dn_alive = x_dn > lo;
            }
        }
        // Numerical leakage (u did not reach 0 after exhausting the support,
        // probability ~1e-15): redraw.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gof::chi2_rejects;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    fn exact_pmf(k: u64, a: u64, b: u64, x: u64) -> f64 {
        (ln_choose(a, x) + ln_choose(b, k - x) - ln_choose(a + b, k)).exp()
    }

    fn empirical_check(k: u64, a: u64, b: u64, draws: usize, seed: u64) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let hi = a.min(k);
        let mut counts = vec![0u64; hi as usize + 1];
        for _ in 0..draws {
            let x = hypergeometric(&mut rng, k, a, b);
            assert!(x <= hi);
            assert!(x >= k.saturating_sub(b));
            counts[x as usize] += 1;
        }
        let expected: Vec<f64> = (0..=hi)
            .map(|x| exact_pmf(k, a, b, x) * draws as f64)
            .collect();
        assert!(
            !chi2_rejects(&counts, &expected),
            "hypergeometric({k},{a},{b}) fails chi-square"
        );
    }

    #[test]
    fn degenerate_supports() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        // Draw everything → all successes drawn.
        assert_eq!(hypergeometric(&mut rng, 10, 4, 6), 4);
        // No failures → every draw is a success.
        assert_eq!(hypergeometric(&mut rng, 3, 5, 0), 3);
        // No successes.
        assert_eq!(hypergeometric(&mut rng, 3, 0, 5), 0);
        // Draw nothing.
        assert_eq!(hypergeometric(&mut rng, 0, 5, 5), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        hypergeometric(&mut rng, 11, 4, 6);
    }

    #[test]
    fn small_population_distribution() {
        empirical_check(5, 6, 4, 200_000, 2);
    }

    #[test]
    fn asymmetric_population_distribution() {
        empirical_check(20, 7, 300, 200_000, 3);
    }

    #[test]
    fn large_draw_distribution() {
        empirical_check(150, 100, 100, 100_000, 4);
    }

    #[test]
    fn mean_matches_theory_large_population() {
        // E[X] = k·a/(a+b).
        let (k, a, b) = (5_000u64, 30_000u64, 70_000u64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let draws = 5_000;
        let mean: f64 = (0..draws)
            .map(|_| hypergeometric(&mut rng, k, a, b) as f64)
            .sum::<f64>()
            / draws as f64;
        let true_mean = k as f64 * a as f64 / (a + b) as f64;
        // Var = k (a/(a+b)) (b/(a+b)) (a+b-k)/(a+b-1) ≈ 997.5 here.
        let sd = (k as f64 * 0.3 * 0.7 * ((a + b - k) as f64 / (a + b - 1) as f64)).sqrt();
        assert!(
            (mean - true_mean).abs() < 4.0 * sd / (draws as f64).sqrt(),
            "mean {mean} vs {true_mean}"
        );
    }

    #[test]
    fn symmetry_in_successes_and_failures() {
        // X ~ HyperGeo(k,a,b) implies k−X ~ HyperGeo(k,b,a); compare means.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let draws = 50_000;
        let m1: f64 = (0..draws)
            .map(|_| hypergeometric(&mut rng, 10, 15, 25) as f64)
            .sum::<f64>()
            / draws as f64;
        let m2: f64 = (0..draws)
            .map(|_| 10.0 - hypergeometric(&mut rng, 10, 25, 15) as f64)
            .sum::<f64>()
            / draws as f64;
        assert!((m1 - m2).abs() < 0.05, "{m1} vs {m2}");
    }
}
