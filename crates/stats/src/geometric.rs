//! Exact geometric and exponential variates via cdf inversion.
//!
//! The jump-ahead ingest mode (see `tbs-core::jumps`) replaces per-item
//! `Bernoulli(q)` acceptance trials with the *gaps* between acceptances:
//! for iid trials the number of failures before the next success is
//! `Geometric(q)`, so one draw here skips a whole run of rejected items —
//! the A-ExpJ idiom of Efraimidis & Spirakis (2006), where the analogous
//! exponential jump skips over reservoir non-entries.
//!
//! Both samplers are *exact* inversions of the target cdf (no
//! approximation): `⌊ln U / ln(1−p)⌋` has exactly the geometric pmf
//! `p(1−p)^k`, and `−ln U / rate` exactly the exponential density.

use rand::Rng;

/// Draw a geometric variate: the number of **failures before the first
/// success** in iid Bernoulli(`p`) trials, supported on `{0, 1, 2, …}`
/// with pmf `p·(1−p)^k`.
///
/// Sampled by inverting the cdf: `⌊ln U / ln(1−p)⌋` for `U ~ (0, 1]`,
/// which is exact for every representable `p`. Counts beyond `u64::MAX`
/// (reachable only for sub-denormal `p`) saturate.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]` or is NaN.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "geometric success probability must lie in (0,1], got {p}"
    );
    if p == 1.0 {
        return 0;
    }
    // rng.gen::<f64>() is uniform on [0, 1); mapping U ↦ 1 − U gives
    // (0, 1], keeping ln finite.
    let u = 1.0 - rng.gen::<f64>();
    let k = u.ln() / (1.0 - p).ln();
    // f64 → u64 casts saturate in Rust, handling the sub-denormal-p tail.
    k as u64
}

/// Draw an exponential variate with the given `rate` (mean `1/rate`), by
/// inversion: `−ln U / rate` for `U ~ (0, 1]`.
///
/// This is the continuous-time jump of A-ExpJ: for gap-timed streams the
/// waiting time to the next acceptance under intensity `rate` is
/// exponential, and one draw advances the clock over the whole quiet run.
///
/// # Panics
///
/// Panics if `rate` is not finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be finite and positive, got {rate}"
    );
    let u = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gof;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn certain_success_never_skips() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "must lie in (0,1]")]
    fn rejects_zero_probability() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        geometric(&mut rng, 0.0);
    }

    #[test]
    fn geometric_matches_exact_pmf() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for &p in &[0.05, 0.3, 0.7] {
            let draws = 200_000usize;
            let support = (40.0 / p) as usize;
            let mut counts = vec![0u64; support + 1];
            for _ in 0..draws {
                let k = (geometric(&mut rng, p) as usize).min(support);
                counts[k] += 1;
            }
            // pmf p(1−p)^k, with the final cell absorbing the tail mass.
            let mut expected: Vec<f64> = (0..=support)
                .map(|k| p * (1.0 - p).powi(k as i32) * draws as f64)
                .collect();
            let tail = draws as f64 - expected[..support].iter().sum::<f64>();
            expected[support] = tail.max(0.0);
            assert!(
                !gof::chi2_rejects(&counts, &expected),
                "geometric({p}) empirical distribution fails chi-square"
            );
        }
    }

    #[test]
    fn geometric_mean_matches() {
        // E[G] = (1−p)/p.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let p = 0.2;
        let draws = 100_000;
        let sum: u64 = (0..draws).map(|_| geometric(&mut rng, p)).sum();
        let mean = sum as f64 / draws as f64;
        let expect = (1.0 - p) / p;
        assert!((mean - expect).abs() < 0.05, "mean {mean} vs {expect}");
    }

    #[test]
    fn exponential_mean_and_median() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let rate = 2.5;
        let draws = 200_000;
        let samples: Vec<f64> = (0..draws).map(|_| exponential(&mut rng, rate)).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
        let below_median = samples
            .iter()
            .filter(|&&x| x < std::f64::consts::LN_2 / rate)
            .count();
        let frac = below_median as f64 / draws as f64;
        assert!((frac - 0.5).abs() < 0.01, "median frac {frac}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 0.1);
            assert!(x.is_finite() && x > 0.0);
        }
    }
}
