//! Exact binomial random variates.
//!
//! `Binomial(n, p)` draws are the workhorse of every sampler in the paper:
//! T-TBS and B-TBS simulate `|S|` retention coin-flips with a single binomial
//! draw (Algorithm 1 lines 6/8, Algorithm 4 line 4). The implementation
//! follows the paper's own citation \[22\], Kachitvichyanukul & Schmeiser,
//! *Binomial Random Variate Generation*, CACM 31(2), 1988:
//!
//! * **BINV** — cdf inversion by search from zero, used when
//!   `n · min(p, 1−p) < 10`. Expected time O(n·p).
//! * **BTPE** — *Binomial, Triangle, Parallelogram, Exponential* accept/reject
//!   with squeeze, used otherwise. Expected O(1) time independent of `n`.
//!
//! Both are exact (they sample the true pmf, not an approximation).

use crate::special::btpe_stirling_correction;
use rand::Rng;

/// Threshold on `n · min(p, 1−p)` below which plain inversion wins.
const BINV_THRESHOLD: f64 = 10.0;

/// Draw a binomial(n, p) variate: the number of successes in `n` independent
/// trials with success probability `p`.
///
/// # Panics
///
/// Panics if `p` is not a probability (outside `[0, 1]` or NaN).
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial success probability must lie in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }

    // Work with q = min(p, 1-p) and flip at the end; both BINV and BTPE
    // require the left-tailed parametrization.
    let flipped = p > 0.5;
    let q = if flipped { 1.0 - p } else { p };

    let result = if (n as f64) * q < BINV_THRESHOLD {
        binv(rng, n, q)
    } else {
        btpe(rng, n, q)
    };

    if flipped {
        n - result
    } else {
        result
    }
}

/// A binomial sampler that memoizes the BINV setup across draws.
///
/// The one-shot [`binomial`] recomputes `q^n` (a `powf`) on every BINV-path
/// call. Ingest hot loops draw `Binomial(b, p)` once per batch with the
/// *same* `(n, p)` for long runs — at saturation equilibrium the R-TBS
/// acceptance probability `n/W_t` is constant to f64 precision — so the
/// setup can be hoisted out of the loop. The cached path is
/// **draw-for-draw identical** to [`binomial`]: it shares the same
/// `binv_from` walk and consumes the same RNG stream, so switching to
/// the cache never changes a sampled trajectory.
///
/// BTPE-regime parameters (`n·min(p,1−p) ≥ 10`) fall through to the
/// one-shot sampler, whose envelope setup is already amortized by its
/// O(1) rejection loop.
#[derive(Debug, Clone)]
pub struct CachedBinomial {
    n: u64,
    p: f64,
    /// `(s, a, f0)` of the left-tailed BINV recursion when the cached
    /// parameters are in BINV territory; `None` routes to BTPE.
    binv: Option<(f64, f64, f64)>,
    flipped: bool,
}

impl Default for CachedBinomial {
    fn default() -> Self {
        Self::new()
    }
}

impl CachedBinomial {
    /// Create an empty cache; the first draw populates it.
    pub fn new() -> Self {
        CachedBinomial {
            n: 0,
            // NaN compares unequal to everything (itself included), so the
            // first draw always rebuilds.
            p: f64::NAN,
            binv: None,
            flipped: false,
        }
    }

    /// Draw `Binomial(n, p)`, reusing the memoized setup when `(n, p)`
    /// matches the previous draw.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability (outside `[0, 1]` or NaN).
    #[inline]
    pub fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R, n: u64, p: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial success probability must lie in [0,1], got {p}"
        );
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        if n != self.n || p != self.p {
            self.rebuild(n, p);
        }
        let result = match self.binv {
            Some((s, a, f0)) => binv_from(rng, n, s, a, f0),
            None => {
                let q = if self.flipped { 1.0 - p } else { p };
                btpe(rng, n, q)
            }
        };
        if self.flipped {
            n - result
        } else {
            result
        }
    }

    #[cold]
    fn rebuild(&mut self, n: u64, p: f64) {
        self.n = n;
        self.p = p;
        self.flipped = p > 0.5;
        let q = if self.flipped { 1.0 - p } else { p };
        self.binv = if (n as f64) * q < BINV_THRESHOLD {
            let qq = 1.0 - q;
            let s = q / qq;
            let a = (n as f64 + 1.0) * s;
            let f0 = qq.powf(n as f64);
            Some((s, a, f0))
        } else {
            None
        };
    }
}

/// BINV: sequential cdf inversion from zero. Requires `p ≤ 0.5`.
fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!(p <= 0.5);
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // f(0) = q^n; for the parameter range BINV is used in (np < 10, so
    // n ln q > -20 well within f64 range) this cannot underflow to zero
    // unless n is astronomically large; in that rare case fall through to a
    // loop bounded by n.
    let f = q.powf(n as f64);
    binv_from(rng, n, s, a, f)
}

/// The BINV inversion walk with precomputed `(s, a, f0)` — shared by
/// [`binv`] and [`CachedBinomial`], so the cached path is draw-for-draw
/// identical to the one-shot path.
#[inline]
fn binv_from<R: Rng + ?Sized>(rng: &mut R, n: u64, s: f64, a: f64, f: f64) -> u64 {
    loop {
        // Restart if the u draw exceeds the accumulated mass due to rounding
        // (probability ~1e-16 per draw).
        let mut u: f64 = rng.gen();
        let mut x: u64 = 0;
        let mut fx = f;
        loop {
            if u < fx {
                return x;
            }
            u -= fx;
            x += 1;
            if x > n {
                break; // numerical leak; redraw u
            }
            fx *= a / x as f64 - s;
        }
    }
}

/// BTPE: accept/reject with triangle + parallelogram + exponential tails.
/// Requires `p ≤ 0.5` and `n·p ≥ 10`.
///
/// Variable names follow the 1988 paper so the code can be checked against
/// the published algorithm line by line.
fn btpe<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!(p <= 0.5);
    let nf = n as f64;
    let q = 1.0 - p;
    let np = nf * p;
    debug_assert!(np >= BINV_THRESHOLD);
    let npq = np * q;
    let f_m = np + p; // mode location + 1 in continuous terms
    let m = f_m as u64; // integer mode, floor(f_m)
    let mf = m as f64;

    // Step 0: set up the four-region envelope.
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = mf + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + mf);
    // Tail exponents.
    let al = (f_m - x_l) / (f_m - x_l * p);
    let lambda_l = al * (1.0 + 0.5 * al);
    let ar = (x_r - f_m) / (x_r * q);
    let lambda_r = ar * (1.0 + 0.5 * ar);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    loop {
        // Step 1: select region.
        let u: f64 = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();

        let y: i64;
        if u <= p1 {
            // Triangular region: accept immediately.
            return (x_m - p1 * v + u) as u64;
        } else if u <= p2 {
            // Parallelogram region.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (x - x_m).abs() / p1;
            if v > 1.0 || v <= 0.0 {
                continue;
            }
            y = x as i64;
        } else if u <= p3 {
            // Left exponential tail.
            y = (x_l + v.ln() / lambda_l) as i64;
            if y < 0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (x_r - v.ln() / lambda_r) as i64;
            if y > n as i64 {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Step 5: acceptance test of v against f(y)/f(m).
        let yf = y as f64;
        let k = (y - m as i64).unsigned_abs();
        let kf = k as f64;

        if kf <= 20.0 || kf >= npq / 2.0 - 1.0 {
            // 5.1: evaluate f(y)/f(m) by recursive multiplication.
            let s = p / q;
            let a = s * (nf + 1.0);
            let mut f = 1.0;
            if m < y as u64 {
                for i in (m + 1)..=(y as u64) {
                    f *= a / i as f64 - s;
                }
            } else if m > y as u64 {
                for i in (y as u64 + 1)..=m {
                    f /= a / i as f64 - s;
                }
            }
            if v <= f {
                return y as u64;
            }
            continue;
        }

        // 5.2: squeeze test on ln v.
        let rho = (kf / npq) * ((kf * (kf / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
        let t = -kf * kf / (2.0 * npq);
        let alpha = v.ln();
        if alpha < t - rho {
            return y as u64;
        }
        if alpha > t + rho {
            continue;
        }

        // 5.3: final acceptance via Stirling-corrected exact log-pmf ratio.
        let x1 = yf + 1.0;
        let f1 = mf + 1.0;
        let z = nf + 1.0 - mf;
        let w = nf - yf + 1.0;
        let z2 = z * z;
        let x2 = x1 * x1;
        let f2 = f1 * f1;
        let w2 = w * w;
        let bound = x_m * (f1 / x1).ln()
            + (nf - mf + 0.5) * (z / w).ln()
            + (yf - mf) * (w * p / (x1 * q)).ln()
            + btpe_ln_correction(f2) / f1
            + btpe_ln_correction(z2) / z
            + btpe_ln_correction(x2) / x1
            + btpe_ln_correction(w2) / w;
        if alpha <= bound {
            return y as u64;
        }
    }
}

/// The polynomial numerator of the Stirling correction, split so the division
/// by the base argument happens at the call site (as in the published BTPE
/// listing, which writes `(13860 − (...)/x²)/x/166320` with x² precomputed).
#[inline]
fn btpe_ln_correction(x_sq: f64) -> f64 {
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x_sq) / x_sq) / x_sq) / x_sq) / 166320.0
}

// Keep the shared helper referenced so both formulations stay in sync.
#[allow(dead_code)]
fn _check_correction_consistency(x: f64) -> f64 {
    btpe_stirling_correction(x) - btpe_ln_correction(x * x) / x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gof::chi2_rejects;
    use crate::rng::Xoshiro256PlusPlus;
    use crate::special::ln_choose;
    use rand::SeedableRng;

    fn exact_pmf(n: u64, p: f64, k: u64) -> f64 {
        (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
    }

    fn empirical_check(n: u64, p: f64, draws: usize, seed: u64) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            let x = binomial(&mut rng, n, p);
            assert!(x <= n, "draw {x} exceeds n={n}");
            counts[x as usize] += 1;
        }
        // Bin the support into cells with expected count >= 5 and chi-square.
        let expected: Vec<f64> = (0..=n).map(|k| exact_pmf(n, p, k) * draws as f64).collect();
        let exceeded = chi2_rejects(&counts, &expected);
        assert!(
            !exceeded,
            "binomial({n},{p}) empirical distribution fails chi-square"
        );
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(binomial(&mut rng, 1, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1]")]
    fn rejects_invalid_probability() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn n_one_is_bernoulli() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let draws = 200_000;
        let ones: u64 = (0..draws).map(|_| binomial(&mut rng, 1, 0.3)).sum();
        let phat = ones as f64 / draws as f64;
        assert!((phat - 0.3).abs() < 0.005, "phat={phat}");
    }

    #[test]
    fn binv_path_distribution() {
        // n*p = 4 < 10 → BINV path.
        empirical_check(20, 0.2, 200_000, 3);
    }

    #[test]
    fn btpe_path_distribution() {
        // n*p = 40 → BTPE path.
        empirical_check(100, 0.4, 200_000, 4);
    }

    #[test]
    fn btpe_path_half_probability() {
        empirical_check(400, 0.5, 100_000, 5);
    }

    #[test]
    fn flipped_probability_distribution() {
        // p > 0.5 exercises the flip logic on both paths.
        empirical_check(30, 0.9, 200_000, 6); // n*q = 3 → BINV after flip
        empirical_check(200, 0.8, 100_000, 7); // n*q = 40 → BTPE after flip
    }

    #[test]
    fn mean_and_variance_match_large_n() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let (n, p) = (10_000u64, 0.37);
        let draws = 20_000;
        let samples: Vec<f64> = (0..draws)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (draws - 1) as f64;
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        assert!(
            (mean - true_mean).abs() < 4.0 * (true_var / draws as f64).sqrt(),
            "mean {mean} vs {true_mean}"
        );
        assert!(
            (var / true_var - 1.0).abs() < 0.1,
            "var {var} vs {true_var}"
        );
    }

    #[test]
    fn correction_formulations_agree() {
        for &x in &[11.0, 25.0, 100.0, 1000.0] {
            assert!(super::_check_correction_consistency(x).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_binomial_is_stream_identical() {
        // The cache must consume the same RNG stream and return the same
        // variates as the one-shot sampler, across BINV, BTPE, flipped and
        // degenerate parameters, including parameter switches mid-stream.
        let params: Vec<(u64, f64)> = vec![
            (100, 0.05), // BINV
            (100, 0.05),
            (100, 0.95), // BINV after flip
            (500, 0.4),  // BTPE
            (500, 0.4),
            (0, 0.3),  // degenerate n
            (10, 0.0), // degenerate p
            (10, 1.0), // degenerate p
            (100, 0.05),
        ];
        let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut rng_b = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut cache = CachedBinomial::new();
        for &(n, p) in &params {
            for _ in 0..200 {
                let one_shot = binomial(&mut rng_a, n, p);
                let cached = cache.draw(&mut rng_b, n, p);
                assert_eq!(one_shot, cached, "divergence at n={n} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0,1]")]
    fn cached_rejects_invalid_probability() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        CachedBinomial::new().draw(&mut rng, 10, -0.1);
    }

    #[test]
    fn extreme_small_p_large_n() {
        // n*p = 1 — deep BINV territory with large n.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let draws = 100_000;
        let sum: u64 = (0..draws)
            .map(|_| binomial(&mut rng, 1_000_000, 1e-6))
            .sum();
        let mean = sum as f64 / draws as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
