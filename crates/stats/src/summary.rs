//! Summary statistics and the expected-shortfall risk measure.
//!
//! §6.2 of the paper evaluates model-management *robustness* with the z%
//! expected shortfall (ES) of the per-batch error series: "the z% ES is the
//! average value of the worst z% of cases" (McNeil, Frey & Embrechts,
//! *Quantitative Risk Management*). For error series, *worst* means
//! *largest*, so [`expected_shortfall`] averages the top z% of values.

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Expected shortfall at level `z ∈ (0, 1]`: the mean of the worst
/// (= largest) `⌈z·n⌉` values of `values`.
///
/// Matches the paper's usage, e.g. "10% ES of the misclassification rate".
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `z` is outside `(0, 1]`.
pub fn expected_shortfall(values: &[f64], z: f64) -> f64 {
    assert!(z > 0.0 && z <= 1.0, "ES level must be in (0,1], got {z}");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // Descending: worst (largest) first. Errors are finite by construction;
    // order NaN last defensively.
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let k = ((z * values.len() as f64).ceil() as usize).clamp(1, values.len());
    sorted[..k].iter().sum::<f64>() / k as f64
}

/// Empirical quantile with linear interpolation (type-7, the common default).
///
/// `q ∈ [0, 1]`; returns NaN for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level in [0,1], got {q}");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineMoments::new();
        for &x in &data {
            acc.push(x);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.population_variance() - 4.0).abs() < 1e-12);
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut acc = OnlineMoments::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        acc.push(3.0);
        assert_eq!(acc.mean(), 3.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineMoments::new();
        let mut right = OnlineMoments::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a, before);
        let mut empty = OnlineMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn es_full_level_is_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((expected_shortfall(&v, 1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn es_picks_worst_cases() {
        let v = [10.0, 50.0, 20.0, 40.0, 30.0, 15.0, 25.0, 35.0, 45.0, 5.0];
        // 10% of 10 values → worst single value.
        assert!((expected_shortfall(&v, 0.10) - 50.0).abs() < 1e-12);
        // 20% → mean of two worst.
        assert!((expected_shortfall(&v, 0.20) - 47.5).abs() < 1e-12);
    }

    #[test]
    fn es_rounds_count_up() {
        let v = [1.0, 2.0, 3.0];
        // 10% of 3 → ceil(0.3) = 1 value.
        assert!((expected_shortfall(&v, 0.10) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn es_empty_is_zero() {
        assert_eq!(expected_shortfall(&[], 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "ES level")]
    fn es_rejects_zero_level() {
        expected_shortfall(&[1.0], 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
    }
}
