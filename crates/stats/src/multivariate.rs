//! Multivariate hypergeometric random vectors.
//!
//! The distributed-decision strategy of §5.3 has the master "choose only the
//! number of deletes and inserts per worker according to appropriate
//! multivariate hypergeometric distributions": drawing `k` items uniformly
//! without replacement from a population partitioned into categories
//! (= worker partitions) induces a multivariate hypergeometric split of the
//! count `k` across categories. We generate the vector by conditional
//! univariate draws, which is exact.

use crate::hypergeometric::hypergeometric;
use rand::Rng;

/// Split a draw of `k` items across categories with sizes `category_sizes`,
/// as if the `k` items were drawn uniformly without replacement from the
/// pooled population. Returns one count per category, summing to `k`.
///
/// # Panics
///
/// Panics if `k` exceeds the total population size.
pub fn multivariate_hypergeometric<R: Rng + ?Sized>(
    rng: &mut R,
    category_sizes: &[u64],
    k: u64,
) -> Vec<u64> {
    let total: u64 = category_sizes.iter().sum();
    assert!(
        k <= total,
        "cannot draw {k} items from a population of {total}"
    );
    let mut remaining_draws = k;
    let mut remaining_population = total;
    let mut out = Vec::with_capacity(category_sizes.len());
    for &size in category_sizes {
        if remaining_draws == 0 {
            out.push(0);
            continue;
        }
        remaining_population -= size;
        // X_i | draws so far ~ HyperGeo(remaining_draws, size, rest).
        let x = hypergeometric(rng, remaining_draws, size, remaining_population);
        out.push(x);
        remaining_draws -= x;
    }
    debug_assert_eq!(remaining_draws, 0, "draws not fully allocated");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::SeedableRng;

    #[test]
    fn counts_sum_to_k() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let sizes = [10u64, 0, 25, 7, 100];
        for k in [0u64, 1, 17, 142] {
            let v = multivariate_hypergeometric(&mut rng, &sizes, k);
            assert_eq!(v.iter().sum::<u64>(), k);
            for (x, s) in v.iter().zip(&sizes) {
                assert!(x <= s, "category overdrawn: {x} > {s}");
            }
        }
    }

    #[test]
    fn empty_category_gets_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let sizes = [5u64, 0, 5];
        for _ in 0..100 {
            let v = multivariate_hypergeometric(&mut rng, &sizes, 6);
            assert_eq!(v[1], 0);
        }
    }

    #[test]
    fn draw_entire_population() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let sizes = [3u64, 9, 1];
        let v = multivariate_hypergeometric(&mut rng, &sizes, 13);
        assert_eq!(v, vec![3, 9, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        multivariate_hypergeometric(&mut rng, &[2, 2], 5);
    }

    #[test]
    fn marginal_means_are_proportional() {
        // E[X_i] = k · n_i / N.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let sizes = [100u64, 300, 600];
        let k = 200u64;
        let trials = 20_000;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let v = multivariate_hypergeometric(&mut rng, &sizes, k);
            for (s, x) in sums.iter_mut().zip(&v) {
                *s += x;
            }
        }
        for (i, &size) in sizes.iter().enumerate() {
            let mean = sums[i] as f64 / trials as f64;
            let expect = k as f64 * size as f64 / 1000.0;
            assert!(
                (mean - expect).abs() < 0.03 * expect.max(5.0),
                "category {i}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn single_category_takes_everything() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let v = multivariate_hypergeometric(&mut rng, &[42], 17);
        assert_eq!(v, vec![17]);
    }
}
