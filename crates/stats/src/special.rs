//! Special functions backing the exact variate generators.
//!
//! Only the handful of functions the samplers need: `ln Γ(x)`, `ln x!` and
//! `ln C(n, k)`. Accuracy is ~1e-12 relative, far beyond what accept/reject
//! sampling requires.

/// Natural log of the gamma function for `x > 0`, via the Lanczos
/// approximation (g = 7, n = 9 coefficients).
///
/// Maximum observed relative error is below 1e-13 on `x ∈ (0, 1e9]`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the exact lookup table for `ln k!`.
const LN_FACT_TABLE_SIZE: usize = 256;

/// Natural log of `k!`, exact-table for small `k`, `ln_gamma` beyond.
pub fn ln_factorial(k: u64) -> f64 {
    // A static table would need lazy init; recomputing the running sum is
    // cheap enough for the table range and branch-predictable.
    if (k as usize) < LN_FACT_TABLE_SIZE {
        let mut acc = 0.0;
        for i in 2..=k {
            acc += (i as f64).ln();
        }
        acc
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The Stirling-series correction used by BTPE's final acceptance test:
/// `ln k! = ln√(2π) + (k+½)ln k − k + correction(k+1)` where
/// `correction(x) ≈ 1/(12x) − 1/(360x³) + 1/(1260x⁵) − 1/(1680x⁷)`.
///
/// This is the classic polynomial form from Kachitvichyanukul & Schmeiser
/// (1988), valid for the `x ≥ 1` arguments BTPE feeds it.
pub fn btpe_stirling_correction(x: f64) -> f64 {
    let x2 = x * x;
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) / x / 166320.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, rel: f64) {
        let denom = b.abs().max(1e-300);
        assert!(
            ((a - b) / denom).abs() < rel || (a - b).abs() < rel,
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(5) = 24.
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(3.0), 2.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(4.0), 6.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - 2.0_f64.ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_large_argument_matches_stirling() {
        // For large x, ln Γ(x) ≈ (x−½)ln x − x + ½ln(2π) + 1/(12x).
        for &x in &[1e3f64, 1e5, 1e7] {
            let stirling =
                (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
            assert_close(ln_gamma(x), stirling, 1e-10);
        }
    }

    #[test]
    fn ln_factorial_table_matches_gamma() {
        for k in 0..LN_FACT_TABLE_SIZE as u64 + 64 {
            assert_close(ln_factorial(k), ln_gamma(k as f64 + 1.0), 1e-11);
        }
    }

    #[test]
    fn ln_factorial_small_exact() {
        assert_close(ln_factorial(0), 0.0, 1e-15);
        assert_close(ln_factorial(1), 0.0, 1e-15);
        assert_close(ln_factorial(2), 2.0_f64.ln(), 1e-14);
        assert_close(ln_factorial(10), 3_628_800.0_f64.ln(), 1e-13);
    }

    #[test]
    fn ln_choose_pascal_identity() {
        // C(n,k) = C(n-1,k-1) + C(n-1,k) — check in log space via exp.
        for n in 2..60u64 {
            for k in 1..n {
                let lhs = ln_choose(n, k).exp();
                let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
                assert_close(lhs, rhs, 1e-9);
            }
        }
    }

    #[test]
    fn ln_choose_edge_cases() {
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert_close(ln_choose(52, 5), 2_598_960.0_f64.ln(), 1e-12);
    }

    #[test]
    fn stirling_correction_converges_to_asymptotic() {
        // correction(x) → 1/(12x) for large x.
        for &x in &[50.0, 500.0, 5000.0] {
            assert_close(btpe_stirling_correction(x), 1.0 / (12.0 * x), 1e-4);
        }
    }

    #[test]
    fn stirling_correction_reconstructs_ln_factorial() {
        // ln k! = ½ln(2π) + (k+½)ln k − k + corr(k), corr = Stirling series.
        for k in 10..40u64 {
            let x = k as f64;
            let approx = 0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * x.ln() - x
                + btpe_stirling_correction(x);
            assert_close(approx, ln_factorial(k), 1e-8);
        }
    }
}
