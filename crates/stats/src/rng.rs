//! `xoshiro256++` pseudo-random number generator with jump-ahead.
//!
//! The distributed algorithms of §5.3 need *statistically independent* random
//! streams on every worker; the paper cites Haramoto et al. (2008) for
//! efficient jump-ahead. `xoshiro256++` (Blackman & Vigna) provides the same
//! facility: [`Xoshiro256PlusPlus::jump`] advances the state by 2¹²⁸ steps,
//! so carving one master stream into per-worker substreams guarantees
//! non-overlap for any realistic workload. The `rand_xoshiro` crate is not on
//! the approved dependency list, so the generator is implemented here and
//! plugged into the `rand` ecosystem via [`rand::RngCore`].

use rand::{Error, RngCore, SeedableRng};

/// `splitmix64` — the recommended seeder for the xoshiro family.
///
/// Also usable standalone as a tiny, fast, well-mixed 64-bit generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output and advance the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256++` — 256 bits of state, period 2²⁵⁶ − 1, with jump-ahead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Construct directly from a full 256-bit state.
    ///
    /// The all-zero state is invalid for this generator; it is replaced by a
    /// fixed nonzero state so the type has no unusable values.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // Derived by seeding splitmix64 with 0.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Expose the raw 256-bit state (for checkpoint/restore of samplers
    /// whose reproducibility depends on their RNG position).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn apply_jump(&mut self, table: [u64; 4]) {
        let mut acc = [0u64; 4];
        for word in table {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.step();
            }
        }
        self.s = acc;
    }

    /// Advance the state by 2¹²⁸ steps.
    ///
    /// Calling `jump()` k times on a fresh generator yields k + 1 mutually
    /// non-overlapping substreams of length 2¹²⁸ — one per worker in the
    /// distributed algorithms.
    pub fn jump(&mut self) {
        self.apply_jump([
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ]);
    }

    /// Advance the state by 2¹⁹² steps (for hierarchical stream splitting).
    pub fn long_jump(&mut self) {
        self.apply_jump([
            0x7674_3484_2f19_3bd7,
            0xcd3e_0e95_3df8_6ae0,
            0xfab5_823a_5c5f_c92e,
            0x977c_cb0e_da0c_484e,
        ]);
    }

    /// Split off `count` independent per-worker generators.
    ///
    /// Worker `i` receives the substream starting at offset `i · 2¹²⁸` of the
    /// parent stream, matching the paper's use of jump-ahead for statistically
    /// correct parallel pseudo-random number generation (§5.3).
    pub fn split_streams(&self, count: usize) -> Vec<Xoshiro256PlusPlus> {
        let mut streams = Vec::with_capacity(count);
        let mut cursor = self.clone();
        for _ in 0..count {
            streams.push(cursor.clone());
            cursor.jump();
        }
        streams
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix64_reference_vector() {
        // Reference outputs for seed 1234567 from the splitmix64.c reference
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference outputs from xoshiro256plusplus.c with state
        // [1, 2, 3, 4] (Blackman & Vigna reference code).
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_state_is_repaired() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // Must not emit a constant stream of zeros.
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds nearly identical");
    }

    #[test]
    fn jump_decorrelates_streams() {
        let base = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut a = base.clone();
        let mut b = base.clone();
        b.jump();
        let same = (0..1024).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "jumped stream overlaps with parent");
    }

    #[test]
    fn jump_matches_manual_composition() {
        // jump() twice == long-distance determinism: two generators that jump
        // the same number of times from the same state agree exactly.
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(5);
        a.jump();
        a.jump();
        b.jump();
        b.jump();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_pairwise_distinct() {
        let base = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut streams = base.split_streams(8);
        let first: Vec<u64> = streams.iter_mut().map(|s| s.next_u64()).collect();
        for i in 0..first.len() {
            for j in i + 1..first.len() {
                assert_ne!(first[i], first[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_streams_first_is_parent() {
        let base = Xoshiro256PlusPlus::seed_from_u64(13);
        let mut parent = base.clone();
        let mut streams = base.split_streams(3);
        for _ in 0..16 {
            assert_eq!(streams[0].next_u64(), parent.next_u64());
        }
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 33] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced zeros");
            }
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(0..13usize);
            assert!(k < 13);
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(23);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
