//! Goodness-of-fit and equivalence testing for the statistical
//! test-suites — one shared false-positive budget for the whole
//! workspace.
//!
//! Every stochastic test in this repository is *seeded*, so each test is
//! a one-time draw: it either passes forever or fails forever. The α
//! below therefore controls the probability that a test was unlucky *at
//! the seed it was written with* — i.e. the chance we baked in an assert
//! that rejects a correct implementation. Centralizing the constants
//! gives the suite a single documented budget instead of per-test magic
//! numbers:
//!
//! * [`TEST_ALPHA`] — per-test significance `10⁻⁴`. The workspace runs
//!   on the order of 100 distribution checks, so the family-wise
//!   false-positive budget is about `100 · 10⁻⁴ = 1%` — roughly one in a
//!   hundred *rewrites of the whole suite* would bake in one bad assert.
//!   At the same time, gross errors (an off-by-one in a pmf, a biased
//!   sweep) shift chi² statistics by orders of magnitude, so power is
//!   not a concern at the sample sizes used.
//! * [`MIN_EXPECTED`] — the classical "expected count ≥ 5" pooling rule
//!   for chi² cells.
//! * [`bonferroni`] — for harnesses that run `m` related checks and want
//!   their *family* to consume one [`TEST_ALPHA`] in total.
//!
//! The chi² machinery builds on [`crate::chi2`]; this module adds the
//! budget policy, a two-sample Kolmogorov–Smirnov test, and a TOST-style
//! mean-equivalence check — the tools the jump-ingest equivalence
//! harness (`tests/statistical_equivalence.rs`) uses to *prove*
//! distributional agreement rather than merely fail to detect
//! divergence.

use crate::chi2::{chi2_critical, chi2_pooled, standard_normal_quantile};

/// Per-test significance level shared by the workspace's seeded
/// statistical tests (see the module docs for the budget arithmetic).
pub const TEST_ALPHA: f64 = 1e-4;

/// Minimum expected count per pooled chi² cell (the classical rule).
pub const MIN_EXPECTED: f64 = 5.0;

/// Bonferroni-corrected per-comparison level: a family of `m` checks
/// tested at `alpha / m` has family-wise error at most `alpha`.
pub fn bonferroni(alpha: f64, m: usize) -> f64 {
    assert!(m > 0, "empty test family");
    alpha / m as f64
}

/// Outcome of a goodness-of-fit test: the statistic, its critical value
/// at the chosen α, and the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofOutcome {
    /// The test statistic (chi² or scaled KS distance).
    pub statistic: f64,
    /// Rejection threshold at the test's significance level.
    pub critical: f64,
    /// `statistic > critical` — evidence against the null hypothesis.
    pub rejected: bool,
}

/// Chi² goodness-of-fit of observed counts against expected counts at
/// significance `alpha`, pooling cells below [`MIN_EXPECTED`]. Returns
/// `None` when fewer than two pooled cells remain (no test possible).
pub fn chi2_gof(observed: &[u64], expected: &[f64], alpha: f64) -> Option<GofOutcome> {
    let (statistic, df) = chi2_pooled(observed, expected, MIN_EXPECTED)?;
    let critical = chi2_critical(df, alpha);
    Some(GofOutcome {
        statistic,
        critical,
        rejected: statistic > critical,
    })
}

/// Convenience for the workspace's seeded suites: does `observed` reject
/// `expected` at the shared [`TEST_ALPHA`]? Returns `false` when no test
/// is possible after pooling.
pub fn chi2_rejects(observed: &[u64], expected: &[f64]) -> bool {
    chi2_gof(observed, expected, TEST_ALPHA).is_some_and(|o| o.rejected)
}

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` draws from the
/// same (continuous) distribution? Rejects when the asymptotic p-value
/// of the maximum ecdf distance falls below `alpha`.
///
/// The p-value uses the Kolmogorov asymptotic series with the
/// Stephens small-sample correction
/// `λ = D·(√n_e + 0.12 + 0.11/√n_e)`, accurate enough for pass/fail
/// testing at `n_e ≥ 8` or so. Ties are handled by stepping both ecdfs
/// through the pooled sorted order, which yields the standard
/// mid-distance statistic for discrete data.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64], alpha: f64) -> GofOutcome {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS requires non-empty samples"
    );
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS sample"));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let lambda = d * (ne.sqrt() + 0.12 + 0.11 / ne.sqrt());
    let p = ks_survival(lambda);
    GofOutcome {
        statistic: lambda,
        critical: ks_critical_lambda(alpha),
        rejected: p < alpha,
    }
}

/// Kolmogorov survival function `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn ks_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// The λ at which [`ks_survival`] crosses `alpha` (bisection; the
/// function is strictly decreasing).
fn ks_critical_lambda(alpha: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if ks_survival(mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// TOST (two one-sided tests) equivalence check on means: concludes
/// `|mean(a) − mean(b)| < margin` when **both** one-sided z-tests reject
/// at level `alpha` — the standard way to *affirm* equivalence rather
/// than merely fail to detect a difference. Uses the Welch standard
/// error with normal quantiles, appropriate for the harness's sample
/// sizes (hundreds of trials).
///
/// Returns `true` when the samples are demonstrably equivalent within
/// the margin.
///
/// # Panics
///
/// Panics if either sample has fewer than two elements, or `margin` is
/// not positive.
pub fn tost_mean_equivalent(a: &[f64], b: &[f64], margin: f64, alpha: f64) -> bool {
    assert!(a.len() >= 2 && b.len() >= 2, "TOST requires ≥ 2 samples");
    assert!(margin > 0.0, "TOST margin must be positive");
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let se = (var(a, ma) / a.len() as f64 + var(b, mb) / b.len() as f64).sqrt();
    if se == 0.0 {
        return (ma - mb).abs() < margin;
    }
    let z = standard_normal_quantile(1.0 - alpha);
    let diff = ma - mb;
    // H01: diff ≤ −margin rejected, and H02: diff ≥ +margin rejected.
    (diff + margin) / se > z && (margin - diff) / se > z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bonferroni_splits_the_budget() {
        assert!((bonferroni(0.05, 10) - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty test family")]
    fn bonferroni_rejects_empty_family() {
        bonferroni(0.05, 0);
    }

    #[test]
    fn chi2_gof_accepts_perfect_fit_and_rejects_gross_mismatch() {
        let expected = [250.0, 250.0, 250.0, 250.0];
        let good = chi2_gof(&[250, 250, 250, 250], &expected, TEST_ALPHA).unwrap();
        assert!(!good.rejected);
        assert!(good.statistic < 1e-12);
        let bad = chi2_gof(&[1000, 0, 0, 0], &expected, TEST_ALPHA).unwrap();
        assert!(bad.rejected);
        assert!(bad.statistic > bad.critical);
        assert!(chi2_rejects(&[1000, 0, 0, 0], &expected));
        assert!(!chi2_rejects(&[250, 250, 250, 250], &expected));
    }

    #[test]
    fn ks_survival_reference_values() {
        // Q(1.36) ≈ 0.049 (the textbook 5% critical value).
        let q = ks_survival(1.36);
        assert!((q - 0.049).abs() < 0.002, "Q(1.36) = {q}");
        assert!(ks_survival(0.0) == 1.0);
        assert!(ks_survival(3.0) < 1e-6);
    }

    #[test]
    fn ks_same_distribution_accepts() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let a: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let out = ks_two_sample(&a, &b, TEST_ALPHA);
        assert!(!out.rejected, "λ = {}", out.statistic);
    }

    #[test]
    fn ks_shifted_distribution_rejects() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        let a: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() + 0.2).collect();
        let out = ks_two_sample(&a, &b, TEST_ALPHA);
        assert!(out.rejected, "λ = {}", out.statistic);
    }

    #[test]
    fn ks_handles_discrete_ties() {
        // Identical discrete distributions must not reject despite ties.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let a: Vec<f64> = (0..3000).map(|_| (rng.gen::<u32>() % 7) as f64).collect();
        let b: Vec<f64> = (0..3000).map(|_| (rng.gen::<u32>() % 7) as f64).collect();
        assert!(!ks_two_sample(&a, &b, TEST_ALPHA).rejected);
    }

    #[test]
    fn tost_affirms_equal_means_and_refuses_distant_ones() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(14);
        let a: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        // Means differ by O(0.01); margin 0.05 should be affirmable.
        assert!(tost_mean_equivalent(&a, &b, 0.05, TEST_ALPHA));
        // A mean shift equal to the margin must never be affirmed.
        let c: Vec<f64> = a.iter().map(|x| x + 0.05).collect();
        assert!(!tost_mean_equivalent(&a, &c, 0.05, TEST_ALPHA));
    }

    #[test]
    fn tost_needs_enough_precision() {
        // Tiny samples cannot affirm equivalence at a tight margin.
        let a = [0.5, 0.6, 0.4];
        let b = [0.55, 0.45, 0.5];
        assert!(!tost_mean_equivalent(&a, &b, 0.01, TEST_ALPHA));
    }
}
