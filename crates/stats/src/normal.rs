//! Gaussian random variates via the Marsaglia polar method.
//!
//! The evaluation workloads (§6.2–6.3) draw feature noise from `N(μ, σ)`;
//! `rand_distr` is not on the approved dependency list, so the generator
//! lives here. The polar method is exact and needs no tables.

use rand::Rng;

/// Draw a standard normal `N(0, 1)` variate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Marsaglia polar: draw (u, v) uniform in the unit disk, transform.
    // The second variate of the pair is discarded for statelessness; the
    // samplers here are nowhere near hot enough for caching to matter.
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw from `N(mean, sd)`.
///
/// # Panics
///
/// Panics if `sd` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(
        sd.is_finite() && sd >= 0.0,
        "standard deviation must be finite and non-negative, got {sd}"
    );
    mean + sd * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;
    use crate::summary::OnlineMoments;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut acc = OnlineMoments::new();
        for _ in 0..200_000 {
            acc.push(standard_normal(&mut rng));
        }
        assert!(acc.mean().abs() < 0.01, "mean {}", acc.mean());
        assert!(
            (acc.variance() - 1.0).abs() < 0.02,
            "var {}",
            acc.variance()
        );
    }

    #[test]
    fn standard_normal_tail_mass() {
        // P(|Z| > 1.96) ≈ 0.05.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let n = 200_000;
        let tails = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 1.96)
            .count();
        let p = tails as f64 / n as f64;
        assert!((p - 0.05).abs() < 0.005, "tail mass {p}");
    }

    #[test]
    fn location_and_scale() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut acc = OnlineMoments::new();
        for _ in 0..100_000 {
            acc.push(normal(&mut rng, 7.0, 3.0));
        }
        assert!((acc.mean() - 7.0).abs() < 0.05);
        assert!((acc.std_dev() - 3.0).abs() < 0.05);
    }

    #[test]
    fn zero_sd_is_constant() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn rejects_negative_sd() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        normal(&mut rng, 0.0, -1.0);
    }
}
