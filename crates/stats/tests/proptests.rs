//! Property-based tests for the probability substrate: support bounds,
//! conservation laws, and monotonicity that must hold for *every*
//! parameter combination, not just the unit-test points.

use proptest::prelude::*;
use rand::SeedableRng;
use tbs_stats::binomial::{binomial, CachedBinomial};
use tbs_stats::geometric::{exponential, geometric};
use tbs_stats::hypergeometric::hypergeometric;
use tbs_stats::multivariate::multivariate_hypergeometric;
use tbs_stats::rng::Xoshiro256PlusPlus;
use tbs_stats::rounding::stochastic_round;
use tbs_stats::special::{ln_choose, ln_factorial};
use tbs_stats::summary::{expected_shortfall, quantile, OnlineMoments};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binomial_stays_on_support(
        n in 0u64..10_000,
        p in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let x = binomial(&mut rng, n, p);
        prop_assert!(x <= n);
        if p == 0.0 {
            prop_assert_eq!(x, 0);
        }
        if p == 1.0 {
            prop_assert_eq!(x, n);
        }
    }

    #[test]
    fn hypergeometric_stays_on_support(
        a in 0u64..2_000,
        b in 0u64..2_000,
        k_frac in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let k = ((a + b) as f64 * k_frac) as u64;
        let x = hypergeometric(&mut rng, k, a, b);
        prop_assert!(x <= a.min(k));
        prop_assert!(x >= k.saturating_sub(b));
    }

    #[test]
    fn multivariate_counts_conserve_and_respect_sizes(
        sizes in prop::collection::vec(0u64..500, 1..12),
        k_frac in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let total: u64 = sizes.iter().sum();
        let k = (total as f64 * k_frac) as u64;
        let counts = multivariate_hypergeometric(&mut rng, &sizes, k);
        prop_assert_eq!(counts.len(), sizes.len());
        prop_assert_eq!(counts.iter().sum::<u64>(), k);
        for (c, s) in counts.iter().zip(&sizes) {
            prop_assert!(c <= s);
        }
    }

    #[test]
    fn stochastic_round_is_floor_or_ceil(
        x in 0.0f64..1e9,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let r = stochastic_round(&mut rng, x);
        prop_assert!(r == x.floor() as u64 || r == x.ceil() as u64);
    }

    #[test]
    fn ln_choose_is_symmetric_and_monotone_to_middle(
        n in 1u64..300,
        k in 0u64..300,
    ) {
        prop_assume!(k <= n);
        // Symmetry C(n,k) = C(n,n−k).
        prop_assert!((ln_choose(n, k) - ln_choose(n, n - k)).abs() < 1e-9);
        // Monotone toward the middle.
        if k < n / 2 {
            prop_assert!(ln_choose(n, k) <= ln_choose(n, k + 1) + 1e-12);
        }
    }

    #[test]
    fn ln_factorial_is_superadditive(a in 0u64..500, b in 0u64..500) {
        // ln((a+b)!) >= ln(a!) + ln(b!) since C(a+b, a) >= 1.
        prop_assert!(ln_factorial(a + b) + 1e-9 >= ln_factorial(a) + ln_factorial(b));
    }

    #[test]
    fn expected_shortfall_bounds_the_mean(
        values in prop::collection::vec(0.0f64..1e6, 1..100),
        z_pct in 1u32..=100,
    ) {
        let z = z_pct as f64 / 100.0;
        let es = expected_shortfall(&values, z);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        // ES of the worst z% is between the mean and the max.
        prop_assert!(es >= mean - 1e-9);
        prop_assert!(es <= max + 1e-9);
    }

    #[test]
    fn expected_shortfall_decreases_in_level(
        values in prop::collection::vec(0.0f64..1e6, 2..100),
    ) {
        // Wider tail → smaller (or equal) shortfall.
        let es10 = expected_shortfall(&values, 0.10);
        let es50 = expected_shortfall(&values, 0.50);
        let es100 = expected_shortfall(&values, 1.0);
        prop_assert!(es10 + 1e-9 >= es50);
        prop_assert!(es50 + 1e-9 >= es100);
    }

    #[test]
    fn quantile_is_monotone(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&values, lo) <= quantile(&values, hi) + 1e-9);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        ys in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let fill = |data: &[f64]| {
            let mut m = OnlineMoments::new();
            for &x in data {
                m.push(x);
            }
            m
        };
        let mut ab = fill(&xs);
        ab.merge(&fill(&ys));
        let mut ba = fill(&ys);
        ba.merge(&fill(&xs));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    #[test]
    fn binomial_tiny_batches_are_exact(
        p in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        // The n ∈ {0, 1} edges the jump-mode ingest hits on empty and
        // single-item batches: n = 0 is always 0, n = 1 is a Bernoulli.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        prop_assert_eq!(binomial(&mut rng, 0, p), 0);
        let b = binomial(&mut rng, 1, p);
        prop_assert!(b <= 1);
        // Degenerate probabilities are deterministic for every n.
        prop_assert_eq!(binomial(&mut rng, 17, 0.0), 0);
        prop_assert_eq!(binomial(&mut rng, 17, 1.0), 17);
    }

    #[test]
    fn cached_binomial_matches_one_shot_for_any_parameter_walk(
        params in prop::collection::vec(0u64..u64::MAX, 1..20),
        seed in 0u64..1_000_000,
    ) {
        // The memoizing sampler must be draw-for-draw identical to the
        // one-shot sampler under arbitrary (n, p) switching patterns.
        // Each walk step unpacks one u64 into an (n, p) pair.
        let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut rng_b = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut cache = CachedBinomial::new();
        for &word in &params {
            let n = word % 500;
            let p = (word >> 32) as f64 / u32::MAX as f64;
            prop_assert_eq!(binomial(&mut rng_a, n, p), cache.draw(&mut rng_b, n, p));
        }
    }

    #[test]
    fn geometric_support_and_degenerate_edge(
        p in 0.001f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let g = geometric(&mut rng, p);
        if p == 1.0 {
            prop_assert_eq!(g, 0);
        }
        // Certain success always skips nothing, for every rng position.
        prop_assert_eq!(geometric(&mut rng, 1.0), 0);
        // Exponential jumps are finite and positive for every seed.
        let e = exponential(&mut rng, p);
        prop_assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn jump_streams_never_collide_on_prefix(
        seed in 0u64..1_000_000,
        streams in 2usize..6,
    ) {
        use rand::RngCore;
        let base = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut split = base.split_streams(streams);
        let prefixes: Vec<Vec<u64>> = split
            .iter_mut()
            .map(|s| (0..8).map(|_| s.next_u64()).collect())
            .collect();
        for i in 0..prefixes.len() {
            for j in i + 1..prefixes.len() {
                prop_assert_ne!(&prefixes[i], &prefixes[j]);
            }
        }
    }
}

// Empirical distributional properties: each case averages thousands of
// draws, so the case count is kept low and the tolerances at ~5 standard
// errors (false-alarm odds per case below 1e-6).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn binomial_mean_and_variance_obey_clt_bounds(
        n in 20u64..2_000,
        p_mil in 50u32..=950,
        seed in 0u64..1_000_000,
    ) {
        let p = p_mil as f64 / 1000.0;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        const TRIALS: usize = 2_000;
        let mut m = OnlineMoments::new();
        for _ in 0..TRIALS {
            m.push(binomial(&mut rng, n, p) as f64);
        }
        let mean = n as f64 * p;
        let var = mean * (1.0 - p);
        // Sample mean: 5 standard errors around np.
        prop_assert!(
            (m.mean() - mean).abs() < 5.0 * (var / TRIALS as f64).sqrt(),
            "mean {} vs np {}", m.mean(), mean
        );
        // Sample variance: kurtosis-based standard error for a binomial,
        // Var[s²] ≈ (μ4 − σ⁴)/T with μ4/σ⁴ ≤ 3 + 1/σ² here.
        let excess = (1.0 - 6.0 * p * (1.0 - p)) / var;
        let se_var = (var * var * (2.0 + excess.max(0.0)) / TRIALS as f64).sqrt();
        prop_assert!(
            (m.variance() - var).abs() < 5.0 * se_var,
            "variance {} vs npq {}", m.variance(), var
        );
    }

    #[test]
    fn geometric_is_memoryless(
        p_mil in 50u32..=500,
        k in 1u64..5,
        seed in 0u64..1_000_000,
    ) {
        // P[G ≥ k] = (1−p)^k, so conditioned on surviving k rejections
        // the residual gap G − k must again be Geometric(p); compare the
        // conditional residual mean against the unconditional mean.
        let p = p_mil as f64 / 1000.0;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        const TRIALS: usize = 8_000;
        let mut residual = OnlineMoments::new();
        for _ in 0..TRIALS {
            let g = geometric(&mut rng, p);
            if g >= k {
                residual.push((g - k) as f64);
            }
        }
        let mean = (1.0 - p) / p;
        let sd = (1.0 - p).sqrt() / p;
        // Enough conditioning survivors for the CLT bound to be meaningful:
        // survival probability is at least (1−0.5)^4 ≈ 6%.
        prop_assert!(residual.count() > 200);
        let tol = 5.0 * sd / (residual.count() as f64).sqrt();
        prop_assert!(
            (residual.mean() - mean).abs() < tol,
            "conditional residual mean {} vs unconditional {}", residual.mean(), mean
        );
    }

    #[test]
    fn exponential_mean_matches_rate(
        rate_mil in 100u32..=5_000,
        seed in 0u64..1_000_000,
    ) {
        let rate = rate_mil as f64 / 1000.0;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        const TRIALS: usize = 4_000;
        let mut m = OnlineMoments::new();
        for _ in 0..TRIALS {
            m.push(exponential(&mut rng, rate));
        }
        // Mean and sd are both 1/rate.
        let tol = 5.0 / (rate * (TRIALS as f64).sqrt());
        prop_assert!(
            (m.mean() - 1.0 / rate).abs() < tol,
            "mean {} vs 1/rate {}", m.mean(), 1.0 / rate
        );
    }
}
