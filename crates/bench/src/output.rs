//! Experiment output: CSV files under `results/` plus aligned console
//! tables, so every figure/table of the paper can be regenerated and
//! eyeballed from the terminal.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment CSVs are written (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TBS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// The workspace root (two levels above this crate's manifest) — where the
/// `BENCH_*.json` perf baselines live so they are easy to diff across
/// commits.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Write a CSV file into the results directory; returns its path.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Print an aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// One-line host context appended to every gate-failure message so a
/// failing CI log is diagnosable without re-running the bench: how many
/// cores the host exposed, plus a reminder that the gated metrics are
/// busy-time aggregates (time inside observe calls, queue waits
/// excluded) and therefore hardware-independent.
pub fn host_context() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!(
        "host context: available_parallelism = {cores}; gates compare \
         busy-time metrics (time inside observe calls, queue waits \
         excluded), which are hardware-independent — a small host changes \
         wall-clock rates, not these"
    )
}

/// Read the run-count override from the `TBS_RUNS` environment variable or
/// the first CLI argument; fall back to `default`.
pub fn runs_from_env(default: usize) -> usize {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.parse::<usize>() {
            return n.max(1);
        }
    }
    std::env::var("TBS_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: usize| n.max(1))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "test_output.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(2.25319, 2), "2.25");
        assert_eq!(f(10.0, 1), "10.0");
    }
}
