//! Figures 7, 8 and 9 — distributed runtime experiments on the simulated
//! cluster (see DESIGN.md §4 for the hardware substitution).
//!
//! Scale note: the paper uses 10M-item batches and a 20M reservoir on 13
//! nodes; we default to 1/100 of that (100k / 200k) so the binaries run in
//! seconds. The cost model charges per byte / per message / per phase, so
//! the *relative* ordering and approximate ratios of the five
//! implementations are scale-stable.

use crate::output::{f, print_table, write_csv};
use tbs_distributed::{CostTracker, DRTbs, DTTbs, DrtbsConfig, DttbsConfig, Strategy};

/// Configuration for the runtime experiments.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Items per batch.
    pub batch: usize,
    /// Reservoir capacity / T-TBS target.
    pub capacity: usize,
    /// Decay rate λ.
    pub lambda: f64,
    /// Worker count.
    pub workers: usize,
    /// Measured rounds (after one saturating warm-up batch).
    pub rounds: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            batch: 100_000,
            capacity: 200_000,
            lambda: 0.07,
            workers: 8,
            rounds: 10,
        }
    }
}

/// Mean per-batch cost of one D-R-TBS strategy under `cfg`.
pub fn measure_drtbs(cfg: &RuntimeConfig, strategy: Strategy, seed: u64) -> CostTracker {
    let mut dcfg = DrtbsConfig::new(cfg.lambda, cfg.capacity, cfg.workers, strategy);
    dcfg.kv_nodes = cfg.workers;
    let mut d: DRTbs<u64> = DRTbs::new(dcfg, seed);
    // Warm up to saturation (discarded, like the paper's first round).
    d.observe_batch((0..(cfg.capacity as u64 * 2)).collect())
        .expect("in-memory reservoir payloads always decode");
    let mut total = CostTracker::new();
    for r in 0..cfg.rounds {
        let base = r as u64 * cfg.batch as u64;
        let cost = d
            .observe_batch((base..base + cfg.batch as u64).collect())
            .expect("in-memory reservoir payloads always decode");
        total.merge(&cost);
    }
    scale(&total, 1.0 / cfg.rounds as f64)
}

/// Mean per-batch cost of D-T-TBS under `cfg`.
pub fn measure_dttbs(cfg: &RuntimeConfig, seed: u64) -> CostTracker {
    let tcfg = DttbsConfig::new(cfg.lambda, cfg.capacity, cfg.batch as f64, cfg.workers);
    let mut d: DTTbs<u64> = DTTbs::new(tcfg, seed);
    d.observe_batch((0..(cfg.capacity as u64 * 2)).collect());
    let mut total = CostTracker::new();
    for r in 0..cfg.rounds {
        let base = r as u64 * cfg.batch as u64;
        let cost = d.observe_batch((base..base + cfg.batch as u64).collect());
        total.merge(&cost);
    }
    scale(&total, 1.0 / cfg.rounds as f64)
}

fn scale(c: &CostTracker, by: f64) -> CostTracker {
    CostTracker {
        elapsed: c.elapsed * by,
        bytes_shipped: (c.bytes_shipped as f64 * by) as u64,
        messages: (c.messages as f64 * by) as u64,
        master_time: c.master_time * by,
        worker_time: c.worker_time * by,
        network_time: c.network_time * by,
        phases: (c.phases as f64 * by).round() as u64,
    }
}

/// Figure 7 — per-batch runtime of the five implementations.
pub fn run_fig7(cfg: &RuntimeConfig, seed: u64) -> Vec<(String, CostTracker)> {
    let mut results: Vec<(String, CostTracker)> = Strategy::all()
        .iter()
        .map(|&s| (s.label().to_string(), measure_drtbs(cfg, s, seed)))
        .collect();
    results.push(("D-T-TBS (Dist,CP)".to_string(), measure_dttbs(cfg, seed)));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, c)| {
            vec![
                name.clone(),
                f(c.elapsed * 1e3, 2),
                f(c.network_time * 1e3, 2),
                f(c.master_time * 1e3, 2),
                f(c.worker_time * 1e3, 2),
                c.bytes_shipped.to_string(),
                c.messages.to_string(),
            ]
        })
        .collect();
    write_csv(
        "fig7_distributed_runtime.csv",
        &[
            "implementation",
            "elapsed_ms",
            "network_ms",
            "master_ms",
            "worker_ms",
            "bytes",
            "messages",
        ],
        &rows,
    );
    print_table(
        &format!(
            "Figure 7 — per-batch simulated runtime (batch={}, reservoir={}, lambda={}, {} workers)",
            cfg.batch, cfg.capacity, cfg.lambda, cfg.workers
        ),
        &["implementation", "ms/batch", "net ms", "master ms", "worker ms", "bytes", "msgs"],
        &rows,
    );
    // Ratios the paper highlights.
    let e = |i: usize| results[i].1.elapsed;
    println!(
        "speedups: RJ/CJ = {:.2}x, CJ/CP = {:.2}x, CP/Dist = {:.2}x, Dist/D-T-TBS = {:.2}x",
        e(0) / e(1),
        e(1) / e(2),
        e(2) / e(3),
        e(3) / e(4)
    );
    results
}

/// Figure 8 — scale-out of D-R-TBS (Dist,CP) with the number of workers.
pub fn run_fig8(workers_list: &[usize], batch: usize, seed: u64) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &workers in workers_list {
        let cfg = RuntimeConfig {
            batch,
            capacity: batch * 2,
            workers,
            rounds: 5,
            ..RuntimeConfig::default()
        };
        let cost = measure_drtbs(&cfg, Strategy::DistCoPartitioned, seed);
        out.push((workers, cost.elapsed));
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(w, t)| vec![w.to_string(), f(*t * 1e3, 2)])
        .collect();
    write_csv("fig8_scale_out.csv", &["workers", "elapsed_ms"], &rows);
    print_table(
        &format!("Figure 8 — D-R-TBS scale-out (batch={batch})"),
        &["workers", "ms/batch"],
        &rows,
    );
    out
}

/// Figure 9 — scale-up of D-R-TBS (Dist,CP) with the batch size.
pub fn run_fig9(batch_sizes: &[usize], workers: usize, seed: u64) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for &batch in batch_sizes {
        let cfg = RuntimeConfig {
            batch,
            capacity: 200_000,
            workers,
            rounds: 3,
            ..RuntimeConfig::default()
        };
        let cost = measure_drtbs(&cfg, Strategy::DistCoPartitioned, seed);
        out.push((batch, cost.elapsed));
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(b, t)| vec![b.to_string(), f(*t * 1e3, 2)])
        .collect();
    write_csv("fig9_scale_up.csv", &["batch_size", "elapsed_ms"], &rows);
    print_table(
        &format!("Figure 9 — D-R-TBS scale-up ({workers} workers)"),
        &["batch size", "ms/batch"],
        &rows,
    );
    out
}
