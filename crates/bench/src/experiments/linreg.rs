//! Figure 12 — linear-regression MSE under saturated and unsaturated
//! sample regimes (§6.3).
//!
//! Panel (a): n = 1000, Periodic(10,10) — R-TBS saturated.
//! Panel (b): n = 1600, Periodic(10,10) — R-TBS *unsaturated*, stabilizing
//!            at ≈1479 items while SW/Unif hold 1600: the "more data is not
//!            always better" result.
//! Panel (c): n = 1600, Periodic(16,16) — SW's window is now too short to
//!            retain the previous context, and its error fluctuates wildly.

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::{BatchedReservoir, CountWindow, RTbs};
use tbs_datagen::modes::ModeSchedule;
use tbs_datagen::regression::{RegressionGenerator, RegressionPoint};
use tbs_datagen::stream::StreamPlan;
use tbs_datagen::BatchSizeProcess;
use tbs_ml::metrics::{average_summaries, summarize_series, SeriesSummary};
use tbs_ml::pipeline::{mean_error_series, run_stream, Contender, RunOutput};
use tbs_ml::LinearRegression;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// One panel configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinregPanel {
    /// Panel tag ("a", "b", "c").
    pub tag: &'static str,
    /// Sample-size bound for every scheme.
    pub n: usize,
    /// Mode schedule.
    pub schedule: ModeSchedule,
    /// Measured batches.
    pub measured: u64,
}

/// The three §6.3 panels.
pub fn panels() -> [LinregPanel; 3] {
    [
        LinregPanel {
            tag: "a",
            n: 1000,
            schedule: ModeSchedule::periodic(10, 10),
            measured: 50,
        },
        LinregPanel {
            tag: "b",
            n: 1600,
            schedule: ModeSchedule::periodic(10, 10),
            measured: 50,
        },
        LinregPanel {
            tag: "c",
            n: 1600,
            schedule: ModeSchedule::periodic(16, 16),
            measured: 80,
        },
    ]
}

/// Multi-run result for one panel.
pub struct LinregResult {
    /// Mean error series per contender.
    pub mean_series: Vec<RunOutput>,
    /// Averaged summaries (MSE over all points, 10% ES from t = 20).
    pub summaries: Vec<(String, SeriesSummary)>,
    /// Mean R-TBS sample size over the measured phase (to witness the
    /// unsaturated 1479-item equilibrium).
    pub rtbs_mean_sample_size: f64,
}

fn contenders(n: usize, lambda: f64) -> Vec<Contender<RegressionPoint>> {
    vec![
        Contender::new(
            "R-TBS",
            Box::new(RTbs::new(lambda, n)),
            Box::new(LinearRegression::new(true)),
        ),
        Contender::new(
            "SW",
            Box::new(CountWindow::new(n)),
            Box::new(LinearRegression::new(true)),
        ),
        Contender::new(
            "Unif",
            Box::new(BatchedReservoir::new(n)),
            Box::new(LinearRegression::new(true)),
        ),
    ]
}

/// Run one panel with the paper's λ = 0.07, b = 100.
pub fn run_panel(panel: &LinregPanel, runs: usize, seed: u64) -> LinregResult {
    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: panel.measured,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule: panel.schedule,
    };
    let generator = RegressionGenerator::paper();
    let mut all_runs = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed.wrapping_add(run as u64));
        let mut cs = contenders(panel.n, 0.07);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| generator.sample_batch(mode, size, rng),
            &mut cs,
            &mut rng,
        );
        all_runs.push(outputs);
    }
    let mean_series = mean_error_series(&all_runs);
    let summaries = (0..mean_series.len())
        .map(|ci| {
            let per_run: Vec<SeriesSummary> = all_runs
                .iter()
                .map(|run| summarize_series(&run[ci].errors, 20, 0.10))
                .collect();
            (all_runs[0][ci].name.clone(), average_summaries(&per_run))
        })
        .collect();
    let rtbs_sizes = &mean_series[0].sample_sizes;
    let rtbs_mean_sample_size = rtbs_sizes.iter().sum::<f64>() / rtbs_sizes.len().max(1) as f64;
    LinregResult {
        mean_series,
        summaries,
        rtbs_mean_sample_size,
    }
}

/// Run all three panels, write CSVs, print summaries.
pub fn run_fig12(runs: usize) -> Vec<LinregResult> {
    let mut results = Vec::new();
    for panel in panels() {
        let res = run_panel(&panel, runs, 120_000 + panel.n as u64);
        let names: Vec<&str> = res.mean_series.iter().map(|o| o.name.as_str()).collect();
        let mut header = vec!["t"];
        header.extend(names.iter().copied());
        let len = res.mean_series[0].errors.len();
        let rows: Vec<Vec<String>> = (0..len)
            .map(|t| {
                let mut row = vec![t.to_string()];
                row.extend(res.mean_series.iter().map(|o| f(o.errors[t], 3)));
                row
            })
            .collect();
        write_csv(
            &format!("fig12{}_linreg_mse.csv", panel.tag),
            &header,
            &rows,
        );
        let srows: Vec<Vec<String>> = res
            .summaries
            .iter()
            .map(|(name, s)| vec![name.clone(), f(s.mean_error, 2), f(s.expected_shortfall, 2)])
            .collect();
        print_table(
            &format!(
                "Figure 12({}) — linreg n={}, {} ({} runs)",
                panel.tag,
                panel.n,
                panel.schedule.label(),
                runs
            ),
            &["scheme", "MSE", "10% ES"],
            &srows,
        );
        println!(
            "R-TBS mean sample size: {:.0} (bound n={}; unsaturated equilibrium = {:.0})",
            res.rtbs_mean_sample_size,
            panel.n,
            tbs_core::theory::equilibrium_weight(100.0, 0.07)
        );
        results.push(res);
    }
    results
}
