//! Figure 13 — naive Bayes on the synthetic Usenet2 stream (§6.4).
//!
//! 1500 messages in batches of 50, user interest flipping every 300
//! messages (recurring contexts). Paper parameters: sample bound n = 300,
//! λ = 0.3, no warm-up (the stream is too short), 20% ES over all 30
//! batches.

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::traits::BatchSampler;
use tbs_core::{BatchedReservoir, CountWindow, RTbs};
use tbs_datagen::text::{Message, UsenetGenerator};
use tbs_ml::metrics::{average_summaries, summarize_series, SeriesSummary};
use tbs_ml::pipeline::OnlineModel;
use tbs_ml::NaiveBayes;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Result of the NB experiment.
pub struct NbResult {
    /// Mean error series per contender (R-TBS, SW, Unif).
    pub mean_series: Vec<(String, Vec<f64>)>,
    /// Averaged summaries (misclassification %, 20% ES over all batches).
    pub summaries: Vec<(String, SeriesSummary)>,
}

/// Run the experiment over `runs` independently generated streams.
pub fn run_nb(runs: usize, lambda: f64, seed: u64) -> NbResult {
    let generator = UsenetGenerator::paper();
    let vocab = generator.vocab_size() as usize;
    let names = ["R-TBS", "SW", "Unif"];
    let mut series_acc: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut summaries: Vec<Vec<SeriesSummary>> = vec![Vec::new(); 3];

    for run in 0..runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed.wrapping_add(run as u64));
        let stream = generator.stream(1500, 50, &mut rng);
        let mut samplers: Vec<Box<dyn BatchSampler<Message>>> = vec![
            Box::new(RTbs::new(lambda, 300)),
            Box::new(CountWindow::new(300)),
            Box::new(BatchedReservoir::new(300)),
        ];
        let mut models: Vec<NaiveBayes> = (0..3).map(|_| NaiveBayes::new(vocab)).collect();
        let mut errors: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for batch in &stream {
            for i in 0..3 {
                errors[i].push(models[i].batch_error(batch));
                samplers[i].observe(batch.clone(), &mut rng);
                let sample = samplers[i].sample(&mut rng);
                models[i].retrain(&sample);
            }
        }
        for i in 0..3 {
            // 20% ES over ALL batches (es_start = 0) — the stream is short.
            summaries[i].push(summarize_series(&errors[i], 0, 0.20));
            if series_acc[i].is_empty() {
                series_acc[i] = errors[i].clone();
            } else {
                for (a, e) in series_acc[i].iter_mut().zip(&errors[i]) {
                    *a += e;
                }
            }
        }
    }
    for s in &mut series_acc {
        for v in s.iter_mut() {
            *v /= runs as f64;
        }
    }
    NbResult {
        mean_series: names
            .iter()
            .map(|n| n.to_string())
            .zip(series_acc)
            .collect(),
        summaries: names
            .iter()
            .map(|n| n.to_string())
            .zip(summaries.iter().map(|s| average_summaries(s)))
            .collect(),
    }
}

/// Run, write the CSV, print the summary table.
pub fn run_fig13(runs: usize) -> NbResult {
    let result = run_nb(runs, 0.3, 130_000);
    let mut header = vec!["t".to_string()];
    header.extend(result.mean_series.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let len = result.mean_series[0].1.len();
    let rows: Vec<Vec<String>> = (0..len)
        .map(|t| {
            let mut row = vec![t.to_string()];
            row.extend(result.mean_series.iter().map(|(_, s)| f(s[t], 2)));
            row
        })
        .collect();
    write_csv("fig13_naive_bayes_usenet.csv", &header_refs, &rows);
    let srows: Vec<Vec<String>> = result
        .summaries
        .iter()
        .map(|(name, s)| vec![name.clone(), f(s.mean_error, 1), f(s.expected_shortfall, 1)])
        .collect();
    print_table(
        &format!(
            "Figure 13 — naive Bayes on synthetic Usenet2 (n=300, b=50, lambda=0.3, {runs} runs)"
        ),
        &["scheme", "Miss%", "20% ES"],
        &srows,
    );
    result
}

/// λ-sensitivity sweep backing the §6.4 claim that R-TBS beats SW for all
/// λ ∈ [0.1, 0.5].
pub fn run_lambda_sweep(runs: usize) {
    let lambdas = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut rows = Vec::new();
    for &lambda in &lambdas {
        let r = run_nb(runs, lambda, 131_000);
        let rtbs = &r.summaries[0].1;
        let sw = &r.summaries[1].1;
        rows.push(vec![
            f(lambda, 2),
            f(rtbs.mean_error, 1),
            f(sw.mean_error, 1),
        ]);
    }
    write_csv(
        "fig13_lambda_sweep.csv",
        &["lambda", "rtbs_miss_pct", "sw_miss_pct"],
        &rows,
    );
    print_table(
        "Figure 13 sensitivity — NB misclassification vs lambda",
        &["lambda", "R-TBS Miss%", "SW Miss%"],
        &rows,
    );
}
