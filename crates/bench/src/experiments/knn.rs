//! kNN classification experiments — Figures 10, 11, 14 and Table 1.
//!
//! Shared machinery: a Gaussian-mixture stream with a mode schedule, the
//! standard contender set (R-TBS at one or more λ values, a count-based
//! sliding window, a uniform reservoir), repeated over independent runs.

use crate::output::{f, print_table, write_csv};
use rand::Rng;
use rand::SeedableRng;
use tbs_core::{BatchedReservoir, CountWindow, RTbs};
use tbs_datagen::gmm::{GmmGenerator, LabeledPoint};
use tbs_datagen::modes::ModeSchedule;
use tbs_datagen::stream::StreamPlan;
use tbs_datagen::BatchSizeProcess;
use tbs_ml::metrics::{average_summaries, summarize_series, SeriesSummary};
use tbs_ml::pipeline::{mean_error_series, run_stream, Contender, RunOutput};
use tbs_ml::KnnClassifier;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Paper defaults for the kNN experiments (§6.2).
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Mode schedule for the measured phase.
    pub schedule: ModeSchedule,
    /// Measured batches after warm-up.
    pub measured: u64,
    /// Batch-size process.
    pub batch: BatchSizeProcess,
    /// R-TBS decay rates to include (one contender each).
    pub lambdas: Vec<f64>,
    /// Sample size bound for every scheme.
    pub n: usize,
    /// Neighbourhood size.
    pub k: usize,
    /// Independent runs to average.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl KnnConfig {
    /// §6.2 defaults: b = 100, n = 1000, k = 7, λ = 0.07.
    pub fn paper(schedule: ModeSchedule, measured: u64, runs: usize) -> Self {
        Self {
            schedule,
            measured,
            batch: BatchSizeProcess::Deterministic(100),
            lambdas: vec![0.07],
            n: 1000,
            k: 7,
            runs,
            seed: 424_242,
        }
    }
}

/// Build the standard contender set for one run.
fn contenders(cfg: &KnnConfig) -> Vec<Contender<LabeledPoint>> {
    let mut list: Vec<Contender<LabeledPoint>> = cfg
        .lambdas
        .iter()
        .map(|&lambda| {
            let name = if cfg.lambdas.len() == 1 {
                "R-TBS".to_string()
            } else {
                format!("R-TBS(l={lambda})")
            };
            Contender::new(
                name,
                Box::new(RTbs::new(lambda, cfg.n)),
                Box::new(KnnClassifier::new(cfg.k)),
            )
        })
        .collect();
    list.push(Contender::new(
        "SW",
        Box::new(CountWindow::new(cfg.n)),
        Box::new(KnnClassifier::new(cfg.k)),
    ));
    list.push(Contender::new(
        "Unif",
        Box::new(BatchedReservoir::new(cfg.n)),
        Box::new(KnnClassifier::new(cfg.k)),
    ));
    list
}

/// Result of a multi-run kNN experiment.
pub struct KnnResult {
    /// Mean error series per contender (averaged over runs).
    pub mean_series: Vec<RunOutput>,
    /// Per-contender averaged accuracy/ES summaries (ES from t = 20).
    pub summaries: Vec<(String, SeriesSummary)>,
}

/// Run the experiment: `runs` independent streams, each scored by every
/// contender.
pub fn run_knn(cfg: &KnnConfig) -> KnnResult {
    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: cfg.measured,
        batch_sizes: cfg.batch,
        schedule: cfg.schedule,
    };
    let mut all_runs: Vec<Vec<RunOutput>> = Vec::with_capacity(cfg.runs);
    for run in 0..cfg.runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(cfg.seed.wrapping_add(run as u64));
        let gmm = GmmGenerator::paper(&mut rng);
        let mut cs = contenders(cfg);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut cs,
            &mut rng,
        );
        all_runs.push(outputs);
    }
    let mean_series = mean_error_series(&all_runs);
    let n_contenders = mean_series.len();
    let summaries = (0..n_contenders)
        .map(|ci| {
            let per_run: Vec<SeriesSummary> = all_runs
                .iter()
                .map(|run| summarize_series(&run[ci].errors, 20, 0.10))
                .collect();
            (all_runs[0][ci].name.clone(), average_summaries(&per_run))
        })
        .collect();
    KnnResult {
        mean_series,
        summaries,
    }
}

/// Write a figure's error-series CSV and print its summary.
pub fn report(title: &str, csv_name: &str, result: &KnnResult) {
    let names: Vec<&str> = result.mean_series.iter().map(|o| o.name.as_str()).collect();
    let mut header = vec!["t"];
    header.extend(names.iter().copied());
    let len = result.mean_series[0].errors.len();
    let rows: Vec<Vec<String>> = (0..len)
        .map(|t| {
            let mut row = vec![t.to_string()];
            row.extend(result.mean_series.iter().map(|o| f(o.errors[t], 2)));
            row
        })
        .collect();
    write_csv(csv_name, &header, &rows);

    let srows: Vec<Vec<String>> = result
        .summaries
        .iter()
        .map(|(name, s)| vec![name.clone(), f(s.mean_error, 1), f(s.expected_shortfall, 1)])
        .collect();
    print_table(title, &["scheme", "Miss%", "10% ES"], &srows);
}

/// Figure 10: single event + Periodic(10,10).
pub fn run_fig10(runs: usize) {
    let single = run_knn(&KnnConfig::paper(ModeSchedule::single_event(), 30, runs));
    report(
        "Figure 10(a) — kNN misclassification, single event",
        "fig10a_knn_single_event.csv",
        &single,
    );
    let periodic = run_knn(&KnnConfig::paper(ModeSchedule::periodic(10, 10), 50, runs));
    report(
        "Figure 10(b) — kNN misclassification, Periodic(10,10)",
        "fig10b_knn_periodic_10_10.csv",
        &periodic,
    );
}

/// Figure 11: varying batch sizes under Periodic(10,10).
pub fn run_fig11(runs: usize) {
    let mut uniform = KnnConfig::paper(ModeSchedule::periodic(10, 10), 50, runs);
    uniform.batch = BatchSizeProcess::UniformRandom { lo: 0, hi: 200 };
    report(
        "Figure 11(a) — kNN, Uniform(0,200) batch sizes",
        "fig11a_knn_uniform_batches.csv",
        &run_knn(&uniform),
    );

    let mut growing = KnnConfig::paper(ModeSchedule::periodic(10, 10), 50, runs);
    // Batches grow 2% per batch after warm-up (warm-up is 100 batches).
    growing.batch = BatchSizeProcess::growing(100, 1.02, 100);
    report(
        "Figure 11(b) — kNN, batch sizes growing 2%/batch",
        "fig11b_knn_growing_batches.csv",
        &run_knn(&growing),
    );
}

/// Figure 14 (Appendix F): Periodic(20,10) and Periodic(30,10).
pub fn run_fig14(runs: usize) {
    report(
        "Figure 14(a) — kNN, Periodic(20,10)",
        "fig14a_knn_periodic_20_10.csv",
        &run_knn(&KnnConfig::paper(ModeSchedule::periodic(20, 10), 60, runs)),
    );
    report(
        "Figure 14(b) — kNN, Periodic(30,10)",
        "fig14b_knn_periodic_30_10.csv",
        &run_knn(&KnnConfig::paper(ModeSchedule::periodic(30, 10), 70, runs)),
    );
}

/// Table 1 — accuracy and robustness across temporal patterns and λ.
pub fn run_table1(runs: usize) {
    let patterns: Vec<(&str, ModeSchedule, u64)> = vec![
        ("Single Event", ModeSchedule::single_event(), 30),
        ("P(10,10)", ModeSchedule::periodic(10, 10), 50),
        ("P(20,10)", ModeSchedule::periodic(20, 10), 60),
        ("P(30,10)", ModeSchedule::periodic(30, 10), 70),
    ];
    // Rows: R-TBS λ ∈ {0.05, 0.07, 0.10}, SW, Unif. Columns: per pattern
    // Miss% and ES.
    let mut cfg0 = KnnConfig::paper(ModeSchedule::single_event(), 30, runs);
    cfg0.lambdas = vec![0.05, 0.07, 0.10];

    let mut table: Vec<Vec<String>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new(); // per pattern, per scheme
    for (_, schedule, measured) in &patterns {
        let mut cfg = cfg0.clone();
        cfg.schedule = *schedule;
        cfg.measured = *measured;
        let result = run_knn(&cfg);
        if names.is_empty() {
            names = result.summaries.iter().map(|(n, _)| n.clone()).collect();
        }
        columns.push(
            result
                .summaries
                .iter()
                .map(|(_, s)| (s.mean_error, s.expected_shortfall))
                .collect(),
        );
    }
    for (si, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for col in &columns {
            row.push(f(col[si].0, 1));
            row.push(f(col[si].1, 1));
        }
        table.push(row);
    }
    let header: Vec<String> = std::iter::once("scheme".to_string())
        .chain(
            patterns
                .iter()
                .flat_map(|(name, _, _)| [format!("{name} Miss%"), format!("{name} ES")]),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_csv("table1_knn_accuracy_robustness.csv", &header_refs, &table);
    print_table(
        &format!("Table 1 — kNN accuracy & robustness ({runs} runs, ES from t=20)"),
        &header_refs,
        &table,
    );
}

/// Sanity helper used by integration tests: one quick single-event run.
pub fn smoke_run() -> KnnResult {
    let mut cfg = KnnConfig::paper(ModeSchedule::single_event(), 25, 2);
    cfg.n = 300;
    cfg.seed = 7;
    run_knn(&cfg)
}

/// Ablation: misclassification of R-TBS vs B-Chao under slow, bursty
/// streams where Chao's overweight items distort inclusion probabilities.
pub fn run_chao_ablation(runs: usize) {
    use tbs_core::BChao;
    let schedule = ModeSchedule::periodic(10, 10);
    let plan = StreamPlan {
        warmup_batches: 100,
        measured_batches: 50,
        batch_sizes: BatchSizeProcess::Deterministic(100),
        schedule,
    };
    let mut summaries: Vec<Vec<SeriesSummary>> = vec![Vec::new(), Vec::new()];
    for run in 0..runs {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99_000 + run as u64);
        let gmm = GmmGenerator::paper(&mut rng);
        let mut cs: Vec<Contender<LabeledPoint>> = vec![
            Contender::new(
                "R-TBS",
                Box::new(RTbs::new(0.07, 1000)),
                Box::new(KnnClassifier::new(7)),
            ),
            Contender::new(
                "B-Chao",
                Box::new(BChao::new(0.07, 1000)),
                Box::new(KnnClassifier::new(7)),
            ),
        ];
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut cs,
            &mut rng,
        );
        for (i, o) in outputs.iter().enumerate() {
            summaries[i].push(summarize_series(&o.errors, 20, 0.10));
        }
    }
    let rows: Vec<Vec<String>> = ["R-TBS", "B-Chao"]
        .iter()
        .zip(&summaries)
        .map(|(name, s)| {
            let avg = average_summaries(s);
            vec![
                name.to_string(),
                f(avg.mean_error, 1),
                f(avg.expected_shortfall, 1),
            ]
        })
        .collect();
    print_table(
        "Ablation — R-TBS vs B-Chao under P(10,10)",
        &["scheme", "Miss%", "10% ES"],
        &rows,
    );
    write_csv(
        "ablation_chao_vs_rtbs.csv",
        &["scheme", "miss_pct", "es10"],
        &rows,
    );
}

/// Quick deterministic check used in tests: kNN on a mixture learns.
pub fn quick_accuracy_check(seed: u64) -> f64 {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gmm = GmmGenerator::paper(&mut rng);
    let mut knn = KnnClassifier::new(7);
    let train = gmm.sample_batch(tbs_datagen::Mode::Normal, 1000, &mut rng);
    knn.train(&train);
    let test = gmm.sample_batch(tbs_datagen::Mode::Normal, 500, &mut rng);
    let _ = rng.gen::<f64>();
    knn.misclassification_pct(&test)
}
