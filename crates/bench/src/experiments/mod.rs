//! One module per paper table/figure; each exposes `run_*` entry points
//! used by both the `src/bin` regeneration binaries and the integration
//! tests.

pub mod fig1;
pub mod forward;
pub mod inclusion;
pub mod knn;
pub mod linreg;
pub mod nb;
pub mod runtime;
pub mod scaling;
pub mod serving;
pub mod theory;
pub mod throughput;
pub mod wire;
