//! Inclusion-probability verification — equation (1) / Theorem 4.2 and
//! B-Chao's Appendix-D violation, measured empirically.

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::verify::{max_ratio_violation, measure_inclusion, BatchInclusion};
use tbs_core::{BChao, BTbs, RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// One scheme's measured conformance to property (1).
pub struct InclusionReport {
    /// Scheme name.
    pub name: &'static str,
    /// Per-batch empirical inclusion probabilities.
    pub stats: Vec<BatchInclusion>,
    /// Worst deviation of adjacent-batch ratios from e^{−λ}.
    pub violation: f64,
}

/// Measure all four decay-aware schemes on a schedule that exercises both
/// fill-up and steady state.
pub fn run(lambda: f64, trials: usize, seed: u64) -> Vec<InclusionReport> {
    let schedule = [6u64, 6, 6, 6, 6, 6];
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);

    let mut reports = Vec::new();
    let stats = measure_inclusion(|| BTbs::new(lambda), &schedule, trials, &mut rng);
    reports.push(InclusionReport {
        name: "B-TBS",
        violation: max_ratio_violation(&stats, lambda, 0.02),
        stats,
    });
    let stats = measure_inclusion(|| RTbs::new(lambda, 8), &schedule, trials, &mut rng);
    reports.push(InclusionReport {
        name: "R-TBS (saturating, n=8)",
        violation: max_ratio_violation(&stats, lambda, 0.02),
        stats,
    });
    let stats = measure_inclusion(|| TTbs::new(lambda, 8, 6.0), &schedule, trials, &mut rng);
    reports.push(InclusionReport {
        name: "T-TBS",
        violation: max_ratio_violation(&stats, lambda, 0.02),
        stats,
    });
    // B-Chao with a capacity so large the whole run is fill-up: the
    // Appendix-D violation regime.
    let stats = measure_inclusion(|| BChao::new(lambda, 1000), &schedule, trials, &mut rng);
    reports.push(InclusionReport {
        name: "B-Chao (fill-up)",
        violation: max_ratio_violation(&stats, lambda, 0.02),
        stats,
    });
    reports
}

/// Run with reporting.
pub fn run_and_report(trials: usize) -> Vec<InclusionReport> {
    let lambda = 0.3;
    let reports = run(lambda, trials, 777);
    let target = (-lambda).exp();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let probs: Vec<String> = r.stats.iter().map(|s| f(s.probability, 3)).collect();
            vec![r.name.to_string(), probs.join(" "), f(r.violation, 3)]
        })
        .collect();
    print_table(
        &format!(
            "Equation (1) conformance — per-batch inclusion probabilities \
             (lambda={lambda}, adjacent-batch target ratio e^-lambda={target:.3})"
        ),
        &[
            "scheme",
            "Pr[i in S] per batch (old->new)",
            "max ratio violation",
        ],
        &rows,
    );
    let csv_rows: Vec<Vec<String>> = reports
        .iter()
        .flat_map(|r| {
            r.stats.iter().map(move |s| {
                vec![
                    r.name.to_string(),
                    s.batch.to_string(),
                    f(s.probability, 5),
                    f(s.std_error, 5),
                ]
            })
        })
        .collect();
    write_csv(
        "inclusion_check.csv",
        &["scheme", "batch", "probability", "std_error"],
        &csv_rows,
    );
    println!(
        "B-Chao's fill-up violation ({:.3}) vs decay-correct schemes (< 0.05) \
         reproduces the Appendix D failure case.",
        reports.last().map(|r| r.violation).unwrap_or(f64::NAN)
    );
    reports
}
