//! Ingest-throughput benchmark — the perf baseline every PR is judged
//! against.
//!
//! §6.4 of the paper argues the samplers are cheap enough to run inline
//! with model retraining; this experiment makes that claim continuously
//! measurable. Every sampler is driven through three stream regimes and
//! timed end-to-end over `observe` calls only (batch generation is excluded
//! from the timed region):
//!
//! * **unsaturated** — capacity above the equilibrium size (§6.3's
//!   n = 1600, b = 100, λ = 0.07 → C* ≈ 1479), so R-TBS runs its
//!   decay-and-downsample transition every step;
//! * **saturated** — capacity below the total-weight equilibrium (Fig 1(b)'s
//!   n = 1000, b = 100, λ = 0.1 → W* ≈ 1051), so R-TBS runs its
//!   saturated→saturated batch-replacement transition every step;
//! * **bursty** — erratic batch sizes (0 to 1000 items, including empty
//!   batches) over a capacity of 1000, exercising all four R-TBS
//!   transitions plus B-Chao's overweight bookkeeping.
//!
//! Each sampler is measured twice: on the **fast** path (concrete sampler
//! type + concrete RNG — fully monomorphized, no virtual dispatch) and on
//! the **dyn** path (`Box<dyn BatchSampler<u64>>` + `&mut dyn RngCore`,
//! the heterogeneous-harness adapter). The spread between the two is the
//! price of object safety.
//!
//! Results go to `results/bench_throughput.csv` and to a machine-readable
//! `BENCH_throughput.json` (see [`rows_to_json`]) whose schema downstream
//! tooling can diff across commits.

use crate::json::Json;
use crate::output::{f, print_table, write_csv};
use std::time::Instant;
use tbs_core::{
    BAres, BChao, BTbs, BatchSampler, BatchedReservoir, CountWindow, IngestMode, RTbs, TTbs,
    TimeWindow,
};
use tbs_stats::rng::Xoshiro256PlusPlus;
use temporal_sampling::api::SamplerConfig;

use rand::SeedableRng;

/// Tuning knobs for one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Batches fed inside the timed region, per repeat.
    pub measured_batches: usize,
    /// Untimed batches fed first so every sampler reaches steady state
    /// (reservoirs saturate, `Vec` capacities hit their high-water marks).
    pub warmup_batches: usize,
    /// Timed repeats; the fastest is reported (minimum-time estimator,
    /// standard for throughput: slower runs measure interference, not the
    /// code).
    pub repeats: usize,
    /// Base RNG seed; each (sampler, path, regime) combination derives its
    /// own stream from it.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            measured_batches: 20_000,
            warmup_batches: 2_000,
            repeats: 3,
            seed: 0x7B5_2018,
        }
    }
}

impl ThroughputConfig {
    /// Long-form counts for low-noise baseline refreshes: more measured
    /// batches and repeats push the minimum-time estimator closer to the
    /// true floor at the cost of a several-fold longer run.
    pub fn thorough() -> Self {
        Self {
            measured_batches: 60_000,
            warmup_batches: 5_000,
            repeats: 7,
            ..Self::default()
        }
    }

    /// Tiny iteration counts for CI smoke runs: verifies the harness end to
    /// end in milliseconds without producing meaningful numbers.
    pub fn smoke() -> Self {
        Self {
            measured_batches: 40,
            warmup_batches: 20,
            repeats: 1,
            seed: 7,
        }
    }
}

/// The bursty regime's repeating batch-size cycle — the single source for
/// both the per-step schedule and the derived mean.
const BURSTY_SCHEDULE: [usize; 6] = [0, 1, 250, 7, 90, 1000];

/// The three stream regimes described in the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Capacity above equilibrium: the reservoir never fills.
    Unsaturated,
    /// Capacity below the weight equilibrium: pinned at `n`.
    Saturated,
    /// Erratic batch sizes, including empty and capacity-sized bursts.
    Bursty,
}

impl Regime {
    /// All regimes, in report order.
    pub fn all() -> [Regime; 3] {
        [Regime::Unsaturated, Regime::Saturated, Regime::Bursty]
    }

    /// Label used in CSV/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Unsaturated => "unsaturated",
            Regime::Saturated => "saturated",
            Regime::Bursty => "bursty",
        }
    }

    /// Reservoir capacity / window size used for every bounded sampler.
    pub fn capacity(self) -> usize {
        match self {
            Regime::Unsaturated => 1600,
            Regime::Saturated | Regime::Bursty => 1000,
        }
    }

    /// Decay rate λ.
    pub fn lambda(self) -> f64 {
        match self {
            Regime::Unsaturated => 0.07,
            Regime::Saturated | Regime::Bursty => 0.1,
        }
    }

    /// Batch size at (0-based) step `t`.
    pub fn batch_size(self, t: usize) -> usize {
        match self {
            Regime::Unsaturated | Regime::Saturated => 100,
            Regime::Bursty => BURSTY_SCHEDULE[t % BURSTY_SCHEDULE.len()],
        }
    }

    /// Mean batch size of the schedule (T-TBS's assumed `b`).
    pub fn mean_batch(self) -> f64 {
        match self {
            Regime::Unsaturated | Regime::Saturated => 100.0,
            Regime::Bursty => {
                BURSTY_SCHEDULE.iter().sum::<usize>() as f64 / BURSTY_SCHEDULE.len() as f64
            }
        }
    }

    /// T-TBS target size: the largest feasible target within the capacity
    /// bound, backed off 10% from the exact feasibility frontier
    /// `b = n(1 − e^{−λ})` so `q < 1` and the down-sampling path is
    /// actually exercised.
    pub fn ttbs_target(self) -> usize {
        let frontier = self.mean_batch() / (1.0 - (-self.lambda()).exp());
        ((0.9 * frontier) as usize).min(self.capacity()).max(1)
    }
}

/// Which API the sampler was driven through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiPath {
    /// Concrete sampler + concrete RNG: monomorphized hot path.
    Fast,
    /// `Box<dyn BatchSampler<u64>>` + `&mut dyn RngCore`: object-safe
    /// adapter, as used by heterogeneous harnesses.
    Dyn,
    /// The public `temporal_sampling::api::Sampler` handle: enum
    /// dispatch onto the same monomorphized fast path, with the handle
    /// owning its RNG. Must stay within ±10% of `fast` (the enum match
    /// is a jump table, not a vtable).
    Facade,
    /// The monomorphized fast path with `IngestMode::Jump`: batch-level
    /// acceptance sampling (binomial counts + windowed swaps, geometric
    /// skips) instead of per-item RNG draws. Only R-TBS and T-TBS
    /// implement it; the saturated R-TBS row is gated at ≥ 2× the
    /// per-item `fast` row measured in the same run.
    Jump,
    /// The facade handle with jump ingest **plus** an automatic durable
    /// checkpoint every [`CHECKPOINT_EVERY`] batches
    /// (`CheckpointPolicy::EveryBatches` into a `CheckpointStore` ring on
    /// local disk, written behind the ingest thread). Measures what
    /// durability costs a saturated ingest loop; the saturated R-TBS row
    /// must keep at least half of the `jump` row measured in the same run
    /// (see [`check_checkpoint_overhead`]).
    Checkpoint,
}

impl ApiPath {
    /// All paths, in report order.
    pub fn all() -> [ApiPath; 5] {
        [
            ApiPath::Fast,
            ApiPath::Dyn,
            ApiPath::Facade,
            ApiPath::Jump,
            ApiPath::Checkpoint,
        ]
    }

    /// Label used in CSV/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            ApiPath::Fast => "fast",
            ApiPath::Dyn => "dyn",
            ApiPath::Facade => "facade",
            ApiPath::Jump => "jump",
            ApiPath::Checkpoint => "checkpoint",
        }
    }

    /// Whether `kind` implements this path (`jump` and `checkpoint`
    /// exist only for the two mergeable TBS samplers).
    pub fn supports(self, kind: SamplerKind) -> bool {
        match self {
            ApiPath::Jump | ApiPath::Checkpoint => {
                matches!(kind, SamplerKind::RTbs | SamplerKind::TTbs)
            }
            _ => true,
        }
    }
}

/// Batch interval of the `checkpoint` path's automatic policy. At the
/// saturated regime's 100-item batches this is one durable generation
/// per 500k items — a few times a second at saturated jump speed, far
/// more aggressive than production cadences (typically seconds to
/// minutes apart) while still firing several times inside the measured
/// window so the row reflects steady-state cost, not a lucky miss.
pub const CHECKPOINT_EVERY: u64 = 5000;

/// The samplers under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// R-TBS (Algorithm 2).
    RTbs,
    /// T-TBS (Algorithm 1).
    TTbs,
    /// B-TBS, the Bernoulli scheme (Algorithm 4).
    BTbs,
    /// Uniform batched reservoir (Algorithm 5).
    Unif,
    /// B-Chao (Algorithms 6–7).
    Chao,
    /// Count-based sliding window.
    SlidingCount,
    /// Time-based sliding window.
    SlidingTime,
    /// A-Res weighted reservoir (§7).
    ARes,
}

impl SamplerKind {
    /// All samplers, in report order.
    pub fn all() -> [SamplerKind; 8] {
        [
            SamplerKind::RTbs,
            SamplerKind::TTbs,
            SamplerKind::BTbs,
            SamplerKind::Unif,
            SamplerKind::Chao,
            SamplerKind::SlidingCount,
            SamplerKind::SlidingTime,
            SamplerKind::ARes,
        ]
    }

    /// Label used in CSV/JSON output (matches `BatchSampler::name`).
    pub fn label(self) -> &'static str {
        match self {
            SamplerKind::RTbs => "R-TBS",
            SamplerKind::TTbs => "T-TBS",
            SamplerKind::BTbs => "B-TBS",
            SamplerKind::Unif => "Unif",
            SamplerKind::Chao => "B-Chao",
            SamplerKind::SlidingCount => "SW",
            SamplerKind::SlidingTime => "SW-time",
            SamplerKind::ARes => "A-Res",
        }
    }
}

/// One measured (sampler, path, regime) combination.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Sampler label (`R-TBS`, `T-TBS`, …).
    pub sampler: &'static str,
    /// API path label (`fast` or `dyn`).
    pub path: &'static str,
    /// Regime label (`unsaturated`, `saturated`, `bursty`).
    pub regime: &'static str,
    /// Batches fed inside the timed region.
    pub batches: usize,
    /// Items fed inside the timed region.
    pub items: u64,
    /// Wall-clock nanoseconds of the fastest repeat.
    pub elapsed_ns: u64,
    /// Ingest throughput, items per second.
    pub items_per_sec: f64,
    /// Mean cost per item in nanoseconds.
    pub ns_per_item: f64,
}

/// Generate `count` batches of the regime's schedule starting at step `t0`;
/// returns the batches and the total item count.
fn gen_batches(regime: Regime, count: usize, t0: usize) -> (Vec<Vec<u64>>, u64) {
    let mut items = 0u64;
    let mut out = Vec::with_capacity(count);
    for t in t0..t0 + count {
        let b = regime.batch_size(t);
        let base = t as u64 * 1_000_000;
        out.push((0..b as u64).map(|i| base + i).collect());
        items += b as u64;
    }
    (out, items)
}

/// Drive `feed` through warmup plus `repeats` timed runs of the regime's
/// schedule; returns (items per timed run, fastest elapsed ns).
fn drive<F>(cfg: &ThroughputConfig, regime: Regime, seed: u64, mut feed: F) -> (u64, u64)
where
    F: FnMut(Vec<u64>, &mut Xoshiro256PlusPlus),
{
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let (warm, _) = gen_batches(regime, cfg.warmup_batches, 0);
    for batch in warm {
        feed(batch, &mut rng);
    }
    let mut best_ns = u64::MAX;
    let mut items = 0u64;
    for _rep in 0..cfg.repeats.max(1) {
        // Every repeat replays the identical schedule window (same t0, so
        // the same phase of cyclic regimes): equal work per repeat, which
        // is what makes the minimum-time estimator and the single item
        // count below valid together.
        let (batches, n_items) = gen_batches(regime, cfg.measured_batches, cfg.warmup_batches);
        items = n_items;
        let start = Instant::now();
        for batch in batches {
            feed(batch, &mut rng);
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as u64);
    }
    (items, best_ns.max(1))
}

fn combo_seed(cfg: &ThroughputConfig, kind: SamplerKind, path: ApiPath, regime: Regime) -> u64 {
    cfg.seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((kind as u64) << 16 | (path as u64) << 8 | regime as u64)
}

/// Construct the `api::SamplerConfig` matching `kind` under `regime`'s
/// parameters, for the facade path.
fn facade_config(kind: SamplerKind, regime: Regime) -> SamplerConfig {
    let (n, lambda) = (regime.capacity(), regime.lambda());
    match kind {
        SamplerKind::RTbs => SamplerConfig::rtbs(lambda, n),
        SamplerKind::TTbs => SamplerConfig::ttbs(lambda, regime.ttbs_target(), regime.mean_batch()),
        SamplerKind::BTbs => SamplerConfig::btbs(lambda),
        SamplerKind::Unif => SamplerConfig::uniform(n),
        SamplerKind::Chao => SamplerConfig::chao(lambda, n),
        SamplerKind::SlidingCount => SamplerConfig::sliding_count(n),
        SamplerKind::SlidingTime => SamplerConfig::sliding_time(5.0),
        SamplerKind::ARes => SamplerConfig::ares(lambda, n),
    }
}

/// Construct the boxed, type-erased variant of `kind` for the dyn path.
fn boxed_sampler(kind: SamplerKind, regime: Regime) -> Box<dyn BatchSampler<u64>> {
    let (n, lambda) = (regime.capacity(), regime.lambda());
    match kind {
        SamplerKind::RTbs => Box::new(RTbs::new(lambda, n)),
        SamplerKind::TTbs => Box::new(TTbs::new(lambda, regime.ttbs_target(), regime.mean_batch())),
        SamplerKind::BTbs => Box::new(BTbs::new(lambda)),
        SamplerKind::Unif => Box::new(BatchedReservoir::new(n)),
        SamplerKind::Chao => Box::new(BChao::new(lambda, n)),
        SamplerKind::SlidingCount => Box::new(CountWindow::new(n)),
        SamplerKind::SlidingTime => Box::new(TimeWindow::new(5.0)),
        SamplerKind::ARes => Box::new(BAres::new(lambda, n)),
    }
}

/// Measure one (sampler, path, regime) combination.
pub fn measure_one(
    cfg: &ThroughputConfig,
    kind: SamplerKind,
    path: ApiPath,
    regime: Regime,
) -> ThroughputRow {
    let seed = combo_seed(cfg, kind, path, regime);
    let (n, lambda) = (regime.capacity(), regime.lambda());
    let (items, elapsed_ns) = match path {
        ApiPath::Dyn => {
            let mut s = boxed_sampler(kind, regime);
            drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
        }
        // The facade handle owns its RNG (seeded from the same combo
        // seed), so the driver-side rng is unused here — what is timed
        // is exactly what an `api` caller pays per `observe`.
        ApiPath::Facade => {
            let mut s = facade_config(kind, regime)
                .seed(seed)
                .build::<u64>()
                .expect("benchmark configs are valid");
            drive(cfg, regime, seed, move |batch, _rng| {
                s.observe(batch).expect("bench ingest never fails")
            })
        }
        // Jump ingest through the facade, with an automatic durable
        // checkpoint ring on local disk — the durability-cost row. The
        // store writes (frame + fsync + rename) land inside the timed
        // region exactly as a production ingest loop would pay them.
        ApiPath::Checkpoint => {
            let dir = std::env::temp_dir().join(format!(
                "tbs-bench-ckpt-{}-{}-{}",
                std::process::id(),
                kind.label(),
                regime.label()
            ));
            let mut s = facade_config(kind, regime)
                .seed(seed)
                .ingest_mode(temporal_sampling::api::IngestMode::Jump)
                .checkpoint_policy(temporal_sampling::api::CheckpointPolicy::EveryBatches(
                    CHECKPOINT_EVERY,
                ))
                .build::<u64>()
                .expect("benchmark configs are valid");
            s.set_checkpoint_store(
                temporal_sampling::api::CheckpointStore::open(&dir, 4)
                    .expect("bench scratch dir is writable"),
            );
            let out = drive(cfg, regime, seed, |batch, _rng| {
                s.observe(batch).expect("bench ingest never fails")
            });
            s.flush_checkpoints().expect("bench checkpoints flush");
            drop(s);
            let _ = std::fs::remove_dir_all(&dir);
            out
        }
        // The jump path is the fast path with batch-level acceptance
        // sampling switched on — same concrete types, different ingest
        // strategy.
        ApiPath::Jump => match kind {
            SamplerKind::RTbs => {
                let mut s: RTbs<u64> = RTbs::new(lambda, n);
                s.set_ingest_mode(IngestMode::Jump);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::TTbs => {
                let mut s: TTbs<u64> = TTbs::new(lambda, regime.ttbs_target(), regime.mean_batch());
                s.set_ingest_mode(IngestMode::Jump);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            other => panic!("{} has no jump ingest mode", other.label()),
        },
        // Each arm below monomorphizes `observe` over the concrete sampler
        // type and the concrete xoshiro256++ RNG — no virtual dispatch
        // anywhere inside the timed loop.
        ApiPath::Fast => match kind {
            SamplerKind::RTbs => {
                let mut s: RTbs<u64> = RTbs::new(lambda, n);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::TTbs => {
                let mut s: TTbs<u64> = TTbs::new(lambda, regime.ttbs_target(), regime.mean_batch());
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::BTbs => {
                let mut s: BTbs<u64> = BTbs::new(lambda);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::Unif => {
                let mut s: BatchedReservoir<u64> = BatchedReservoir::new(n);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::Chao => {
                let mut s: BChao<u64> = BChao::new(lambda, n);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::SlidingCount => {
                let mut s: CountWindow<u64> = CountWindow::new(n);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::SlidingTime => {
                let mut s: TimeWindow<u64> = TimeWindow::new(5.0);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
            SamplerKind::ARes => {
                let mut s: BAres<u64> = BAres::new(lambda, n);
                drive(cfg, regime, seed, move |batch, rng| s.observe(batch, rng))
            }
        },
    };
    ThroughputRow {
        sampler: kind.label(),
        path: path.label(),
        regime: regime.label(),
        batches: cfg.measured_batches,
        items,
        elapsed_ns,
        items_per_sec: items as f64 * 1e9 / elapsed_ns as f64,
        ns_per_item: elapsed_ns as f64 / items.max(1) as f64,
    }
}

/// Run the full sampler × path × regime grid.
pub fn run_throughput(cfg: &ThroughputConfig) -> Vec<ThroughputRow> {
    run_throughput_filtered(cfg, |_, _, _| true)
}

/// [`run_throughput`] restricted to the combinations `keep` accepts —
/// used by the binary's `--filter` flag to iterate on one sampler quickly.
pub fn run_throughput_filtered(
    cfg: &ThroughputConfig,
    keep: impl Fn(SamplerKind, ApiPath, Regime) -> bool,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for kind in SamplerKind::all() {
        for path in ApiPath::all() {
            for regime in Regime::all() {
                if path.supports(kind) && keep(kind, path, regime) {
                    rows.push(measure_one(cfg, kind, path, regime));
                }
            }
        }
    }
    rows
}

/// Print the aligned console table and write `results/bench_throughput.csv`.
pub fn report(rows: &[ThroughputRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sampler.to_string(),
                r.path.to_string(),
                r.regime.to_string(),
                r.items.to_string(),
                f(r.items_per_sec / 1e6, 2),
                f(r.ns_per_item, 1),
            ]
        })
        .collect();
    write_csv(
        "bench_throughput.csv",
        &[
            "sampler",
            "path",
            "regime",
            "items",
            "items_per_sec_millions",
            "ns_per_item",
        ],
        &table,
    );
    print_table(
        "Ingest throughput (fastest of repeats; observe() only)",
        &["sampler", "path", "regime", "items", "M items/s", "ns/item"],
        &table,
    );
}

/// Assemble the `BENCH_throughput.json` document.
pub fn rows_to_json(cfg: &ThroughputConfig, rows: &[ThroughputRow]) -> Json {
    let regimes = Regime::all()
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.label())),
                ("capacity", Json::Int(r.capacity() as i64)),
                ("lambda", Json::Num(r.lambda())),
                ("mean_batch", Json::Num(r.mean_batch())),
            ])
        })
        .collect();
    let row_values = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("sampler", Json::str(r.sampler)),
                ("path", Json::str(r.path)),
                ("regime", Json::str(r.regime)),
                ("batches", Json::Int(r.batches as i64)),
                ("items", Json::UInt(r.items)),
                ("elapsed_ns", Json::UInt(r.elapsed_ns)),
                ("items_per_sec", Json::Num(r.items_per_sec)),
                ("ns_per_item", Json::Num(r.ns_per_item)),
            ])
        })
        .collect();
    Json::obj([
        ("bench", Json::str("throughput")),
        ("schema_version", Json::Int(1)),
        (
            "config",
            Json::obj([
                ("measured_batches", Json::Int(cfg.measured_batches as i64)),
                ("warmup_batches", Json::Int(cfg.warmup_batches as i64)),
                ("repeats", Json::Int(cfg.repeats as i64)),
                ("seed", Json::UInt(cfg.seed)),
                ("item_type", Json::str("u64")),
                ("regimes", Json::Arr(regimes)),
            ]),
        ),
        ("rows", Json::Arr(row_values)),
        ("summary", summary(rows)),
    ])
}

/// Gate verdicts recorded alongside the rows so
/// `tests/bench_artifacts.rs` can re-check the committed baseline
/// without re-running the bench. Tolerances here mirror the ones the
/// bin enforces; a failed (or inapplicable, e.g. filtered-run) gate is
/// recorded with `pass: false` and the reason rather than omitted.
fn summary(rows: &[ThroughputRow]) -> Json {
    fn gate(res: Result<f64, String>) -> Json {
        match res {
            Ok(ratio) => Json::obj([("ratio", Json::Num(ratio)), ("pass", Json::Bool(true))]),
            Err(msg) => Json::obj([("pass", Json::Bool(false)), ("error", Json::str(msg))]),
        }
    }
    Json::obj([(
        "gates",
        Json::obj([
            ("facade_overhead", gate(check_facade_overhead(rows, 0.10))),
            ("jump_speedup", gate(check_jump_speedup(rows, 2.0))),
            (
                "jump_vs_committed_baseline",
                gate(check_jump_baseline(rows, COMMITTED_JUMP_BASELINE, 0.10)),
            ),
            (
                "checkpoint_overhead",
                gate(check_checkpoint_overhead(rows, 0.5)),
            ),
        ]),
    )])
}

/// Row keys (beyond the shared core in
/// [`crate::json::BENCH_CORE_ROW_KEYS`]) every throughput row carries.
pub const THROUGHPUT_ROW_KEYS: &[&str] = &["path", "elapsed_ns", "items_per_sec", "ns_per_item"];

/// Check that the `facade` path's flagship row (saturated R-TBS — the
/// committed-baseline headline) is no more than `tolerance` (fractional)
/// slower than the `fast` path measured in the same run. Comparing
/// within one run makes the gate robust to machine-to-machine absolute
/// differences; the committed `BENCH_throughput.json` preserves the
/// absolute numbers. Returns the facade/fast throughput ratio.
pub fn check_facade_overhead(rows: &[ThroughputRow], tolerance: f64) -> Result<f64, String> {
    let find = |path: &str| {
        rows.iter()
            .find(|r| r.sampler == "R-TBS" && r.regime == "saturated" && r.path == path)
            .ok_or_else(|| format!("no R-TBS/saturated/{path} row in this run"))
    };
    let fast = find("fast")?;
    let facade = find("facade")?;
    let ratio = facade.items_per_sec / fast.items_per_sec;
    if ratio < 1.0 - tolerance {
        return Err(format!(
            "api facade dropped R-TBS saturated ingest to {:.1}M items/s \
             ({:.1}% of the fast path's {:.1}M — tolerance is {:.0}%)",
            facade.items_per_sec / 1e6,
            ratio * 100.0,
            fast.items_per_sec / 1e6,
            (1.0 - tolerance) * 100.0
        ));
    }
    Ok(ratio)
}

/// Check that the `jump` path's flagship row (saturated R-TBS) is at
/// least `min_speedup`× the per-item `fast` path measured in the same
/// run — the tentpole claim of the jump-ingest mode. Comparing within
/// one run keeps the gate machine-independent; the committed
/// `BENCH_throughput.json` preserves the absolute numbers (the per-item
/// baseline there is 254.7M per-item vs 723.2M jump). Returns the jump/fast ratio.
pub fn check_jump_speedup(rows: &[ThroughputRow], min_speedup: f64) -> Result<f64, String> {
    let find = |path: &str| {
        rows.iter()
            .find(|r| r.sampler == "R-TBS" && r.regime == "saturated" && r.path == path)
            .ok_or_else(|| format!("no R-TBS/saturated/{path} row in this run"))
    };
    let fast = find("fast")?;
    let jump = find("jump")?;
    let ratio = jump.items_per_sec / fast.items_per_sec;
    if ratio < min_speedup {
        return Err(format!(
            "jump-mode R-TBS saturated ingest is only {:.1}M items/s \
             ({:.2}× the per-item fast path's {:.1}M — gate is {:.1}×)",
            jump.items_per_sec / 1e6,
            ratio,
            fast.items_per_sec / 1e6,
            min_speedup
        ));
    }
    Ok(ratio)
}

/// Saturated R-TBS jump-ingest throughput (items/s) of the committed
/// `BENCH_throughput.json` baseline at the time the durability row was
/// added. Full `bench_throughput` runs gate at no more than 10% below
/// this ([`check_jump_baseline`]) — the regression tripwire for the
/// checkpoint machinery now sitting on the facade's observe path.
pub const COMMITTED_JUMP_BASELINE: f64 = 723.2e6;

/// Check that the saturated R-TBS `jump` row of *this* run has not
/// regressed more than `tolerance` (fractional) below the committed
/// absolute `baseline` (items/s — see [`COMMITTED_JUMP_BASELINE`]).
/// Unlike the within-run ratio gates this compares across runs, so it is
/// machine-sensitive by design: it exists to catch the facade's
/// automatic-checkpoint hook (or any other PR) taxing the flagship
/// ingest path itself, which a within-run ratio can never see. Returns
/// the measured/baseline ratio.
pub fn check_jump_baseline(
    rows: &[ThroughputRow],
    baseline: f64,
    tolerance: f64,
) -> Result<f64, String> {
    let jump = rows
        .iter()
        .find(|r| r.sampler == "R-TBS" && r.regime == "saturated" && r.path == "jump")
        .ok_or("no R-TBS/saturated/jump row in this run")?;
    let ratio = jump.items_per_sec / baseline;
    if ratio < 1.0 - tolerance {
        return Err(format!(
            "saturated R-TBS jump ingest regressed to {:.1}M items/s \
             ({:.1}% of the committed {:.1}M baseline — floor is {:.0}%)",
            jump.items_per_sec / 1e6,
            ratio * 100.0,
            baseline / 1e6,
            (1.0 - tolerance) * 100.0
        ));
    }
    Ok(ratio)
}

/// Check that the `checkpoint` path's flagship row (saturated R-TBS) is
/// no more than `tolerance` (fractional) slower than the plain `jump`
/// path measured in the same run. The write-behind store keeps the
/// ingest-thread cost to serialization (~40µs per generation), but the
/// fsync's *kernel CPU* cannot overlap ingest on a single-core runner —
/// so the floor is calibrated as a catastrophic-regression tripwire
/// (losing write-behind drops the ratio under 0.2; healthy runs measure
/// ~0.6 single-core and better with real parallelism), not a precision
/// bound. Comparing within one run keeps it machine-independent; the
/// committed `BENCH_throughput.json` preserves the absolute numbers.
/// Returns the checkpoint/jump ratio.
pub fn check_checkpoint_overhead(rows: &[ThroughputRow], tolerance: f64) -> Result<f64, String> {
    let find = |path: &str| {
        rows.iter()
            .find(|r| r.sampler == "R-TBS" && r.regime == "saturated" && r.path == path)
            .ok_or_else(|| format!("no R-TBS/saturated/{path} row in this run"))
    };
    let jump = find("jump")?;
    let ckpt = find("checkpoint")?;
    let ratio = ckpt.items_per_sec / jump.items_per_sec;
    if ratio < 1.0 - tolerance {
        return Err(format!(
            "automatic checkpointing dropped R-TBS saturated jump ingest to \
             {:.1}M items/s ({:.1}% of the jump path's {:.1}M — floor is {:.0}%)",
            ckpt.items_per_sec / 1e6,
            ratio * 100.0,
            jump.items_per_sec / 1e6,
            (1.0 - tolerance) * 100.0
        ));
    }
    Ok(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_produces_sane_rows() {
        let cfg = ThroughputConfig::smoke();
        let rows = run_throughput(&cfg);
        // 8 samplers × 3 per-item paths × 3 regimes, plus jump and
        // checkpoint rows for the two samplers that implement the mode.
        assert_eq!(rows.len(), 8 * 3 * 3 + 2 * 3 + 2 * 3);
        assert_eq!(rows.iter().filter(|r| r.path == "jump").count(), 6);
        assert_eq!(rows.iter().filter(|r| r.path == "checkpoint").count(), 6);
        for r in &rows {
            assert!(
                r.items > 0,
                "{}/{}/{} fed no items",
                r.sampler,
                r.path,
                r.regime
            );
            assert!(r.items_per_sec > 0.0);
            assert!(r.ns_per_item > 0.0);
        }
    }

    fn synthetic_row(path: &'static str, items_per_sec: f64) -> ThroughputRow {
        ThroughputRow {
            sampler: "R-TBS",
            path,
            regime: "saturated",
            batches: 1,
            items: 1,
            elapsed_ns: 1,
            items_per_sec,
            ns_per_item: 1.0,
        }
    }

    #[test]
    fn jump_baseline_gate_passes_and_fails_on_the_right_side() {
        let ok = [synthetic_row("jump", COMMITTED_JUMP_BASELINE * 0.95)];
        let ratio = check_jump_baseline(&ok, COMMITTED_JUMP_BASELINE, 0.10).unwrap();
        assert!((ratio - 0.95).abs() < 1e-9);
        let bad = [synthetic_row("jump", COMMITTED_JUMP_BASELINE * 0.85)];
        let msg = check_jump_baseline(&bad, COMMITTED_JUMP_BASELINE, 0.10).unwrap_err();
        assert!(msg.contains("regressed"), "{msg}");
        assert!(check_jump_baseline(&[], COMMITTED_JUMP_BASELINE, 0.10).is_err());
    }

    #[test]
    fn checkpoint_overhead_gate_compares_within_run() {
        let rows = [
            synthetic_row("jump", 700e6),
            synthetic_row("checkpoint", 420e6),
        ];
        let ratio = check_checkpoint_overhead(&rows, 0.5).unwrap();
        assert!((ratio - 0.6).abs() < 1e-9);
        let bad = [
            synthetic_row("jump", 700e6),
            synthetic_row("checkpoint", 120e6),
        ];
        assert!(check_checkpoint_overhead(&bad, 0.5).is_err());
    }

    #[test]
    fn emitted_summary_carries_all_four_gate_verdicts() {
        let cfg = ThroughputConfig::smoke();
        let rows = run_throughput(&cfg);
        let doc = rows_to_json(&cfg, &rows);
        let gates = doc.get("summary").unwrap().get("gates").unwrap();
        for name in [
            "facade_overhead",
            "jump_speedup",
            "jump_vs_committed_baseline",
            "checkpoint_overhead",
        ] {
            let gate = gates.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(
                matches!(gate.get("pass"), Some(Json::Bool(_))),
                "{name} lacks a pass flag"
            );
        }
    }

    #[test]
    fn schedules_are_deterministic_and_nonempty() {
        for regime in Regime::all() {
            let (batches, items) = gen_batches(regime, 12, 0);
            let (batches2, items2) = gen_batches(regime, 12, 0);
            assert_eq!(items, items2);
            assert_eq!(batches.len(), 12);
            assert_eq!(batches2.len(), 12);
            assert!(items > 0);
        }
    }

    #[test]
    fn ttbs_targets_are_feasible() {
        for regime in Regime::all() {
            // Constructing T-TBS panics on infeasible targets; this must not.
            let s: TTbs<u64> =
                TTbs::new(regime.lambda(), regime.ttbs_target(), regime.mean_batch());
            assert!(s.batch_acceptance() <= 1.0);
        }
    }

    #[test]
    fn json_document_has_rows_and_config() {
        let cfg = ThroughputConfig::smoke();
        let rows = vec![measure_one(
            &cfg,
            SamplerKind::BTbs,
            ApiPath::Fast,
            Regime::Saturated,
        )];
        let doc = rows_to_json(&cfg, &rows);
        crate::json::validate_bench_doc(&doc, "throughput", THROUGHPUT_ROW_KEYS).unwrap();
        let doc = doc.to_string();
        assert!(doc.contains("\"bench\":\"throughput\""));
        assert!(doc.contains("\"sampler\":\"B-TBS\""));
        assert!(doc.contains("\"items_per_sec\""));
    }
}
