//! Concurrent-serving baseline — the committed `BENCH_serving.json`.
//!
//! The serving layer's contract is that readers and ingest are decoupled:
//! any number of threads may poll epoch-published snapshots
//! ([`tbs_distributed::snapshot::EpochCell`], wrapped by the public
//! `temporal_sampling::api::SampleReader`) while the sharded pipeline
//! keeps ingesting and periodically publishes fresh epochs. This
//! experiment measures that mixed load: saturated ingest with 0/1/2/4/8
//! concurrent reader threads, snapshots requested every
//! [`ServingConfig::publish_every`] batches.
//!
//! ## Metrics and the acceptance gate
//!
//! Ingest is reported with the same two throughput metrics as the scaling
//! bench (`items_per_sec_wall`, and the hardware-independent
//! `items_per_sec_aggregate` = Σ_k items_k/busy_k — on the single-core CI
//! container wall-clock parallel speedup is physically impossible, so the
//! busy-time metric is the comparable signal). **Snapshot overhead is
//! charged to the shards**: the engine counts barrier forks inside the
//! busy spans, so the aggregate metric genuinely degrades if publication
//! is expensive. The headline gate: saturated R-TBS ingest capacity with
//! **4 concurrent readers** must stay within 10% of the committed
//! single-thread baseline of 265.1M items/s (`BENCH_throughput.json`,
//! PR 2). Readers cannot push it below by locking — `latest()` never
//! acquires anything the ingest path holds (the poll is an atomic epoch
//! load; an epoch *change* costs one refcount bump in the publication
//! slot, which only the merger thread writes) — so the gate effectively
//! bounds fork + scheduling overhead.
//!
//! Readers poll at a fixed cadence ([`ServingConfig::reader_poll_us`]
//! between polls) like a real serving tier re-checking for fresh models;
//! the *unthrottled* per-poll cost is measured separately by
//! [`poll_cost`] and reported under `poll_cost` (it bounds attainable
//! reader QPS: hundreds of thousands to millions of polls per second per
//! thread).

use crate::json::Json;
use crate::output::{f, print_table, write_csv};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tbs_core::merge::{MergeableSample, ShardSpec};
use tbs_core::{RTbs, TTbs};
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine, ShardStats};

use super::throughput::Regime;

/// The committed single-thread saturated R-TBS baseline (items/s) from
/// `BENCH_throughput.json` (PR 2) that the serving gate is judged
/// against.
pub const COMMITTED_BASELINE_ITEMS_PER_SEC: f64 = 265.1e6;

/// Minimum acceptable `ingest-under-4-readers / baseline` ratio.
pub const GATE_MIN_RATIO: f64 = 0.9;

/// Tuning knobs for one serving run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Batches fed inside each timed repeat.
    pub measured_batches: usize,
    /// Untimed batches fed first so every shard reaches steady state.
    pub warmup_batches: usize,
    /// Timed repeats; the best (highest-aggregate) is reported.
    pub repeats: usize,
    /// Base RNG seed; each combination derives its own engine seed.
    pub seed: u64,
    /// Concurrent reader-thread counts to sweep (0 = ingest-only
    /// reference).
    pub reader_counts: Vec<usize>,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// Batches between snapshot publications during the timed window.
    pub publish_every: usize,
    /// Microseconds a reader sleeps between polls (its serving cadence).
    pub reader_poll_us: u64,
    /// Iterations for the unthrottled poll-cost microbenchmark.
    pub poll_iters: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            measured_batches: 20_000,
            warmup_batches: 2_000,
            // 5 (vs the scaling bench's 3): mixed-load windows share the
            // core with reader and merger threads, so the best-of
            // estimator needs more shots at a low-interference window.
            repeats: 5,
            seed: 0x5E21_2018,
            reader_counts: vec![0, 1, 2, 4, 8],
            shard_counts: vec![1, 4],
            publish_every: 500,
            reader_poll_us: 500,
            poll_iters: 1_000_000,
        }
    }
}

impl ServingConfig {
    /// Tiny iteration counts for CI smoke runs: verifies the harness end
    /// to end in milliseconds without producing meaningful numbers.
    pub fn smoke() -> Self {
        Self {
            measured_batches: 40,
            warmup_batches: 20,
            repeats: 1,
            seed: 7,
            reader_counts: vec![0, 2],
            shard_counts: vec![1, 2],
            publish_every: 8,
            reader_poll_us: 50,
            poll_iters: 2_000,
        }
    }
}

/// One measured (sampler, shards, readers) mixed-load combination.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Sampler label (`R-TBS`, `T-TBS`).
    pub sampler: &'static str,
    /// Regime label (always `saturated` — the gate regime).
    pub regime: &'static str,
    /// Shard count K.
    pub shards: usize,
    /// Concurrent reader threads polling during the window.
    pub readers: usize,
    /// Batches fed inside the timed repeat.
    pub batches: usize,
    /// Items fed inside the timed repeat.
    pub items: u64,
    /// Wall-clock ns of the repeat (feed + publish + final epoch wait).
    pub wall_ns: u64,
    /// Total shard busy ns (observe calls **and** barrier forks).
    pub busy_ns: u64,
    /// Items per second by wall clock.
    pub items_per_sec_wall: f64,
    /// Aggregate ingest capacity Σ_k items_k/busy_k (items per second).
    pub items_per_sec_aggregate: f64,
    /// Mean busy ns per item across shards.
    pub ns_per_item_busy: f64,
    /// Epoch snapshots published inside the timed window.
    pub epochs_published: u64,
    /// Total reader polls completed inside the timed window.
    pub reader_polls: u64,
    /// Reader polls per second, summed over the reader threads.
    pub reader_qps: f64,
}

/// Generate `count` saturated-regime batches starting at step `t0`.
/// Shared with the wire-serving experiment so both mixed-load benches
/// feed byte-identical streams.
pub(crate) fn gen_batches(regime: Regime, count: usize, t0: usize) -> (Vec<Vec<u64>>, u64) {
    let mut items = 0u64;
    let mut out = Vec::with_capacity(count);
    for t in t0..t0 + count {
        let b = regime.batch_size(t);
        let base = t as u64 * 1_000_000;
        out.push((0..b as u64).map(|i| base + i).collect());
        items += b as u64;
    }
    (out, items)
}

pub(crate) fn stats_delta(before: &[ShardStats], after: &[ShardStats]) -> Vec<ShardStats> {
    before
        .iter()
        .zip(after)
        .map(|(b, a)| ShardStats {
            items: a.items - b.items,
            batches: a.batches - b.batches,
            busy_ns: a.busy_ns - b.busy_ns,
        })
        .collect()
}

/// Aggregate capacity Σ_k items_k/busy_k, in items per second.
pub(crate) fn aggregate_rate(deltas: &[ShardStats]) -> f64 {
    deltas
        .iter()
        .filter(|d| d.busy_ns > 0)
        .map(|d| d.items as f64 * 1e9 / d.busy_ns as f64)
        .sum()
}

/// Drive one engine through warmup plus `repeats` timed mixed-load
/// windows with `readers` polling threads; report the repeat with the
/// highest aggregate rate (minimum-interference estimator, as in the
/// scaling bench).
fn measure_mixed<S>(
    cfg: &ServingConfig,
    sampler: &'static str,
    spec: ShardSpec,
    readers: usize,
    seed: u64,
) -> ServingRow
where
    S: MergeableSample<Item = u64> + Clone + Send + 'static,
{
    let regime = Regime::Saturated;
    let mut engine: ParallelIngestEngine<S> =
        ParallelIngestEngine::new(EngineConfig::new(spec, seed));
    let (warm, _) = gen_batches(regime, cfg.warmup_batches, 0);
    for batch in warm {
        engine.ingest(batch).unwrap();
    }
    engine.quiesce().unwrap();

    // Reader threads: poll the epoch counter, pull the new snapshot when
    // one appeared (the SampleReader pattern), sleep out the serving
    // cadence. They run across all repeats; per-window polls are read
    // from the shared counter before/after each window.
    let stop = Arc::new(AtomicBool::new(false));
    let polls = Arc::new(AtomicU64::new(0));
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let cell = engine.snapshot_cell();
            let stop = Arc::clone(&stop);
            let polls = Arc::clone(&polls);
            let cadence = std::time::Duration::from_micros(cfg.reader_poll_us);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut held = None;
                let mut checksum = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let published = cell.published_epoch();
                    if published > seen {
                        held = cell.latest();
                        if let Some(frozen) = &held {
                            seen = frozen.epoch();
                            // Token consumption of the snapshot so the
                            // read is not optimized away.
                            checksum ^= frozen.len() as u64 ^ frozen.epoch();
                        }
                    }
                    polls.fetch_add(1, Ordering::Relaxed);
                    if !cadence.is_zero() {
                        std::thread::sleep(cadence);
                    }
                }
                drop(held);
                checksum
            })
        })
        .collect();

    let mut best: Option<ServingRow> = None;
    let mut t0 = cfg.warmup_batches;
    for _ in 0..cfg.repeats.max(1) {
        let (batches, items) = gen_batches(regime, cfg.measured_batches, t0);
        t0 += cfg.measured_batches;
        let before = engine.shard_stats();
        let polls_before = polls.load(Ordering::Relaxed);
        let epoch_before = engine.requested_epoch();
        let wall = Instant::now();
        let mut fed = 0usize;
        let mut last_epoch = 0u64;
        for batch in batches {
            engine.ingest(batch).unwrap();
            fed += 1;
            if fed.is_multiple_of(cfg.publish_every.max(1)) {
                last_epoch = engine.request_snapshot().unwrap();
            }
        }
        engine.quiesce().unwrap();
        if last_epoch > 0 {
            // The window is not over until its snapshots are served.
            engine
                .snapshot_cell()
                .wait_for_epoch(last_epoch)
                .expect("engine alive");
        }
        let wall_ns = (wall.elapsed().as_nanos() as u64).max(1);
        let polls_delta = polls.load(Ordering::Relaxed) - polls_before;
        let deltas = stats_delta(&before, &engine.shard_stats());
        let busy_ns: u64 = deltas.iter().map(|d| d.busy_ns).sum();
        let row = ServingRow {
            sampler,
            regime: regime.label(),
            shards: spec.shards,
            readers,
            batches: cfg.measured_batches,
            items,
            wall_ns,
            busy_ns,
            items_per_sec_wall: items as f64 * 1e9 / wall_ns as f64,
            items_per_sec_aggregate: aggregate_rate(&deltas),
            ns_per_item_busy: busy_ns as f64 / items.max(1) as f64,
            epochs_published: engine.requested_epoch() - epoch_before,
            reader_polls: polls_delta,
            reader_qps: polls_delta as f64 * 1e9 / wall_ns as f64,
        };
        if best
            .as_ref()
            .is_none_or(|b| row.items_per_sec_aggregate > b.items_per_sec_aggregate)
        {
            best = Some(row);
        }
    }
    stop.store(true, Ordering::Release);
    for handle in reader_handles {
        let _ = handle.join().expect("reader thread panicked");
    }
    best.expect("at least one repeat")
}

/// Unthrottled reader-path costs, measured single-threaded against a cell
/// with one publication: `(cached_poll_ns, load_latest_ns)` — the cost of
/// a poll that finds nothing new (one atomic load) and of actually
/// cloning the latest `Arc` out of the slot.
pub fn poll_cost(cfg: &ServingConfig) -> (f64, f64) {
    let spec = ShardSpec::rtbs(0.1, 1000, 1);
    let mut engine: ParallelIngestEngine<RTbs<u64>> =
        ParallelIngestEngine::new(EngineConfig::new(spec, cfg.seed));
    for t in 0..50u64 {
        engine
            .ingest((0..100).map(|i| t * 100 + i).collect())
            .unwrap();
    }
    let epoch = engine.request_snapshot().unwrap();
    let cell = engine.snapshot_cell();
    cell.wait_for_epoch(epoch).expect("published");

    let iters = cfg.poll_iters.max(1);
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(cell.published_epoch());
    }
    let cached_poll_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(cell.latest().map_or(0, |f| f.epoch()));
    }
    let load_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    assert!(sink != u64::MAX, "checksum sentinel");
    (cached_poll_ns, load_ns)
}

/// Run the full serving sweep: R-TBS saturated for every
/// (shards, readers) combination, plus T-TBS coverage rows at the
/// largest shard count with 0 and 4 readers.
pub fn run_serving(cfg: &ServingConfig) -> Vec<ServingRow> {
    let mut rows = Vec::new();
    let regime = Regime::Saturated;
    for &k in &cfg.shard_counts {
        for &r in &cfg.reader_counts {
            let spec = ShardSpec::rtbs(regime.lambda(), regime.capacity(), k);
            let seed = cfg.seed.wrapping_add(((k as u64) << 8) | r as u64);
            rows.push(measure_mixed::<RTbs<u64>>(cfg, "R-TBS", spec, r, seed));
        }
    }
    let k = cfg.shard_counts.iter().copied().max().unwrap_or(1);
    for r in [0usize, 4] {
        let spec = ShardSpec::ttbs(
            regime.lambda(),
            regime.ttbs_target(),
            regime.mean_batch(),
            k,
        );
        let seed = cfg.seed.wrapping_add(((k as u64) << 16) | r as u64);
        rows.push(measure_mixed::<TTbs<u64>>(cfg, "T-TBS", spec, r, seed));
    }
    rows
}

/// The acceptance-gate summary: saturated R-TBS aggregate ingest capacity
/// with 4 concurrent readers at the smallest shard count (comparable to
/// the single-thread baseline), as a ratio of the committed 265.1M
/// items/s.
fn summary(cfg: &ServingConfig, rows: &[ServingRow]) -> Json {
    let shards = cfg.shard_counts.iter().copied().min().unwrap_or(1);
    let gate_row = rows
        .iter()
        .find(|r| r.sampler == "R-TBS" && r.shards == shards && r.readers == 4);
    let (measured, ratio, pass) = match gate_row {
        Some(r) => {
            let ratio = r.items_per_sec_aggregate / COMMITTED_BASELINE_ITEMS_PER_SEC;
            (
                Json::Num(r.items_per_sec_aggregate),
                Json::Num(ratio),
                Json::Bool(ratio >= GATE_MIN_RATIO),
            )
        }
        // Sweeps without a 4-reader row (smoke) carry no gate verdict.
        None => (Json::Null, Json::Null, Json::Null),
    };
    Json::obj([
        (
            "gate",
            Json::obj([
                ("sampler", Json::str("R-TBS")),
                ("regime", Json::str("saturated")),
                ("shards", Json::Int(shards as i64)),
                ("readers", Json::Int(4)),
                ("ingest_items_per_sec_aggregate", measured),
                (
                    "baseline_items_per_sec",
                    Json::Num(COMMITTED_BASELINE_ITEMS_PER_SEC),
                ),
                ("min_ratio", Json::Num(GATE_MIN_RATIO)),
                ("ratio", ratio),
                ("pass", pass),
            ]),
        ),
        (
            "reader_nonblocking",
            Json::str(
                "latest() never acquires the ingest path's queues or locks: \
                 the poll is one atomic epoch load; pulling a new epoch is a \
                 refcount bump in the arc-swap publication slot",
            ),
        ),
    ])
}

/// Print the aligned console table and write the CSV under `results/`.
pub fn report(rows: &[ServingRow], poll: (f64, f64)) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sampler.to_string(),
                r.shards.to_string(),
                r.readers.to_string(),
                r.items.to_string(),
                f(r.items_per_sec_aggregate / 1e6, 2),
                f(r.items_per_sec_wall / 1e6, 2),
                r.epochs_published.to_string(),
                f(r.reader_qps, 0),
            ]
        })
        .collect();
    write_csv(
        "bench_serving.csv",
        &[
            "sampler",
            "shards",
            "readers",
            "items",
            "aggregate_M_items_per_sec",
            "wall_M_items_per_sec",
            "epochs_published",
            "reader_qps",
        ],
        &table,
    );
    print_table(
        "Mixed-load serving (saturated; best of repeats; aggregate = Σ shard items/busy)",
        &[
            "sampler",
            "shards",
            "readers",
            "items",
            "agg M it/s",
            "wall M it/s",
            "epochs",
            "reader qps",
        ],
        &table,
    );
    println!(
        "\nunthrottled reader path: cached poll {} ns, epoch-change load {} ns",
        f(poll.0, 1),
        f(poll.1, 1)
    );
}

/// Assemble the `BENCH_serving.json` document.
pub fn rows_to_json(cfg: &ServingConfig, rows: &[ServingRow], poll: (f64, f64)) -> Json {
    let regime = Regime::Saturated;
    let row_values = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("sampler", Json::str(r.sampler)),
                ("regime", Json::str(r.regime)),
                ("shards", Json::Int(r.shards as i64)),
                ("readers", Json::Int(r.readers as i64)),
                ("batches", Json::Int(r.batches as i64)),
                ("items", Json::UInt(r.items)),
                ("wall_ns", Json::UInt(r.wall_ns)),
                ("busy_ns", Json::UInt(r.busy_ns)),
                ("items_per_sec_wall", Json::Num(r.items_per_sec_wall)),
                (
                    "items_per_sec_aggregate",
                    Json::Num(r.items_per_sec_aggregate),
                ),
                ("ns_per_item_busy", Json::Num(r.ns_per_item_busy)),
                ("epochs_published", Json::UInt(r.epochs_published)),
                ("reader_polls", Json::UInt(r.reader_polls)),
                ("reader_qps", Json::Num(r.reader_qps)),
            ])
        })
        .collect();
    Json::obj([
        ("bench", Json::str("serving")),
        ("schema_version", Json::Int(1)),
        (
            "config",
            Json::obj([
                ("measured_batches", Json::Int(cfg.measured_batches as i64)),
                ("warmup_batches", Json::Int(cfg.warmup_batches as i64)),
                ("repeats", Json::Int(cfg.repeats as i64)),
                ("seed", Json::UInt(cfg.seed)),
                (
                    "reader_counts",
                    Json::Arr(
                        cfg.reader_counts
                            .iter()
                            .map(|&r| Json::Int(r as i64))
                            .collect(),
                    ),
                ),
                (
                    "shard_counts",
                    Json::Arr(
                        cfg.shard_counts
                            .iter()
                            .map(|&k| Json::Int(k as i64))
                            .collect(),
                    ),
                ),
                ("publish_every", Json::Int(cfg.publish_every as i64)),
                ("reader_poll_us", Json::UInt(cfg.reader_poll_us)),
                ("item_type", Json::str("u64")),
                (
                    "regime",
                    Json::obj([
                        ("name", Json::str(regime.label())),
                        ("capacity", Json::Int(regime.capacity() as i64)),
                        ("lambda", Json::Num(regime.lambda())),
                        ("mean_batch", Json::Num(regime.mean_batch())),
                    ]),
                ),
            ]),
        ),
        (
            "host",
            Json::obj([(
                "available_parallelism",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(0),
                ),
            )]),
        ),
        (
            "metrics",
            Json::obj([
                (
                    "items_per_sec_wall",
                    Json::str(
                        "items / wall-clock ns of feed + publish + final epoch wait \
                         (on a single-core host readers and merger time-share with \
                         ingest, so wall degrades with reader count by scheduling, \
                         not by locking)",
                    ),
                ),
                (
                    "items_per_sec_aggregate",
                    Json::str(
                        "Σ_k items_k/busy_k over shards; busy = time inside observe \
                         calls plus barrier forks, so snapshot overhead is charged \
                         to ingest (hardware-independent serving-capacity signal)",
                    ),
                ),
                (
                    "reader_qps",
                    Json::str(
                        "completed reader polls per second summed over reader \
                         threads, at the configured reader_poll_us cadence; see \
                         poll_cost for the unthrottled per-poll cost",
                    ),
                ),
            ]),
        ),
        ("rows", Json::Arr(row_values)),
        (
            "poll_cost",
            Json::obj([
                ("cached_poll_ns", Json::Num(poll.0)),
                ("load_latest_ns", Json::Num(poll.1)),
            ]),
        ),
        ("summary", summary(cfg, rows)),
    ])
}

/// Row keys (beyond the shared core) every serving row must carry; CI
/// validates the emitted JSON against this list.
pub const SERVING_ROW_KEYS: &[&str] = &[
    "shards",
    "readers",
    "wall_ns",
    "busy_ns",
    "items_per_sec_wall",
    "items_per_sec_aggregate",
    "ns_per_item_busy",
    "epochs_published",
    "reader_polls",
    "reader_qps",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_bench_doc;

    #[test]
    fn smoke_sweep_produces_valid_rows() {
        let cfg = ServingConfig::smoke();
        let rows = run_serving(&cfg);
        // R-TBS: shards × readers combinations; T-TBS: 2 coverage rows.
        assert_eq!(
            rows.len(),
            cfg.shard_counts.len() * cfg.reader_counts.len() + 2
        );
        for r in &rows {
            assert!(r.items > 0);
            assert!(r.items_per_sec_aggregate > 0.0);
            assert!(r.epochs_published > 0, "no snapshots published");
            if r.readers > 0 {
                assert!(r.reader_polls > 0, "readers never polled");
            } else {
                assert_eq!(r.reader_polls, 0);
            }
        }
        let doc = rows_to_json(&cfg, &rows, poll_cost(&cfg));
        validate_bench_doc(&doc, "serving", SERVING_ROW_KEYS).unwrap();
    }

    #[test]
    fn gate_summary_appears_when_a_four_reader_row_exists() {
        let cfg = ServingConfig {
            reader_counts: vec![0, 4],
            shard_counts: vec![1],
            ..ServingConfig::smoke()
        };
        let rows = run_serving(&cfg);
        let doc = rows_to_json(&cfg, &rows, (0.0, 0.0));
        let gate = doc.get("summary").unwrap().get("gate").unwrap();
        assert!(matches!(gate.get("ratio"), Some(Json::Num(_))));
        assert!(matches!(gate.get("pass"), Some(Json::Bool(_))));
    }

    #[test]
    fn poll_cost_is_positive_and_sane() {
        let (cached, load) = poll_cost(&ServingConfig::smoke());
        assert!(cached > 0.0 && load > 0.0);
        // A cached poll is at most an atomic load + loop overhead; if it
        // costs more than 10µs something is deeply wrong.
        assert!(cached < 10_000.0, "cached poll {cached} ns");
    }
}
