//! Wire-serving bench — the `wire` sub-document of `BENCH_serving.json`.
//!
//! PR 9 put the serving tier behind a framed-TCP protocol (`tbs-server`),
//! so "serving capacity" now has a second meaning: how fast can a remote
//! consumer actually pull samples over a socket, and how much does wire
//! traffic tax the ingest path? Two experiments answer that:
//!
//! 1. **GET_SAMPLE QPS sweep** (`regime = "wire_get_sample"`): a server
//!    holds one published epoch behind a [`CellService`]; 1/2/4 client
//!    connections hammer it with pipelined `GET_SAMPLE` bursts
//!    ([`BlockingClient::get_sample_pipelined`]) and we count answered
//!    requests per second. The pipelined burst is the honest protocol
//!    limit: it measures framing + codec + scheduling, not one
//!    round-trip latency per request.
//! 2. **Mixed wire load** (`regime = "wire_mixed"`): the serving bench's
//!    saturated single-shard ingest engine runs in-process while wire
//!    consumers long-poll `SUBSCRIBE_EPOCH` against a server fronting the
//!    engine's snapshot cell. The engine's busy-time aggregate ingest
//!    metric (identical to `bench_serving`'s headline metric) must stay
//!    within the committed baseline band even with the socket tier
//!    attached.
//!
//! ## Acceptance gates (full runs)
//!
//! * loopback `GET_SAMPLE` on **one** connection ≥
//!   [`GATE_MIN_QPS_PER_CONN`] (100k requests/s);
//! * mixed-load ingest aggregate ≥ [`GATE_MIN_RATIO`] (90%) of the
//!   **in-process reference measured back to back in the same run**
//!   (`regime = "inproc_mixed_ref"`: identical engine, identical
//!   windows, no wire tier). Dividing same-run measurements cancels
//!   host-speed variance — this VM's clock-for-clock throughput swings
//!   ±15% between sessions, which would make a gate against the
//!   committed absolute baseline flaky; the ratio against
//!   [`COMMITTED_BASELINE_ITEMS_PER_SEC`] is still recorded in the
//!   summary for context.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use tbs_core::{FrozenSample, RTbs};
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine};
use tbs_distributed::snapshot::EpochCell;
use tbs_server::client::BlockingClient;
use tbs_server::proto::EpochOutcome;
use tbs_server::server::serve_on;
use tbs_server::service::CellService;

use crate::json::Json;
use crate::output::{f, print_table, write_csv};

use super::serving::{
    aggregate_rate, gen_batches, stats_delta, COMMITTED_BASELINE_ITEMS_PER_SEC, GATE_MIN_RATIO,
};
use super::throughput::Regime;
use tbs_core::merge::ShardSpec;

/// Minimum acceptable single-connection pipelined `GET_SAMPLE` rate on
/// loopback (requests per second).
pub const GATE_MIN_QPS_PER_CONN: f64 = 100_000.0;

/// Tuning knobs for one wire-serving run.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Items in the published sample the QPS sweep serves (each reply
    /// carries this payload, so QPS is measured under realistic frames).
    pub sample_items: usize,
    /// Pipelined `GET_SAMPLE` requests each connection issues per repeat.
    pub requests_per_conn: usize,
    /// Requests per pipelined burst (frames written before draining).
    pub pipeline_depth: usize,
    /// Concurrent-connection counts to sweep.
    pub conn_counts: Vec<usize>,
    /// Timed repeats of the QPS sweep; the best (highest-QPS) is kept.
    pub qps_repeats: usize,
    /// Base RNG seed for the mixed-load engine.
    pub seed: u64,
    /// Batches fed inside each timed mixed-load repeat.
    pub mixed_batches: usize,
    /// Untimed warmup batches before the mixed-load windows.
    pub mixed_warmup: usize,
    /// Timed mixed-load repeats; the best (highest-aggregate) is kept.
    pub mixed_repeats: usize,
    /// Batches between snapshot publications in the mixed window.
    pub publish_every: usize,
    /// Wire consumers long-polling `SUBSCRIBE_EPOCH` during the mixed
    /// window.
    pub pollers: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            sample_items: 64,
            requests_per_conn: 20_000,
            pipeline_depth: 64,
            conn_counts: vec![1, 2, 4],
            qps_repeats: 3,
            seed: 0x517E_2018,
            mixed_batches: 50_000,
            mixed_warmup: 2_000,
            // 5, matching the in-process serving bench: mixed windows
            // share the core with the server thread and pollers, so the
            // best-of estimator needs several shots.
            mixed_repeats: 5,
            // Coarser than the in-process bench's 500: an in-process
            // reader costs one atomic load per publication, but a wire
            // delivery costs a cross-thread wake storm (server task +
            // client round trip per poller). At 500 the single core
            // publishes every ~400µs and the storms dominate the
            // window; 2500 (~2ms apart, 20 publications per window) is
            // still far faster than any real model-publication cadence
            // while keeping the measurement about ingest, not context
            // switches.
            publish_every: 2_500,
            pollers: 4,
        }
    }
}

impl WireConfig {
    /// Tiny counts for CI smoke runs: exercises both experiments end to
    /// end in well under a second without producing meaningful numbers.
    pub fn smoke() -> Self {
        Self {
            sample_items: 16,
            requests_per_conn: 256,
            pipeline_depth: 32,
            conn_counts: vec![1, 2],
            qps_repeats: 1,
            seed: 7,
            mixed_batches: 40,
            mixed_warmup: 20,
            mixed_repeats: 1,
            publish_every: 8,
            pollers: 2,
        }
    }
}

/// One measured wire row — either a QPS-sweep connection count or the
/// mixed-load combination.
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Sampler label (`R-TBS` — both experiments serve R-TBS samples).
    pub sampler: &'static str,
    /// `wire_get_sample` (QPS sweep), `inproc_mixed_ref` (mixed-load
    /// reference without the wire tier), or `wire_mixed`.
    pub regime: &'static str,
    /// Batches the served sample reflects (sweep) or batches ingested
    /// inside the timed window (mixed).
    pub batches: usize,
    /// Payload items shipped over the wire (sweep) or items ingested
    /// (mixed).
    pub items: u64,
    /// Concurrent client connections.
    pub conns: usize,
    /// Wire requests answered inside the timed window (`GET_SAMPLE`
    /// replies, or epoch publications delivered to long-pollers).
    pub requests: u64,
    /// Wall-clock ns of the timed window.
    pub wall_ns: u64,
    /// Answered requests per second across all connections.
    pub qps_total: f64,
    /// `qps_total / conns`.
    pub qps_per_conn: f64,
    /// Sweep rows: payload items per second over the wire. Mixed row:
    /// the engine's busy-time aggregate ingest capacity (the gate
    /// metric, directly comparable to `bench_serving`'s).
    pub items_per_sec_aggregate: f64,
}

/// Sweep pipelined `GET_SAMPLE` over `conns` concurrent connections
/// against a cell server holding one published `sample_items`-item epoch;
/// report the best repeat.
fn measure_qps(cfg: &WireConfig, conns: usize) -> WireRow {
    let cell = Arc::new(EpochCell::new());
    let payload: Vec<u64> = (0..cfg.sample_items as u64).collect();
    let n_payload = payload.len();
    cell.publish(Arc::new(FrozenSample::new(
        1,
        1,
        None,
        n_payload as f64,
        payload,
    )));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = serve_on(listener, CellService::new(Arc::clone(&cell)), None).expect("serve");
    let addr = server.addr();

    let mut best: Option<WireRow> = None;
    for _ in 0..cfg.qps_repeats.max(1) {
        // Connect and ping untimed so the window measures steady-state
        // request service, not connection setup.
        let barrier = Arc::new(Barrier::new(conns + 1));
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let requests = cfg.requests_per_conn;
                let depth = cfg.pipeline_depth.max(1);
                std::thread::spawn(move || {
                    let mut client: BlockingClient<u64> =
                        BlockingClient::connect(addr).expect("connect");
                    client.ping().expect("ping");
                    barrier.wait();
                    let mut done = 0usize;
                    while done < requests {
                        let n = depth.min(requests - done);
                        let got = client.get_sample_pipelined(n).expect("pipelined burst");
                        assert_eq!(got, n, "non-sample reply in the burst");
                        done += n;
                    }
                    done as u64
                })
            })
            .collect();
        barrier.wait();
        let wall = Instant::now();
        let answered: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum();
        let wall_ns = (wall.elapsed().as_nanos() as u64).max(1);
        let qps_total = answered as f64 * 1e9 / wall_ns as f64;
        let row = WireRow {
            sampler: "R-TBS",
            regime: "wire_get_sample",
            batches: 1,
            items: answered * n_payload as u64,
            conns,
            requests: answered,
            wall_ns,
            qps_total,
            qps_per_conn: qps_total / conns.max(1) as f64,
            items_per_sec_aggregate: qps_total * n_payload as f64,
        };
        if best.as_ref().is_none_or(|b| row.qps_total > b.qps_total) {
            best = Some(row);
        }
    }
    server.join().expect("server exits");
    best.expect("at least one repeat")
}

/// One mixed-load measurement rig: a warmed saturated single-shard
/// engine, optionally fronted by a cell server with `pollers` wire
/// consumers long-polling `SUBSCRIBE_EPOCH`.
///
/// With `pollers == 0` no server is started at all — that rig is the
/// in-process reference the wire gate divides by. The reference and wire
/// rigs run their timed windows **interleaved** (see
/// [`measure_mixed_pair`]): this single-core VM's clock-for-clock speed
/// drifts several percent over seconds, so sequential blocks would fold
/// host drift into the ratio, while alternating windows exposes both
/// rigs to the same conditions.
struct MixedRig {
    engine: ParallelIngestEngine<RTbs<u64>>,
    server: Option<tbs_server::server::ServerHandle>,
    pollers: usize,
    stop: Arc<AtomicBool>,
    delivered: Arc<AtomicU64>,
    poller_handles: Vec<std::thread::JoinHandle<u64>>,
    /// Batch-generation step counter, advanced window by window.
    t0: usize,
}

impl MixedRig {
    fn new(cfg: &WireConfig, pollers: usize) -> Self {
        let regime = Regime::Saturated;
        let spec = ShardSpec::rtbs(regime.lambda(), regime.capacity(), 1);
        let mut engine: ParallelIngestEngine<RTbs<u64>> =
            ParallelIngestEngine::new(EngineConfig::new(spec, cfg.seed));
        let (warm, _) = gen_batches(regime, cfg.mixed_warmup, 0);
        for batch in warm {
            engine.ingest(batch).unwrap();
        }
        engine.quiesce().unwrap();

        let server = if pollers > 0 {
            Some(
                serve_on(
                    TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
                    CellService::new(engine.snapshot_cell()),
                    None,
                )
                .expect("serve"),
            )
        } else {
            None
        };

        // Wire pollers: long-poll the next epoch with a short deadline
        // so the stop flag is re-checked in bounded time, exactly like a
        // serving tier following model publications across the network.
        let stop = Arc::new(AtomicBool::new(false));
        let delivered = Arc::new(AtomicU64::new(0));
        let poller_handles: Vec<_> = (0..pollers)
            .map(|_| {
                let addr = server.as_ref().expect("server for pollers").addr();
                let stop = Arc::clone(&stop);
                let delivered = Arc::clone(&delivered);
                std::thread::spawn(move || {
                    let mut client: BlockingClient<u64> =
                        BlockingClient::connect(addr).expect("poller connects");
                    let mut next = 1u64;
                    let mut checksum = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        match client.subscribe_epoch(next, Some(Duration::from_millis(100))) {
                            Ok((EpochOutcome::Published, epoch, batches)) => {
                                delivered.fetch_add(1, Ordering::Relaxed);
                                checksum ^= epoch ^ batches;
                                next = epoch + 1;
                            }
                            Ok((EpochOutcome::TimedOut, _, _)) => {}
                            Ok((EpochOutcome::PublisherGone, _, _)) | Err(_) => break,
                        }
                    }
                    checksum
                })
            })
            .collect();

        Self {
            engine,
            server,
            pollers,
            stop,
            delivered,
            poller_handles,
            t0: cfg.mixed_warmup,
        }
    }

    /// Drive one timed mixed-load window and return its row.
    fn window(&mut self, cfg: &WireConfig) -> WireRow {
        let regime = Regime::Saturated;
        let (batches, items) = gen_batches(regime, cfg.mixed_batches, self.t0);
        self.t0 += cfg.mixed_batches;
        let before = self.engine.shard_stats();
        let delivered_before = self.delivered.load(Ordering::Relaxed);
        let wall = Instant::now();
        let mut fed = 0usize;
        let mut last_epoch = 0u64;
        for batch in batches {
            self.engine.ingest(batch).unwrap();
            fed += 1;
            if fed.is_multiple_of(cfg.publish_every.max(1)) {
                last_epoch = self.engine.request_snapshot().unwrap();
            }
        }
        self.engine.quiesce().unwrap();
        if last_epoch > 0 {
            self.engine
                .snapshot_cell()
                .wait_for_epoch(last_epoch)
                .expect("engine alive");
        }
        let wall_ns = (wall.elapsed().as_nanos() as u64).max(1);
        // The in-process wait above only proves the cell published; the
        // wire delivery still needs a server round trip. Drain briefly
        // so the delivered count reflects this window's publications
        // (excluded from wall_ns — ingest stopped at the wait).
        if last_epoch > 0 && self.pollers > 0 {
            let deadline = Instant::now() + Duration::from_millis(500);
            while self.delivered.load(Ordering::Relaxed) == delivered_before
                && Instant::now() < deadline
            {
                std::thread::yield_now();
            }
        }
        let served = self.delivered.load(Ordering::Relaxed) - delivered_before;
        let deltas = stats_delta(&before, &self.engine.shard_stats());
        let qps_total = served as f64 * 1e9 / wall_ns as f64;
        WireRow {
            sampler: "R-TBS",
            regime: if self.pollers > 0 {
                "wire_mixed"
            } else {
                "inproc_mixed_ref"
            },
            batches: cfg.mixed_batches,
            items,
            conns: self.pollers,
            requests: served,
            wall_ns,
            qps_total,
            qps_per_conn: qps_total / self.pollers.max(1) as f64,
            items_per_sec_aggregate: aggregate_rate(&deltas),
        }
    }

    fn finish(self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.poller_handles {
            let _ = handle.join().expect("poller thread panicked");
        }
        if let Some(server) = self.server {
            server.join().expect("server exits");
        }
    }
}

/// Measure the in-process reference and the wire-load run with their
/// timed windows interleaved (ref, wire, ref, wire, …), reporting the
/// best (highest-aggregate) window of each — the same
/// minimum-interference estimator as the in-process serving bench, with
/// host drift shared across both sides of the gate ratio.
fn measure_mixed_pair(cfg: &WireConfig) -> (WireRow, WireRow) {
    let mut reference = MixedRig::new(cfg, 0);
    let mut wire = MixedRig::new(cfg, cfg.pollers);
    let mut best_ref: Option<WireRow> = None;
    let mut best_wire: Option<WireRow> = None;
    for _ in 0..cfg.mixed_repeats.max(1) {
        let r = reference.window(cfg);
        if best_ref
            .as_ref()
            .is_none_or(|b| r.items_per_sec_aggregate > b.items_per_sec_aggregate)
        {
            best_ref = Some(r);
        }
        let w = wire.window(cfg);
        if best_wire
            .as_ref()
            .is_none_or(|b| w.items_per_sec_aggregate > b.items_per_sec_aggregate)
        {
            best_wire = Some(w);
        }
    }
    reference.finish();
    wire.finish();
    (
        best_ref.expect("at least one repeat"),
        best_wire.expect("at least one repeat"),
    )
}

/// Run the wire sweep: one `GET_SAMPLE` QPS row per connection count,
/// then the interleaved in-process-reference / mixed-wire-load pair.
pub fn run_wire(cfg: &WireConfig) -> Vec<WireRow> {
    let mut rows = Vec::new();
    for &conns in &cfg.conn_counts {
        rows.push(measure_qps(cfg, conns));
    }
    let (reference, wire) = measure_mixed_pair(cfg);
    rows.push(reference);
    rows.push(wire);
    rows
}

/// The two wire acceptance gates, as a summary object.
fn summary(rows: &[WireRow]) -> Json {
    let qps_row = rows
        .iter()
        .find(|r| r.regime == "wire_get_sample" && r.conns == 1);
    let (qps, qps_pass) = match qps_row {
        Some(r) => (
            Json::Num(r.qps_per_conn),
            Json::Bool(r.qps_per_conn >= GATE_MIN_QPS_PER_CONN),
        ),
        None => (Json::Null, Json::Null),
    };
    let mixed_row = rows.iter().find(|r| r.regime == "wire_mixed");
    let ref_row = rows.iter().find(|r| r.regime == "inproc_mixed_ref");
    let (agg, ref_agg, ratio, committed_ratio, mixed_pass) = match (mixed_row, ref_row) {
        (Some(w), Some(r)) => {
            // Gate on wire/in-process measured back to back: host speed
            // cancels out, leaving exactly the wire tier's ingest tax.
            // The committed-baseline ratio is recorded for context but
            // conflates wire overhead with run-to-run host variance.
            let ratio = w.items_per_sec_aggregate / r.items_per_sec_aggregate;
            (
                Json::Num(w.items_per_sec_aggregate),
                Json::Num(r.items_per_sec_aggregate),
                Json::Num(ratio),
                Json::Num(w.items_per_sec_aggregate / COMMITTED_BASELINE_ITEMS_PER_SEC),
                Json::Bool(ratio >= GATE_MIN_RATIO),
            )
        }
        _ => (Json::Null, Json::Null, Json::Null, Json::Null, Json::Null),
    };
    Json::obj([
        (
            "get_sample_gate",
            Json::obj([
                ("conns", Json::Int(1)),
                ("qps_per_conn", qps),
                ("min_qps_per_conn", Json::Num(GATE_MIN_QPS_PER_CONN)),
                ("pass", qps_pass),
            ]),
        ),
        (
            "mixed_gate",
            Json::obj([
                ("sampler", Json::str("R-TBS")),
                ("regime", Json::str("wire_mixed")),
                ("ingest_items_per_sec_aggregate", agg),
                ("inproc_ref_items_per_sec_aggregate", ref_agg),
                ("min_ratio", Json::Num(GATE_MIN_RATIO)),
                ("ratio", ratio),
                (
                    "committed_baseline_items_per_sec",
                    Json::Num(COMMITTED_BASELINE_ITEMS_PER_SEC),
                ),
                ("ratio_vs_committed_baseline", committed_ratio),
                ("pass", mixed_pass),
            ]),
        ),
    ])
}

/// Print the aligned console table and write the CSV under `results/`.
pub fn report(rows: &[WireRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.regime.to_string(),
                r.conns.to_string(),
                r.requests.to_string(),
                f(r.qps_total, 0),
                f(r.qps_per_conn, 0),
                f(r.items_per_sec_aggregate / 1e6, 2),
            ]
        })
        .collect();
    write_csv(
        "bench_serving_wire.csv",
        &[
            "regime",
            "conns",
            "requests",
            "qps_total",
            "qps_per_conn",
            "aggregate_M_per_sec",
        ],
        &table,
    );
    print_table(
        "Wire serving (framed TCP on loopback; best of repeats)",
        &[
            "regime",
            "conns",
            "requests",
            "qps total",
            "qps/conn",
            "agg M/s",
        ],
        &table,
    );
}

/// Assemble the `wire` sub-document nested inside `BENCH_serving.json`.
pub fn rows_to_json(cfg: &WireConfig, rows: &[WireRow]) -> Json {
    let row_values = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("sampler", Json::str(r.sampler)),
                ("regime", Json::str(r.regime)),
                ("batches", Json::Int(r.batches as i64)),
                ("items", Json::UInt(r.items)),
                ("conns", Json::Int(r.conns as i64)),
                ("requests", Json::UInt(r.requests)),
                ("wall_ns", Json::UInt(r.wall_ns)),
                ("qps_total", Json::Num(r.qps_total)),
                ("qps_per_conn", Json::Num(r.qps_per_conn)),
                (
                    "items_per_sec_aggregate",
                    Json::Num(r.items_per_sec_aggregate),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("bench", Json::str("serving_wire")),
        ("schema_version", Json::Int(1)),
        (
            "config",
            Json::obj([
                ("sample_items", Json::Int(cfg.sample_items as i64)),
                ("requests_per_conn", Json::Int(cfg.requests_per_conn as i64)),
                ("pipeline_depth", Json::Int(cfg.pipeline_depth as i64)),
                (
                    "conn_counts",
                    Json::Arr(
                        cfg.conn_counts
                            .iter()
                            .map(|&c| Json::Int(c as i64))
                            .collect(),
                    ),
                ),
                ("qps_repeats", Json::Int(cfg.qps_repeats as i64)),
                ("seed", Json::UInt(cfg.seed)),
                ("mixed_batches", Json::Int(cfg.mixed_batches as i64)),
                ("mixed_warmup", Json::Int(cfg.mixed_warmup as i64)),
                ("mixed_repeats", Json::Int(cfg.mixed_repeats as i64)),
                ("publish_every", Json::Int(cfg.publish_every as i64)),
                ("pollers", Json::Int(cfg.pollers as i64)),
                ("item_type", Json::str("u64")),
            ]),
        ),
        (
            "metrics",
            Json::obj([
                (
                    "qps_total",
                    Json::str(
                        "wire requests answered per second across all connections: \
                         pipelined GET_SAMPLE replies for the sweep rows, epoch \
                         publications delivered to SUBSCRIBE_EPOCH long-pollers \
                         for the mixed row",
                    ),
                ),
                (
                    "items_per_sec_aggregate",
                    Json::str(
                        "sweep rows: payload items shipped over the wire per \
                         second; mixed row: the engine's Σ_k items_k/busy_k \
                         ingest capacity with the wire tier attached — \
                         directly comparable to the serving bench's headline \
                         metric and judged against the same baseline",
                    ),
                ),
            ]),
        ),
        ("rows", Json::Arr(row_values)),
        ("summary", summary(rows)),
    ])
}

/// Row keys (beyond the shared core) every wire row must carry.
pub const WIRE_ROW_KEYS: &[&str] = &[
    "conns",
    "requests",
    "wall_ns",
    "qps_total",
    "qps_per_conn",
    "items_per_sec_aggregate",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_bench_doc;

    #[test]
    fn smoke_sweep_produces_valid_rows() {
        let cfg = WireConfig::smoke();
        let rows = run_wire(&cfg);
        assert_eq!(rows.len(), cfg.conn_counts.len() + 2);
        for r in &rows {
            // The in-process reference has no wire tier, so no requests.
            if r.regime != "inproc_mixed_ref" {
                assert!(r.requests > 0, "{}: no requests answered", r.regime);
                assert!(r.qps_total > 0.0);
            }
            assert!(r.items_per_sec_aggregate > 0.0);
        }
        let sweep: Vec<_> = rows
            .iter()
            .filter(|r| r.regime == "wire_get_sample")
            .collect();
        for (r, &conns) in sweep.iter().zip(&cfg.conn_counts) {
            assert_eq!(r.conns, conns);
            assert_eq!(
                r.requests,
                (cfg.requests_per_conn * conns) as u64,
                "every pipelined request must be answered"
            );
        }
        let mixed = rows
            .iter()
            .find(|r| r.regime == "wire_mixed")
            .expect("mixed row");
        assert!(mixed.items > 0);
        let reference = rows
            .iter()
            .find(|r| r.regime == "inproc_mixed_ref")
            .expect("reference row");
        assert_eq!(reference.conns, 0);
        assert_eq!(reference.items, mixed.items, "identical windows");
        let doc = rows_to_json(&cfg, &rows);
        validate_bench_doc(&doc, "serving_wire", WIRE_ROW_KEYS).unwrap();
    }

    /// Manual probe for the wire tier's mixed-load tax at full sizes:
    /// `cargo test -p tbs-bench --release mixed_tax_probe --
    /// --ignored --nocapture`.
    #[test]
    #[ignore = "manual perf probe, not a correctness test"]
    fn mixed_tax_probe() {
        let cfg = WireConfig::default();
        for round in 0..3 {
            let (reference, wire) = measure_mixed_pair(&cfg);
            println!(
                "round {round}: inproc ref {:.1}M it/s | wire ({} pollers) {:.1}M it/s | \
                 ratio {:.3} | {} deliveries",
                reference.items_per_sec_aggregate / 1e6,
                cfg.pollers,
                wire.items_per_sec_aggregate / 1e6,
                wire.items_per_sec_aggregate / reference.items_per_sec_aggregate,
                wire.requests,
            );
        }
    }

    #[test]
    fn summary_carries_both_gates() {
        let cfg = WireConfig::smoke();
        let rows = vec![
            WireRow {
                sampler: "R-TBS",
                regime: "wire_get_sample",
                batches: 1,
                items: 64,
                conns: 1,
                requests: 4,
                wall_ns: 10,
                qps_total: 2e5,
                qps_per_conn: 2e5,
                items_per_sec_aggregate: 1.0,
            },
            WireRow {
                sampler: "R-TBS",
                regime: "inproc_mixed_ref",
                batches: 4,
                items: 400,
                conns: 0,
                requests: 0,
                wall_ns: 10,
                qps_total: 0.0,
                qps_per_conn: 0.0,
                items_per_sec_aggregate: 200e6,
            },
            WireRow {
                sampler: "R-TBS",
                regime: "wire_mixed",
                batches: 4,
                items: 400,
                conns: 2,
                requests: 2,
                wall_ns: 10,
                qps_total: 1.0,
                qps_per_conn: 0.5,
                items_per_sec_aggregate: 190e6,
            },
        ];
        let doc = rows_to_json(&cfg, &rows);
        let s = doc.get("summary").unwrap();
        assert_eq!(
            s.get("get_sample_gate").unwrap().get("pass"),
            Some(&Json::Bool(true))
        );
        let mixed = s.get("mixed_gate").unwrap();
        assert_eq!(mixed.get("pass"), Some(&Json::Bool(true)));
        // 190/200 = 0.95 against the same-run reference; the committed
        // ratio is context only and must not decide the verdict.
        assert!(matches!(mixed.get("ratio"), Some(Json::Num(x)) if (*x - 0.95).abs() < 1e-12));
        assert!(matches!(
            mixed.get("ratio_vs_committed_baseline"),
            Some(Json::Num(_))
        ));
    }
}
