//! Figure 1 — T-TBS vs R-TBS sample-size behaviour under four batch-size
//! regimes: growing (a), stable deterministic (b), stable uniform (c),
//! decaying (d).

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::{RTbs, TTbs};
use tbs_datagen::BatchSizeProcess;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// One panel of Figure 1.
pub struct Panel {
    /// Panel tag ("a".."d").
    pub tag: &'static str,
    /// Panel description.
    pub title: &'static str,
    /// Decay rate λ.
    pub lambda: f64,
    /// Target/maximum sample size n.
    pub n: usize,
    /// The batch-size regime.
    pub batch: BatchSizeProcess,
}

/// The paper's four panels.
pub fn panels() -> Vec<Panel> {
    vec![
        Panel {
            tag: "a",
            title: "Growing Batch Size (phi=1.002 from t=200), lambda=0.05",
            lambda: 0.05,
            n: 1000,
            batch: BatchSizeProcess::growing(100, 1.002, 200),
        },
        Panel {
            tag: "b",
            title: "Stable Batch Size (deterministic 100), lambda=0.1",
            lambda: 0.1,
            n: 1000,
            batch: BatchSizeProcess::Deterministic(100),
        },
        Panel {
            tag: "c",
            title: "Stable Batch Size (Uniform[0,200]), lambda=0.1",
            lambda: 0.1,
            n: 1000,
            batch: BatchSizeProcess::UniformRandom { lo: 0, hi: 200 },
        },
        Panel {
            tag: "d",
            title: "Decaying Batch Size (phi=0.8 from t=200), lambda=0.01",
            lambda: 0.01,
            n: 1000,
            batch: BatchSizeProcess::decaying(100, 0.8, 200),
        },
    ]
}

/// Per-panel trajectories.
pub struct PanelResult {
    /// Panel tag.
    pub tag: &'static str,
    /// T-TBS sample size per batch.
    pub ttbs: Vec<f64>,
    /// R-TBS sample weight per batch.
    pub rtbs: Vec<f64>,
}

/// Simulate one panel for `batches` steps.
pub fn run_panel(panel: &Panel, batches: u64, seed: u64) -> PanelResult {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    // T-TBS is tuned assuming the *initial* mean batch size of 100 — the
    // whole point of the figure is what happens when reality drifts.
    let mut ttbs: TTbs<u8> = TTbs::new(panel.lambda, panel.n, 100.0);
    let mut rtbs: RTbs<u8> = RTbs::new(panel.lambda, panel.n);
    let mut t_series = Vec::with_capacity(batches as usize);
    let mut r_series = Vec::with_capacity(batches as usize);
    for t in 0..batches {
        let size = panel.batch.size_at(t, &mut rng) as usize;
        ttbs.observe(vec![0u8; size], &mut rng);
        rtbs.observe(vec![0u8; size], &mut rng);
        t_series.push(ttbs.len() as f64);
        r_series.push(rtbs.sample_weight());
    }
    PanelResult {
        tag: panel.tag,
        ttbs: t_series,
        rtbs: r_series,
    }
}

/// Run all four panels, write CSVs, print checkpoint tables.
pub fn run(batches: u64, seed: u64) -> Vec<PanelResult> {
    let mut results = Vec::new();
    for panel in panels() {
        let res = run_panel(&panel, batches, seed);
        let rows: Vec<Vec<String>> = (0..res.ttbs.len())
            .map(|i| vec![i.to_string(), f(res.ttbs[i], 1), f(res.rtbs[i], 1)])
            .collect();
        write_csv(
            &format!("fig1{}_sample_size.csv", panel.tag),
            &["batch", "ttbs_size", "rtbs_size"],
            &rows,
        );

        let checkpoints = [0usize, 100, 200, 400, 600, 800, 999];
        let table: Vec<Vec<String>> = checkpoints
            .iter()
            .filter(|&&c| c < res.ttbs.len())
            .map(|&c| vec![c.to_string(), f(res.ttbs[c], 0), f(res.rtbs[c], 0)])
            .collect();
        print_table(
            &format!("Figure 1({}) — {}", panel.tag, panel.title),
            &["batch", "T-TBS", "R-TBS"],
            &table,
        );
        let t_max = res.ttbs.iter().cloned().fold(0.0, f64::max);
        let r_max = res.rtbs.iter().cloned().fold(0.0, f64::max);
        println!(
            "max sample size: T-TBS {t_max:.0}, R-TBS {r_max:.0} (bound n={})",
            panel.n
        );
        results.push(res);
    }
    results
}
