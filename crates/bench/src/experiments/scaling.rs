//! Multi-core scaling baseline for the sharded parallel ingest engine —
//! the committed `BENCH_scaling.json` every PR is judged against.
//!
//! PR 2 established the single-core baseline (`BENCH_throughput.json`);
//! this experiment establishes the *parallel* one: aggregate ingest
//! capacity of [`tbs_distributed::engine::ParallelIngestEngine`] at
//! 1–64 shards over the saturated and bursty stream regimes,
//! for R-TBS and T-TBS, plus a same-run single-threaded fast-path
//! reference row (the PR 2 measurement repeated, so the pipeline overhead
//! is read off one document). R-TBS rows run with the tail-flattening
//! knobs on: batch-granular downsampling (`rtbs_defer_threshold`) and
//! shard groups (per-regime `rtbs_group_threshold_*`), so each row
//! reports both its worker count K and its cell count G ≤ K.
//!
//! Each engine row also records the merge-tree depth (`⌈log₂G⌉`) and the
//! per-cell busy-time fractions, so load imbalance — the thing the
//! balanced splitter plus work stealing exist to kill — is visible in the
//! committed artifact. The acceptance gate
//! ([`GATE_K8_FLOOR_ITEMS_PER_SEC`]) pins the 8-shard-cliff fix and the
//! flattened K = 32 tail: the saturated R-TBS aggregate at K = 8 must
//! clear twice the committed pre-fix row, K = 16 must not regress below
//! K = 8, and K = 32 must not regress below K = 16.
//!
//! ## The two throughput metrics
//!
//! * **`items_per_sec_wall`** — items fed divided by wall-clock time of
//!   the driver loop (feed + quiesce). On a host with ≥ K free cores this
//!   is the end-to-end parallel throughput.
//! * **`items_per_sec_aggregate`** — `Σ_k items_k / busy_k` over the
//!   shards, where `busy_k` is shard *k*'s time inside `observe` calls
//!   (queue waits excluded). This measures the engine's ingest
//!   *capacity* — what the shards sustain while scheduled — and is the
//!   hardware-independent scaling signal: on a single-core host (like the
//!   container that produced the committed baseline, see `host` in the
//!   JSON) wall-clock parallel speedup is physically impossible, while
//!   per-shard busy time still exposes whether the pipeline adds overhead
//!   per shard. On a multi-core host the two metrics converge.
//!
//! The sweep also times `WorkerPool` job dispatch — persistent pool vs
//! the pre-PR-3 per-batch `thread::spawn` — quantifying the D-R-TBS
//! per-batch overhead drop (`pool_dispatch` rows).

use crate::experiments::throughput::{measure_one, ApiPath, Regime, SamplerKind, ThroughputConfig};
use crate::json::Json;
use crate::output::{f, print_table, write_csv};
use std::time::Instant;
use tbs_core::merge::{MergePlan, MergeableSample, ShardSpec};
use tbs_core::{RTbs, TTbs};
use tbs_distributed::cluster::WorkerPool;
use tbs_distributed::engine::{EngineConfig, ParallelIngestEngine, ShardStats};

/// Acceptance floor for the saturated R-TBS aggregate rate at K = 8:
/// twice the committed pre-fix 267.7M items/s row, i.e. the 8-shard
/// cliff must be at least halved-back. The rest of the gate is
/// relative: the K = 16 aggregate must not fall below K = 8, and K = 32
/// — where every shard's reservoir share sits just above its
/// equilibrium weight, pinning the pre-fix engine in the eager per-step
/// downsample — must not fall below K = 16 (the flattened-tail gate:
/// batch-granular downsampling plus shard groups).
pub const GATE_K8_FLOOR_ITEMS_PER_SEC: f64 = 535.4e6;

/// Tuning knobs for one scaling run.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Batches fed inside each timed repeat.
    pub measured_batches: usize,
    /// Untimed batches fed first so every shard reaches steady state
    /// (reservoirs saturate, queues and recycled buffers hit high water).
    pub warmup_batches: usize,
    /// Timed repeats; the best (highest-aggregate) is reported.
    pub repeats: usize,
    /// Base RNG seed; each combination derives its own engine seed.
    pub seed: u64,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// Iterations for the pool-dispatch comparison (persistent pool).
    pub dispatch_iters: usize,
    /// Iterations for the pool-dispatch comparison (spawn-per-batch —
    /// fewer, because each iteration pays k thread spawns).
    pub spawn_iters: usize,
    /// Deferred-downsampling drift threshold θ applied to every R-TBS
    /// engine row (1.0 = eager). At high K the per-shard reservoir sits
    /// below saturation, and without deferral every batch pays the full
    /// `O(n_k)` downsample sweep — the K = 32 tail.
    pub rtbs_defer_threshold: f64,
    /// Shard-group threshold for the saturated R-TBS rows (0 =
    /// ungrouped): once `⌈n/G⌉` drops below it, worker threads share
    /// fewer reservoir cells so per-batch fixed costs scale with G, not
    /// K. The right threshold is workload-dependent — group when the
    /// per-cell share of a *batch* is too small to amortize the per-cell
    /// fixed costs. The saturated stream delivers 100 items/batch
    /// against n = 1000, so cells below a ~48-item share (K ≥ 32) see
    /// ~3 items/batch each and are better shared.
    pub rtbs_group_threshold_saturated: usize,
    /// Shard-group threshold for the bursty R-TBS rows. Bursty batches
    /// run up to ~1000 items, so even a 32-item cell share still
    /// receives enough arrivals per batch to amortize its fixed costs —
    /// grouping at K = 32 would *forfeit* real scaling there (ungrouped
    /// K = 32 clears K = 16 by ~30% aggregate). Only K = 64's 16-item
    /// share drops below this threshold.
    pub rtbs_group_threshold_bursty: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            measured_batches: 20_000,
            warmup_batches: 2_000,
            repeats: 3,
            seed: 0x5CA1_2018,
            shard_counts: vec![1, 2, 4, 8, 16, 32, 64],
            dispatch_iters: 2_000,
            spawn_iters: 300,
            rtbs_defer_threshold: 0.01,
            rtbs_group_threshold_saturated: 48,
            rtbs_group_threshold_bursty: 24,
        }
    }
}

impl ScalingConfig {
    /// Tiny iteration counts for CI smoke runs: verifies the harness end
    /// to end in milliseconds without producing meaningful numbers.
    pub fn smoke() -> Self {
        Self {
            measured_batches: 40,
            warmup_batches: 20,
            repeats: 1,
            seed: 7,
            shard_counts: vec![1, 2],
            dispatch_iters: 20,
            spawn_iters: 5,
            rtbs_defer_threshold: 0.01,
            rtbs_group_threshold_saturated: 48,
            rtbs_group_threshold_bursty: 24,
        }
    }

    /// The shard-group threshold for an R-TBS row in `regime` (see the
    /// two per-regime fields for why this is workload-dependent).
    pub fn rtbs_group_threshold(&self, regime: Regime) -> usize {
        match regime {
            Regime::Bursty => self.rtbs_group_threshold_bursty,
            _ => self.rtbs_group_threshold_saturated,
        }
    }
}

/// One measured (sampler, mode, shards, regime) combination.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Sampler label (`R-TBS`, `T-TBS`).
    pub sampler: &'static str,
    /// `engine` (sharded pipeline) or `single_fast` (PR 2's
    /// single-threaded monomorphized reference, measured in this run).
    pub mode: &'static str,
    /// Shard count K — configured worker threads (1 for `single_fast`).
    pub shards: usize,
    /// Logical reservoir cells G ≤ K the workers drive (== K unless
    /// shard groups are active; 1 for `single_fast`). Busy fractions,
    /// the merge tree, and the per-cell stats are all sized by this.
    pub cells: usize,
    /// Regime label (`saturated`, `bursty`).
    pub regime: &'static str,
    /// Batches fed inside the timed repeat.
    pub batches: usize,
    /// Items fed inside the timed repeat.
    pub items: u64,
    /// Wall-clock nanoseconds of the reported repeat (feed + quiesce).
    pub wall_ns: u64,
    /// Total shard busy nanoseconds (Σ_k busy_k) of the reported repeat.
    pub busy_ns: u64,
    /// Items per second by wall clock.
    pub items_per_sec_wall: f64,
    /// Aggregate capacity: Σ_k items_k/busy_k (items per second).
    pub items_per_sec_aggregate: f64,
    /// Mean busy nanoseconds per item across shards.
    pub ns_per_item_busy: f64,
    /// Depth of the pairwise merge tree the engine runs for this K
    /// (`⌈log₂K⌉`; 0 for K = 1 and for the `single_fast` reference).
    pub merge_tree_depth: usize,
    /// Each cell's share of the total busy time (`busy_g / Σ busy`,
    /// sums to 1, one entry per cell). Balanced splits plus work
    /// stealing should keep these near `1/G`; a hot cell shows up here
    /// directly.
    pub shard_busy_fracs: Vec<f64>,
}

/// One pool-dispatch comparison row: per-batch cost of running `workers`
/// jobs through the given execution mode.
#[derive(Debug, Clone)]
pub struct PoolDispatchRow {
    /// Jobs per batch (= simulated worker count).
    pub workers: usize,
    /// `spawn_per_batch` (pre-PR-3: one `thread::spawn` per job per
    /// batch) or `persistent_pool` (cached threads, condvar dispatch).
    pub mode: &'static str,
    /// Timed iterations.
    pub iters: usize,
    /// Mean nanoseconds per batch of `workers` jobs.
    pub per_batch_ns: f64,
}

/// Generate `count` batches of the regime's schedule starting at step
/// `t0`; returns the batches and the total item count.
fn gen_batches(regime: Regime, count: usize, t0: usize) -> (Vec<Vec<u64>>, u64) {
    let mut items = 0u64;
    let mut out = Vec::with_capacity(count);
    for t in t0..t0 + count {
        let b = regime.batch_size(t);
        let base = t as u64 * 1_000_000;
        out.push((0..b as u64).map(|i| base + i).collect());
        items += b as u64;
    }
    (out, items)
}

fn stats_delta(before: &[ShardStats], after: &[ShardStats]) -> Vec<ShardStats> {
    before
        .iter()
        .zip(after)
        .map(|(b, a)| ShardStats {
            items: a.items - b.items,
            batches: a.batches - b.batches,
            busy_ns: a.busy_ns - b.busy_ns,
        })
        .collect()
}

/// Aggregate capacity Σ_k items_k/busy_k, in items per second.
fn aggregate_rate(deltas: &[ShardStats]) -> f64 {
    deltas
        .iter()
        .filter(|d| d.busy_ns > 0)
        .map(|d| d.items as f64 * 1e9 / d.busy_ns as f64)
        .sum()
}

/// Drive one engine through warmup plus `repeats` timed windows; report
/// the repeat with the highest aggregate rate (minimum-interference
/// estimator, mirroring the throughput bench's fastest-repeat rule).
///
/// One engine is built per row and **reused across every repeat**: the
/// warmup's steady state (saturated reservoirs, high-water queues,
/// recycled buffers) carries into each timed window instead of being
/// re-paid per repeat, and the per-cell stats are windowed by delta.
/// The CI smoke schema check pins the resulting row count.
fn measure_engine<S>(
    cfg: &ScalingConfig,
    sampler: &'static str,
    spec: ShardSpec,
    regime: Regime,
    seed: u64,
) -> ScalingRow
where
    S: MergeableSample<Item = u64> + Clone + Send + 'static,
{
    let mut engine: ParallelIngestEngine<S> =
        ParallelIngestEngine::new(EngineConfig::new(spec, seed));
    let (warm, _) = gen_batches(regime, cfg.warmup_batches, 0);
    for batch in warm {
        engine.ingest(batch).unwrap();
    }
    engine.quiesce().unwrap();

    let mut best: Option<ScalingRow> = None;
    let mut t0 = cfg.warmup_batches;
    for _ in 0..cfg.repeats.max(1) {
        let (batches, items) = gen_batches(regime, cfg.measured_batches, t0);
        t0 += cfg.measured_batches;
        let before = engine.shard_stats();
        let wall = Instant::now();
        for batch in batches {
            engine.ingest(batch).unwrap();
        }
        engine.quiesce().unwrap();
        let wall_ns = (wall.elapsed().as_nanos() as u64).max(1);
        let deltas = stats_delta(&before, &engine.shard_stats());
        let busy_ns: u64 = deltas.iter().map(|d| d.busy_ns).sum();
        let aggregate = aggregate_rate(&deltas);
        let shard_busy_fracs = deltas
            .iter()
            .map(|d| d.busy_ns as f64 / (busy_ns.max(1)) as f64)
            .collect();
        let row = ScalingRow {
            sampler,
            mode: "engine",
            shards: spec.shards,
            cells: spec.cells(),
            regime: regime.label(),
            batches: cfg.measured_batches,
            items,
            wall_ns,
            busy_ns,
            items_per_sec_wall: items as f64 * 1e9 / wall_ns as f64,
            items_per_sec_aggregate: aggregate,
            ns_per_item_busy: busy_ns as f64 / (items.max(1)) as f64,
            merge_tree_depth: MergePlan::new(spec.cells()).depth(),
            shard_busy_fracs,
        };
        if best
            .as_ref()
            .is_none_or(|b| row.items_per_sec_aggregate > b.items_per_sec_aggregate)
        {
            best = Some(row);
        }
    }
    best.expect("at least one repeat")
}

/// Single-threaded fast-path reference (the PR 2 measurement, repeated in
/// this run so engine overhead is judged against the same machine state).
fn measure_single_fast(cfg: &ScalingConfig, kind: SamplerKind, regime: Regime) -> ScalingRow {
    let tcfg = ThroughputConfig {
        measured_batches: cfg.measured_batches,
        warmup_batches: cfg.warmup_batches,
        repeats: cfg.repeats,
        seed: cfg.seed,
    };
    let row = measure_one(&tcfg, kind, ApiPath::Fast, regime);
    ScalingRow {
        sampler: row.sampler,
        mode: "single_fast",
        shards: 1,
        cells: 1,
        regime: row.regime,
        batches: row.batches,
        items: row.items,
        wall_ns: row.elapsed_ns,
        busy_ns: row.elapsed_ns,
        items_per_sec_wall: row.items_per_sec,
        items_per_sec_aggregate: row.items_per_sec,
        ns_per_item_busy: row.ns_per_item,
        merge_tree_depth: 0,
        shard_busy_fracs: vec![1.0],
    }
}

/// Time `iters` batches of `workers` jobs through `run`, returning mean
/// nanoseconds per batch. Each job does a token amount of work (a short
/// checksum) so dispatch is measured against a realistic non-empty job.
fn time_dispatch(workers: usize, iters: usize, mut run: impl FnMut(usize) -> u64) -> f64 {
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        sink = sink.wrapping_add(run(workers));
    }
    let total = start.elapsed().as_nanos() as f64;
    // Keep the checksum observable so the work is not optimized away.
    assert!(sink != u64::MAX, "checksum sentinel");
    total / iters.max(1) as f64
}

fn dispatch_job(j: usize) -> u64 {
    (0..64u64).fold(j as u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
}

/// Compare per-batch job dispatch: pre-PR-3 spawn-per-batch vs the
/// persistent `WorkerPool`.
pub fn run_pool_dispatch(cfg: &ScalingConfig) -> Vec<PoolDispatchRow> {
    let mut rows = Vec::new();
    for &workers in &[2usize, 4, 8] {
        let spawn_ns = time_dispatch(workers, cfg.spawn_iters, |k| {
            // The pre-PR-3 WorkerPool::run body: one scoped OS thread per
            // job, joined before the batch completes.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..k)
                    .map(|j| scope.spawn(move || dispatch_job(j)))
                    .collect();
                handles
                    .into_iter()
                    .fold(0u64, |acc, h| acc.wrapping_add(h.join().unwrap()))
            })
        });
        rows.push(PoolDispatchRow {
            workers,
            mode: "spawn_per_batch",
            iters: cfg.spawn_iters,
            per_batch_ns: spawn_ns,
        });
        let pool = WorkerPool::threaded();
        // Warm the thread cache so the measurement sees steady state.
        pool.run(
            (0..workers)
                .map(|j| move || dispatch_job(j))
                .collect::<Vec<_>>(),
        );
        let pool_ns = time_dispatch(workers, cfg.dispatch_iters, |k| {
            pool.run((0..k).map(|j| move || dispatch_job(j)).collect::<Vec<_>>())
                .into_iter()
                .fold(0u64, u64::wrapping_add)
        });
        rows.push(PoolDispatchRow {
            workers,
            mode: "persistent_pool",
            iters: cfg.dispatch_iters,
            per_batch_ns: pool_ns,
        });
    }
    rows
}

/// Run the full scaling sweep: engine rows for every
/// (sampler, shard count, regime) plus single-threaded reference rows.
pub fn run_scaling(cfg: &ScalingConfig) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for regime in [Regime::Saturated, Regime::Bursty] {
        rows.push(measure_single_fast(cfg, SamplerKind::RTbs, regime));
        for &k in &cfg.shard_counts {
            // R-TBS rows carry the tail-flattening knobs: lazy θ makes
            // the unsaturated per-shard regime at high K O(1)-amortized
            // per batch, and the group threshold collapses K workers
            // onto G < K cells once the per-cell share gets small
            // relative to the regime's per-batch arrivals (per-regime
            // thresholds — see the `ScalingConfig` field docs).
            let spec = ShardSpec::rtbs(regime.lambda(), regime.capacity(), k)
                .with_defer_threshold(cfg.rtbs_defer_threshold)
                .with_group_threshold(cfg.rtbs_group_threshold(regime));
            let seed = cfg.seed.wrapping_add((k as u64) << 8 | regime as u64);
            rows.push(measure_engine::<RTbs<u64>>(
                cfg, "R-TBS", spec, regime, seed,
            ));
        }
        rows.push(measure_single_fast(cfg, SamplerKind::TTbs, regime));
        for &k in &cfg.shard_counts {
            let spec = ShardSpec::ttbs(
                regime.lambda(),
                regime.ttbs_target(),
                regime.mean_batch(),
                k,
            );
            let seed = cfg.seed.wrapping_add((k as u64) << 16 | regime as u64);
            rows.push(measure_engine::<TTbs<u64>>(
                cfg, "T-TBS", spec, regime, seed,
            ));
        }
    }
    rows
}

/// The acceptance-relevant summary figures, if the sweep contains them.
fn summary(rows: &[ScalingRow]) -> Json {
    let find = |mode: &str, shards: usize| {
        rows.iter().find(|r| {
            r.sampler == "R-TBS" && r.regime == "saturated" && r.mode == mode && r.shards == shards
        })
    };
    let one = find("engine", 1);
    let four = find("engine", 4);
    let single = find("single_fast", 1);
    let ratio = |a: Option<&ScalingRow>, b: Option<&ScalingRow>| match (a, b) {
        (Some(a), Some(b)) if b.items_per_sec_aggregate > 0.0 => {
            Json::Num(a.items_per_sec_aggregate / b.items_per_sec_aggregate)
        }
        _ => Json::Null,
    };
    // The scaling gate: the saturated R-TBS aggregate at K = 8 must
    // clear twice the committed pre-fix row (the 8-shard-cliff fix),
    // K = 16 must not regress below K = 8, and K = 32 must not regress
    // below K = 16 (the flattened-tail fix: batch-granular downsampling
    // plus shard groups). Sweeps without all three rows (smoke) carry
    // no verdict.
    let eight = find("engine", 8);
    let sixteen = find("engine", 16);
    let thirty_two = find("engine", 32);
    let gate = match (eight, sixteen, thirty_two) {
        (Some(e8), Some(e16), Some(e32)) => {
            let pass = e8.items_per_sec_aggregate >= GATE_K8_FLOOR_ITEMS_PER_SEC
                && e16.items_per_sec_aggregate >= e8.items_per_sec_aggregate
                && e32.items_per_sec_aggregate >= e16.items_per_sec_aggregate;
            Json::obj([
                ("sampler", Json::str("R-TBS")),
                ("regime", Json::str("saturated")),
                (
                    "k8_items_per_sec_aggregate",
                    Json::Num(e8.items_per_sec_aggregate),
                ),
                (
                    "k16_items_per_sec_aggregate",
                    Json::Num(e16.items_per_sec_aggregate),
                ),
                (
                    "k32_items_per_sec_aggregate",
                    Json::Num(e32.items_per_sec_aggregate),
                ),
                (
                    "k8_floor_items_per_sec",
                    Json::Num(GATE_K8_FLOOR_ITEMS_PER_SEC),
                ),
                ("pass", Json::Bool(pass)),
            ])
        }
        _ => Json::Null,
    };
    Json::obj([
        // Aggregate saturated R-TBS capacity at 4 shards over the 1-shard
        // engine, same run.
        ("saturated_rtbs_speedup_4x_vs_1x", ratio(four, one)),
        // 1-shard engine over the single-threaded fast path: the
        // pipeline's own overhead (1.0 = none).
        ("one_shard_engine_vs_single_fast", ratio(one, single)),
        ("gate", gate),
    ])
}

/// Print the aligned console tables and write the CSVs under `results/`.
pub fn report(rows: &[ScalingRow], pool: &[PoolDispatchRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sampler.to_string(),
                r.mode.to_string(),
                r.shards.to_string(),
                r.cells.to_string(),
                r.regime.to_string(),
                r.items.to_string(),
                f(r.items_per_sec_aggregate / 1e6, 2),
                f(r.items_per_sec_wall / 1e6, 2),
                f(r.ns_per_item_busy, 2),
                r.merge_tree_depth.to_string(),
                f(r.shard_busy_fracs.iter().copied().fold(0.0, f64::max), 3),
            ]
        })
        .collect();
    write_csv(
        "bench_scaling.csv",
        &[
            "sampler",
            "mode",
            "shards",
            "cells",
            "regime",
            "items",
            "aggregate_M_items_per_sec",
            "wall_M_items_per_sec",
            "busy_ns_per_item",
            "merge_tree_depth",
            "max_shard_busy_frac",
        ],
        &table,
    );
    print_table(
        "Sharded ingest scaling (best of repeats; aggregate = Σ shard items/busy)",
        &[
            "sampler",
            "mode",
            "shards",
            "cells",
            "regime",
            "items",
            "agg M it/s",
            "wall M it/s",
            "busy ns/it",
            "depth",
            "max busy frac",
        ],
        &table,
    );

    let pool_table: Vec<Vec<String>> = pool
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.mode.to_string(),
                r.iters.to_string(),
                f(r.per_batch_ns / 1e3, 2),
            ]
        })
        .collect();
    write_csv(
        "bench_pool_dispatch.csv",
        &["workers", "mode", "iters", "per_batch_us"],
        &pool_table,
    );
    print_table(
        "WorkerPool dispatch: per-batch cost of k jobs (µs)",
        &["workers", "mode", "iters", "per-batch µs"],
        &pool_table,
    );
}

/// Assemble the `BENCH_scaling.json` document.
pub fn rows_to_json(cfg: &ScalingConfig, rows: &[ScalingRow], pool: &[PoolDispatchRow]) -> Json {
    let regimes = [Regime::Saturated, Regime::Bursty]
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.label())),
                ("capacity", Json::Int(r.capacity() as i64)),
                ("lambda", Json::Num(r.lambda())),
                ("mean_batch", Json::Num(r.mean_batch())),
            ])
        })
        .collect();
    let row_values = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("sampler", Json::str(r.sampler)),
                ("mode", Json::str(r.mode)),
                ("shards", Json::Int(r.shards as i64)),
                ("cells", Json::Int(r.cells as i64)),
                ("regime", Json::str(r.regime)),
                ("batches", Json::Int(r.batches as i64)),
                ("items", Json::UInt(r.items)),
                ("wall_ns", Json::UInt(r.wall_ns)),
                ("busy_ns", Json::UInt(r.busy_ns)),
                ("items_per_sec_wall", Json::Num(r.items_per_sec_wall)),
                (
                    "items_per_sec_aggregate",
                    Json::Num(r.items_per_sec_aggregate),
                ),
                ("ns_per_item_busy", Json::Num(r.ns_per_item_busy)),
                ("merge_tree_depth", Json::Int(r.merge_tree_depth as i64)),
                (
                    "shard_busy_fracs",
                    Json::Arr(r.shard_busy_fracs.iter().map(|&x| Json::Num(x)).collect()),
                ),
            ])
        })
        .collect();
    let pool_values = pool
        .iter()
        .map(|r| {
            Json::obj([
                ("workers", Json::Int(r.workers as i64)),
                ("mode", Json::str(r.mode)),
                ("iters", Json::Int(r.iters as i64)),
                ("per_batch_ns", Json::Num(r.per_batch_ns)),
            ])
        })
        .collect();
    Json::obj([
        ("bench", Json::str("scaling")),
        ("schema_version", Json::Int(1)),
        (
            "config",
            Json::obj([
                ("measured_batches", Json::Int(cfg.measured_batches as i64)),
                ("warmup_batches", Json::Int(cfg.warmup_batches as i64)),
                ("repeats", Json::Int(cfg.repeats as i64)),
                ("seed", Json::UInt(cfg.seed)),
                (
                    "shard_counts",
                    Json::Arr(
                        cfg.shard_counts
                            .iter()
                            .map(|&k| Json::Int(k as i64))
                            .collect(),
                    ),
                ),
                ("item_type", Json::str("u64")),
                ("rtbs_defer_threshold", Json::Num(cfg.rtbs_defer_threshold)),
                (
                    "rtbs_group_threshold_saturated",
                    Json::Int(cfg.rtbs_group_threshold_saturated as i64),
                ),
                (
                    "rtbs_group_threshold_bursty",
                    Json::Int(cfg.rtbs_group_threshold_bursty as i64),
                ),
                ("regimes", Json::Arr(regimes)),
            ]),
        ),
        (
            "host",
            Json::obj([(
                "available_parallelism",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(0),
                ),
            )]),
        ),
        (
            "metrics",
            Json::obj([
                (
                    "items_per_sec_wall",
                    Json::str("items / wall-clock ns of the driver feed+quiesce loop"),
                ),
                (
                    "items_per_sec_aggregate",
                    Json::str(
                        "Σ_k items_k/busy_k over shards; busy = time inside observe \
                         (hardware-independent engine capacity — equals wall rate on a \
                         host with ≥ K free cores)",
                    ),
                ),
            ]),
        ),
        ("rows", Json::Arr(row_values)),
        ("pool_dispatch", Json::Arr(pool_values)),
        ("summary", summary(rows)),
    ])
}

/// Row keys (beyond the shared core) every scaling row must carry; CI
/// validates the emitted JSON against this list.
pub const SCALING_ROW_KEYS: &[&str] = &[
    "mode",
    "shards",
    "cells",
    "wall_ns",
    "busy_ns",
    "items_per_sec_wall",
    "items_per_sec_aggregate",
    "ns_per_item_busy",
    "merge_tree_depth",
    "shard_busy_fracs",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_bench_doc;

    #[test]
    fn smoke_sweep_produces_valid_rows() {
        let cfg = ScalingConfig::smoke();
        let rows = run_scaling(&cfg);
        // Per regime: 2 reference rows + |shard_counts| rows per sampler.
        assert_eq!(rows.len(), 2 * (2 + 2 * cfg.shard_counts.len()));
        for r in &rows {
            assert!(
                r.items > 0,
                "{}/{}/{} fed no items",
                r.sampler,
                r.mode,
                r.regime
            );
            assert!(r.items_per_sec_wall > 0.0);
            assert!(r.items_per_sec_aggregate > 0.0);
            if r.mode == "engine" {
                assert!(r.cells <= r.shards && r.cells >= 1);
                assert_eq!(
                    r.merge_tree_depth,
                    (r.cells as f64).log2().ceil() as usize,
                    "depth must be ⌈log₂G⌉ for G={}",
                    r.cells
                );
                assert_eq!(r.shard_busy_fracs.len(), r.cells);
                let sum: f64 = r.shard_busy_fracs.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "busy fractions must sum to 1, got {sum}"
                );
            }
        }
        let pool = run_pool_dispatch(&cfg);
        assert_eq!(pool.len(), 6);
        let doc = rows_to_json(&cfg, &rows, &pool);
        validate_bench_doc(&doc, "scaling", SCALING_ROW_KEYS).unwrap();
    }

    #[test]
    fn engine_stats_cover_all_items() {
        // The aggregate metric is only meaningful if the shard counters
        // account for every item fed during the window.
        let cfg = ScalingConfig::smoke();
        let spec = ShardSpec::rtbs(0.1, 1000, 2);
        let row = measure_engine::<RTbs<u64>>(&cfg, "R-TBS", spec, Regime::Saturated, 1);
        assert_eq!(row.items, (cfg.measured_batches * 100) as u64);
        assert!(row.busy_ns > 0);
    }

    #[test]
    fn summary_reports_ratios_when_rows_present() {
        let cfg = ScalingConfig {
            shard_counts: vec![1, 4],
            ..ScalingConfig::smoke()
        };
        let rows = run_scaling(&cfg);
        let doc = rows_to_json(&cfg, &rows, &[]);
        let s = doc.get("summary").unwrap();
        assert!(matches!(
            s.get("saturated_rtbs_speedup_4x_vs_1x"),
            Some(Json::Num(_))
        ));
        assert!(matches!(
            s.get("one_shard_engine_vs_single_fast"),
            Some(Json::Num(_))
        ));
        // No K=8/K=16/K=32 rows in this sweep ⇒ no gate verdict.
        assert_eq!(s.get("gate"), Some(&Json::Null));
    }

    #[test]
    fn gate_requires_k8_floor_and_monotone_high_k() {
        let row = |shards: usize, agg: f64| ScalingRow {
            sampler: "R-TBS",
            mode: "engine",
            shards,
            cells: shards,
            regime: "saturated",
            batches: 1,
            items: 1,
            wall_ns: 1,
            busy_ns: 1,
            items_per_sec_wall: agg,
            items_per_sec_aggregate: agg,
            ns_per_item_busy: 1.0,
            merge_tree_depth: (shards as f64).log2().ceil() as usize,
            shard_busy_fracs: vec![1.0 / shards as f64; shards],
        };
        let verdict = |k8: f64, k16: f64, k32: f64| {
            summary(&[row(8, k8), row(16, k16), row(32, k32)])
                .get("gate")
                .and_then(|g| g.get("pass"))
                .cloned()
        };
        let floor = GATE_K8_FLOOR_ITEMS_PER_SEC;
        assert_eq!(verdict(floor, floor, floor), Some(Json::Bool(true)));
        assert_eq!(
            verdict(floor - 1.0, floor, floor),
            Some(Json::Bool(false)),
            "K=8 below the floor must fail"
        );
        assert_eq!(
            verdict(floor + 2.0, floor + 1.0, floor + 1.0),
            Some(Json::Bool(false)),
            "K=16 regressing below K=8 must fail"
        );
        assert_eq!(
            verdict(floor, floor + 2.0, floor + 1.0),
            Some(Json::Bool(false)),
            "K=32 regressing below K=16 must fail"
        );
        // A K=8/K=16-only sweep (the pre-K-32 artifact shape) carries no
        // verdict rather than a stale pass.
        assert_eq!(
            summary(&[row(8, floor), row(16, floor)])
                .get("gate")
                .cloned(),
            Some(Json::Null)
        );
    }
}
