//! Extension experiment: forward decay (the paper's §8 roadmap).
//!
//! Compares retention curves — the empirical probability that an item of
//! age `a` is still in the sample — for backward exponential R-TBS vs
//! forward-decay R-TBS with a polynomial gauge. Exponential decay forgets
//! geometrically; polynomial decay keeps a heavy tail of old items while
//! still favouring recent ones, all under the same hard sample-size bound.

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::forward::{ExponentialGauge, ForwardDecayRTbs, PolynomialGauge};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Empirical retention probability by age for both gauges.
pub struct RetentionCurves {
    /// Ages (in batches) at which retention was measured.
    pub ages: Vec<u64>,
    /// Exponential-gauge retention per age.
    pub exponential: Vec<f64>,
    /// Polynomial-gauge retention per age.
    pub polynomial: Vec<f64>,
}

/// Measure retention curves over `trials` independent streams of
/// `horizon` batches of `batch` items, capacity `n`.
pub fn measure(trials: usize, horizon: u64, batch: u64, n: usize, seed: u64) -> RetentionCurves {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let ages: Vec<u64> = (0..horizon).step_by(8).collect();
    let mut exp_hits = vec![0u64; ages.len()];
    let mut poly_hits = vec![0u64; ages.len()];
    for _ in 0..trials {
        let mut expo = ForwardDecayRTbs::new(ExponentialGauge { lambda: 0.15 }, n);
        let mut poly = ForwardDecayRTbs::new(PolynomialGauge { beta: 2.0 }, n);
        for t in 0..horizon {
            let items: Vec<u64> = vec![t; batch as usize];
            expo.observe(items.clone(), &mut rng);
            poly.observe(items, &mut rng);
        }
        let count = |sample: &[u64], hits: &mut [u64]| {
            for item in sample {
                let age = horizon - 1 - item;
                if let Some(pos) = ages.iter().position(|&a| a == age) {
                    hits[pos] += 1;
                }
            }
        };
        count(&expo.sample(&mut rng), &mut exp_hits);
        count(&poly.sample(&mut rng), &mut poly_hits);
    }
    let denom = (trials as f64) * batch as f64;
    RetentionCurves {
        exponential: exp_hits.iter().map(|&h| h as f64 / denom).collect(),
        polynomial: poly_hits.iter().map(|&h| h as f64 / denom).collect(),
        ages,
    }
}

/// Run with reporting.
pub fn run_and_report(trials: usize) -> RetentionCurves {
    let curves = measure(trials, 64, 10, 80, 31_337);
    let rows: Vec<Vec<String>> = curves
        .ages
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            vec![
                a.to_string(),
                f(curves.exponential[i], 3),
                f(curves.polynomial[i], 3),
            ]
        })
        .collect();
    write_csv(
        "forward_decay_retention.csv",
        &["age", "exponential_gauge", "polynomial_gauge"],
        &rows,
    );
    print_table(
        "Extension — retention by age: exponential vs polynomial forward decay \
         (n=80, b=10, lambda=0.15 / beta=2)",
        &["age", "exp gauge", "poly gauge"],
        &rows,
    );
    println!(
        "polynomial decay keeps a heavy tail of old items under the same hard \
         bound — the arbitrary-decay generalization the paper's §8 proposes."
    );
    curves
}
