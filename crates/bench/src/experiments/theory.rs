//! Theorem 3.1 / Remark 1 verification — simulated T-TBS sample-size
//! moments against the closed forms, and the R-TBS unsaturated
//! equilibrium against `b/(1 − e^{−λ})`.

use crate::output::{f, print_table, write_csv};
use rand::SeedableRng;
use tbs_core::theory;
use tbs_core::{RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;
use tbs_stats::summary::OnlineMoments;

/// Transient mean check: `E[C_t] = n + p^t (C0 − n)`.
pub fn transient_mean(lambda: f64, n: usize, b: u64, trials: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let horizon = 40u64;
    let mut sums = vec![0.0f64; horizon as usize];
    for _ in 0..trials {
        let mut s: TTbs<u8> = TTbs::new(lambda, n, b as f64);
        for t in 0..horizon {
            s.observe(vec![0u8; b as usize], &mut rng);
            sums[t as usize] += s.len() as f64;
        }
    }
    (0..horizon)
        .step_by(5)
        .map(|t| {
            let simulated = sums[t as usize] / trials as f64;
            let predicted = theory::ttbs_expected_size(n as f64, 0.0, lambda, t + 1);
            vec![
                (t + 1).to_string(),
                f(simulated, 1),
                f(predicted, 1),
                f(
                    (simulated - predicted).abs() / predicted.max(1.0) * 100.0,
                    2,
                ),
            ]
        })
        .collect()
}

/// Stationary variance check against equation (10).
pub fn stationary_variance(lambda: f64, n: usize, b: u64, rounds: usize, seed: u64) -> (f64, f64) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut s: TTbs<u8> = TTbs::new(lambda, n, b as f64);
    // Warm past the transient.
    for _ in 0..300 {
        s.observe(vec![0u8; b as usize], &mut rng);
    }
    let mut acc = OnlineMoments::new();
    for _ in 0..rounds {
        s.observe(vec![0u8; b as usize], &mut rng);
        acc.push(s.len() as f64);
    }
    let predicted = theory::ttbs_stationary_variance(n as f64, lambda, b as f64, 0.0);
    (acc.variance(), predicted)
}

/// R-TBS unsaturated equilibrium check (the 1479 result).
pub fn rtbs_equilibrium(lambda: f64, n: usize, b: u64, seed: u64) -> (f64, f64) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut s: RTbs<u8> = RTbs::new(lambda, n);
    for _ in 0..500 {
        s.observe(vec![0u8; b as usize], &mut rng);
    }
    (
        s.sample_weight(),
        theory::equilibrium_weight(b as f64, lambda),
    )
}

/// Run all theory checks with reporting.
pub fn run_and_report(trials: usize) {
    let rows = transient_mean(0.1, 500, 100, trials, 555);
    write_csv(
        "theory_ttbs_transient_mean.csv",
        &["t", "simulated", "predicted", "rel_err_pct"],
        &rows,
    );
    print_table(
        "Theorem 3.1(ii) — T-TBS transient mean E[C_t] (lambda=0.1, n=500, b=100)",
        &["t", "simulated", "predicted", "rel err %"],
        &rows,
    );

    let (sim_var, pred_var) = stationary_variance(0.1, 1000, 100, 4000, 556);
    print_table(
        "Eq. (10) — T-TBS stationary variance (deterministic batches)",
        &["simulated", "predicted"],
        &[vec![f(sim_var, 1), f(pred_var, 1)]],
    );

    let (sim_eq, pred_eq) = rtbs_equilibrium(0.07, 1600, 100, 557);
    print_table(
        "Remark 1 / §6.3 — R-TBS unsaturated equilibrium (n=1600, b=100, lambda=0.07)",
        &["simulated C", "predicted b/(1-e^-lambda)"],
        &[vec![f(sim_eq, 1), f(pred_eq, 1)]],
    );

    // Large-deviation bound demonstration (Theorem 3.1(iv)).
    let bound_rows: Vec<Vec<String>> = [0.05, 0.10, 0.20]
        .iter()
        .map(|&eps| {
            vec![
                f(eps, 2),
                format!(
                    "{:.2e}",
                    theory::ttbs_upper_deviation_bound(1000.0, eps, 1.0)
                ),
                format!(
                    "{:.2e}",
                    theory::ttbs_lower_deviation_bound(1000.0, eps, 1.0)
                ),
            ]
        })
        .collect();
    print_table(
        "Theorem 3.1(iv) — deviation-probability bounds (n=1000, deterministic batches)",
        &[
            "epsilon",
            "P[C >= (1+eps)n] bound",
            "P[C <= (1-eps)n] bound",
        ],
        &bound_rows,
    );
}
