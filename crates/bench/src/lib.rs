//! # tbs-bench
//!
//! The benchmark harness regenerating **every table and figure** of the
//! EDBT 2018 temporally-biased-sampling paper. Each experiment lives in
//! [`experiments`] and is exposed three ways:
//!
//! 1. a `src/bin/<figure>` binary that prints the paper's rows/series and
//!    writes a CSV under `results/`;
//! 2. the `all_experiments` binary that runs the full suite;
//! 3. Criterion microbenches (`benches/`) for the per-batch costs.
//!
//! Beyond the paper's figures, [`experiments::throughput`] (the
//! `bench_throughput` binary) measures ingest items/sec and ns/item for
//! every sampler and writes the machine-readable `BENCH_throughput.json`
//! perf baseline at the repo root; [`json`] is the offline serializer
//! behind it, and the vendored criterion shim emits the same row format
//! when `CRITERION_JSON` is set.
//!
//! See EXPERIMENTS.md at the workspace root for the paper-vs-measured
//! comparison of every experiment.

pub mod experiments;
pub mod json;
pub mod output;
