//! Regenerate Figure 10 — kNN misclassification under a single event and
//! Periodic(10,10). Pass a run count as the first argument (default 10).
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::knn::run_fig10(runs_from_env(10));
}
