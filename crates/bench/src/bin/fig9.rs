//! Regenerate Figure 9 — D-R-TBS scale-up with batch size.
use tbs_bench::experiments::runtime::run_fig9;
fn main() {
    run_fig9(&[1_000, 10_000, 100_000, 1_000_000, 10_000_000], 10, 42);
}
