//! Verify Theorem 3.1 / Remark 1 closed forms against simulation.
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::theory::run_and_report(runs_from_env(2_000));
}
