//! Run the complete experiment suite (every paper table and figure) with
//! moderate run counts; pass a run count to override (default 10).
use tbs_bench::experiments;
use tbs_bench::output::runs_from_env;

fn main() {
    let runs = runs_from_env(10);
    println!("### running full EDBT-2018 reproduction suite ({runs} runs per experiment)");
    println!("\n--- Figure 1: sample-size behaviour ---");
    experiments::fig1::run(1000, 42);
    println!("\n--- Equation (1) / Theorem 4.2 verification ---");
    experiments::inclusion::run_and_report(20_000);
    println!("\n--- Theorem 3.1 verification ---");
    experiments::theory::run_and_report(1_000);
    println!("\n--- Figure 7: distributed implementations ---");
    experiments::runtime::run_fig7(&experiments::runtime::RuntimeConfig::default(), 42);
    println!("\n--- Figure 8: scale-out ---");
    experiments::runtime::run_fig8(&[1, 2, 4, 8, 12, 16, 20, 24], 1_000_000, 42);
    println!("\n--- Figure 9: scale-up ---");
    experiments::runtime::run_fig9(&[1_000, 10_000, 100_000, 1_000_000], 10, 42);
    println!("\n--- Figure 10: kNN single event / P(10,10) ---");
    experiments::knn::run_fig10(runs);
    println!("\n--- Figure 11: kNN varying batch sizes ---");
    experiments::knn::run_fig11(runs);
    println!("\n--- Figure 14: kNN P(20,10) / P(30,10) ---");
    experiments::knn::run_fig14(runs);
    println!("\n--- Table 1: kNN accuracy & robustness ---");
    experiments::knn::run_table1(runs);
    println!("\n--- Figure 12: linear regression ---");
    experiments::linreg::run_fig12(runs);
    println!("\n--- Figure 13: naive Bayes (synthetic Usenet2) ---");
    experiments::nb::run_fig13(runs);
    experiments::nb::run_lambda_sweep(runs.min(5));
    println!("\n--- Ablation: R-TBS vs B-Chao ---");
    experiments::knn::run_chao_ablation(runs.min(10));
    println!("\n--- Extension: forward-decay retention ---");
    experiments::forward::run_and_report(300);
    println!("\n### suite complete; CSVs in results/ ###");
}
