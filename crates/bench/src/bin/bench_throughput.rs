//! Ingest-throughput baseline: items/sec and ns/item for every sampler
//! across unsaturated / saturated / bursty regimes, on both the
//! monomorphized fast path and the object-safe `dyn` adapter.
//!
//! ```text
//! cargo run --release -p tbs-bench --bin bench_throughput            # full run, writes BENCH_throughput.json
//! cargo run --release -p tbs-bench --bin bench_throughput -- --smoke # CI smoke: tiny counts, results/ output
//! ```
//!
//! Flags:
//!
//! * `--smoke` — tiny iteration counts; writes to
//!   `results/BENCH_throughput_smoke.json` instead of the repo root so a
//!   smoke run never clobbers the committed baseline.
//! * `--thorough` — long-form counts (3× batches, 7 repeats) for
//!   low-noise baseline refreshes; same gates and output path as a full
//!   run, just slower and steadier.
//! * `--json <path>` — explicit output path for the JSON document.
//! * `--batches <n>` / `--warmup <n>` / `--repeats <n>` — override the
//!   measurement sizes.

use std::path::PathBuf;
use tbs_bench::experiments::throughput::{
    check_checkpoint_overhead, check_facade_overhead, check_jump_baseline, check_jump_speedup,
    report, rows_to_json, run_throughput_filtered, ThroughputConfig, COMMITTED_JUMP_BASELINE,
    THROUGHPUT_ROW_KEYS,
};
use tbs_bench::json::validate_bench_doc;
use tbs_bench::output::{host_context, results_dir, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ThroughputConfig::default();
    let mut smoke = false;
    let mut json_path: Option<PathBuf> = None;
    let mut filter: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("expected a number after {}", args[*i - 1]);
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                cfg = ThroughputConfig::smoke();
            }
            "--thorough" => cfg = ThroughputConfig::thorough(),
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("expected a path after --json");
                    std::process::exit(2);
                })));
            }
            "--batches" => cfg.measured_batches = take_num(&mut i).max(1),
            "--warmup" => cfg.warmup_batches = take_num(&mut i),
            "--repeats" => cfg.repeats = take_num(&mut i).max(1),
            "--filter" => {
                i += 1;
                filter = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("expected a sampler-name substring after --filter");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_throughput [--smoke] [--thorough] [--json PATH] \
                     [--batches N] [--warmup N] [--repeats N] [--filter NAME]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let rows = run_throughput_filtered(&cfg, |kind, _, _| {
        filter.as_deref().is_none_or(|f| kind.label().contains(f))
    });
    report(&rows);

    // Perf gate: the public `api::Sampler` must not tax the flagship
    // ingest path. Enforced on full runs only — smoke counts are noise.
    if filter.is_none() {
        match check_facade_overhead(&rows, 0.10) {
            Ok(ratio) => println!(
                "api facade: R-TBS saturated at {:.1}% of the raw fast path (±10% gate)",
                ratio * 100.0
            ),
            Err(msg) if smoke => println!("api facade (not gated on --smoke runs): {msg}"),
            Err(msg) => {
                eprintln!("{msg}\n{}", host_context());
                std::process::exit(1);
            }
        }
        // Perf gate: jump-ahead ingest must be worth its complexity —
        // ≥2× the per-item fast path on the saturated R-TBS flagship.
        match check_jump_speedup(&rows, 2.0) {
            Ok(speedup) => println!(
                "jump ingest: R-TBS saturated at {speedup:.2}× the per-item fast path (≥2× gate)"
            ),
            Err(msg) if smoke => println!("jump ingest (not gated on --smoke runs): {msg}"),
            Err(msg) => {
                eprintln!("{msg}\n{}", host_context());
                std::process::exit(1);
            }
        }
        // Perf gate: the checkpoint machinery must not regress the
        // flagship ingest path itself — this run's saturated R-TBS jump
        // row stays within 10% of the committed absolute baseline.
        match check_jump_baseline(&rows, COMMITTED_JUMP_BASELINE, 0.10) {
            Ok(ratio) => println!(
                "jump baseline: saturated R-TBS at {:.1}% of the committed {:.1}M items/s (±10% gate)",
                ratio * 100.0,
                COMMITTED_JUMP_BASELINE / 1e6
            ),
            Err(msg) if smoke => println!("jump baseline (not gated on --smoke runs): {msg}"),
            Err(msg) => {
                eprintln!("{msg}\n{}", host_context());
                std::process::exit(1);
            }
        }
        // Durability gate: automatic checkpointing keeps at least half of
        // jump throughput within the same run. A catastrophic-regression
        // floor, not a precision bound — see `check_checkpoint_overhead`.
        match check_checkpoint_overhead(&rows, 0.5) {
            Ok(ratio) => println!(
                "checkpoint ingest: R-TBS saturated at {:.1}% of the jump path (≥50% floor)",
                ratio * 100.0
            ),
            Err(msg) if smoke => println!("checkpoint ingest (not gated on --smoke runs): {msg}"),
            Err(msg) => {
                eprintln!("{msg}\n{}", host_context());
                std::process::exit(1);
            }
        }
    }

    let path = json_path.unwrap_or_else(|| {
        if smoke {
            results_dir().join("BENCH_throughput_smoke.json")
        } else {
            workspace_root().join("BENCH_throughput.json")
        }
    });
    let doc = rows_to_json(&cfg, &rows);
    if let Err(e) = validate_bench_doc(&doc, "throughput", THROUGHPUT_ROW_KEYS) {
        eprintln!("emitted document violates the shared row schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&path, doc.to_pretty_string()).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
