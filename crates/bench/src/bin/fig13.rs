//! Regenerate Figure 13 — naive Bayes on the synthetic Usenet2 stream,
//! plus the lambda-sensitivity sweep.
use tbs_bench::output::runs_from_env;
fn main() {
    let runs = runs_from_env(10);
    tbs_bench::experiments::nb::run_fig13(runs);
    tbs_bench::experiments::nb::run_lambda_sweep(runs.min(5));
}
