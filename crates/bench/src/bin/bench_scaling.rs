//! Multi-core scaling baseline: aggregate and wall-clock ingest throughput
//! of the sharded parallel engine at 1–64 shards, plus the
//! spawn-vs-persistent-pool dispatch comparison. A full (non-smoke) run
//! **fails loudly** when the scaling gate does not pass: saturated
//! R-TBS aggregate at K = 8 must clear twice the committed pre-fix row,
//! K = 16 must not regress below K = 8, and K = 32 must not regress
//! below K = 16 (the flattened-tail gate).
//!
//! ```text
//! cargo run --release -p tbs-bench --bin bench_scaling            # full run, writes BENCH_scaling.json
//! cargo run --release -p tbs-bench --bin bench_scaling -- --smoke # CI smoke: tiny counts, results/ output
//! ```
//!
//! Flags:
//!
//! * `--smoke` — tiny iteration counts; writes to
//!   `results/BENCH_scaling_smoke.json` instead of the repo root so a
//!   smoke run never clobbers the committed baseline.
//! * `--json <path>` — explicit output path for the JSON document.
//! * `--batches <n>` / `--warmup <n>` / `--repeats <n>` — override the
//!   measurement sizes.
//!
//! The emitted document is self-validated against the shared row schema
//! (`tbs_bench::json::validate_bench_doc`) before it is written.

use std::path::PathBuf;
use tbs_bench::experiments::scaling::{
    report, rows_to_json, run_pool_dispatch, run_scaling, ScalingConfig,
    GATE_K8_FLOOR_ITEMS_PER_SEC, SCALING_ROW_KEYS,
};
use tbs_bench::json::{validate_bench_doc, Json};
use tbs_bench::output::{host_context, results_dir, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScalingConfig::default();
    let mut smoke = false;
    let mut json_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("expected a number after {}", args[*i - 1]);
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                cfg = ScalingConfig::smoke();
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("expected a path after --json");
                    std::process::exit(2);
                })));
            }
            "--batches" => cfg.measured_batches = take_num(&mut i).max(1),
            "--warmup" => cfg.warmup_batches = take_num(&mut i),
            "--repeats" => cfg.repeats = take_num(&mut i).max(1),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_scaling [--smoke] [--json PATH] \
                     [--batches N] [--warmup N] [--repeats N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let rows = run_scaling(&cfg);
    let pool = run_pool_dispatch(&cfg);
    report(&rows, &pool);

    let doc = rows_to_json(&cfg, &rows, &pool);
    if let Err(e) = validate_bench_doc(&doc, "scaling", SCALING_ROW_KEYS) {
        eprintln!("emitted document violates the shared row schema: {e}");
        std::process::exit(1);
    }

    // Smoke sweeps stop at K=2 and carry no gate verdict; a full run must
    // pass the cliff gate before the baseline is (over)written.
    if !smoke {
        match doc.get("summary").and_then(|s| s.get("gate")) {
            Some(gate @ Json::Obj(_)) => {
                println!("\ngate: {gate}");
                if !matches!(gate.get("pass"), Some(Json::Bool(true))) {
                    eprintln!(
                        "scaling gate FAILED: K=8 below {GATE_K8_FLOOR_ITEMS_PER_SEC:.4e} \
                         items/s, K=16 regressed below K=8, or K=32 regressed below \
                         K=16. See `host` and `shard_busy_fracs` in the emitted \
                         JSON.\n{}",
                        host_context()
                    );
                    std::process::exit(1);
                }
            }
            _ => {
                eprintln!("full run produced no gate summary — sweep misconfigured");
                std::process::exit(1);
            }
        }
    }

    let path = json_path.unwrap_or_else(|| {
        if smoke {
            results_dir().join("BENCH_scaling_smoke.json")
        } else {
            workspace_root().join("BENCH_scaling.json")
        }
    });
    std::fs::write(&path, doc.to_pretty_string()).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
