//! Regenerate Figure 11 — kNN with uniform and growing batch sizes.
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::knn::run_fig11(runs_from_env(10));
}
