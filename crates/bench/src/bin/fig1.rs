//! Regenerate Figure 1 — T-TBS vs R-TBS sample-size behaviour.
fn main() {
    tbs_bench::experiments::fig1::run(1000, 42);
}
