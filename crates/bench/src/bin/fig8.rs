//! Regenerate Figure 8 — D-R-TBS scale-out with worker count.
use tbs_bench::experiments::runtime::run_fig8;
fn main() {
    run_fig8(&[1, 2, 4, 6, 8, 10, 12, 16, 20, 24], 1_000_000, 42);
}
