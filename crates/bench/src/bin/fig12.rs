//! Regenerate Figure 12 — linear-regression MSE, saturated and
//! unsaturated sample regimes.
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::linreg::run_fig12(runs_from_env(10));
}
