//! Extension experiment: forward-decay retention curves (§8 roadmap).
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::forward::run_and_report(runs_from_env(400));
}
