//! Regenerate Table 1 — kNN accuracy and robustness across temporal
//! patterns and decay rates. Pass a run count (default 30, the paper's).
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::knn::run_table1(runs_from_env(30));
}
