//! Regenerate Figure 14 (Appendix F) — kNN under Periodic(20,10) and
//! Periodic(30,10).
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::knn::run_fig14(runs_from_env(10));
}
