//! Regenerate Figure 7 — per-batch runtime of the five distributed
//! implementations.
use tbs_bench::experiments::runtime::{run_fig7, RuntimeConfig};
fn main() {
    run_fig7(&RuntimeConfig::default(), 42);
}
