//! Concurrent-serving baseline: reader QPS × ingest throughput under
//! sustained mixed load (0/1/2/4/8 reader threads polling epoch
//! snapshots while the sharded engine stays saturated), plus the
//! unthrottled reader-path cost.
//!
//! ```text
//! cargo run --release -p tbs-bench --bin bench_serving            # full run, writes BENCH_serving.json
//! cargo run --release -p tbs-bench --bin bench_serving -- --smoke # CI smoke: tiny counts, results/ output
//! ```
//!
//! Flags:
//!
//! * `--smoke` — tiny iteration counts; writes to
//!   `results/BENCH_serving_smoke.json` instead of the repo root so a
//!   smoke run never clobbers the committed baseline.
//! * `--json <path>` — explicit output path for the JSON document.
//! * `--batches <n>` / `--warmup <n>` / `--repeats <n>` — override the
//!   measurement sizes.
//!
//! The emitted document is self-validated against the shared row schema
//! (`tbs_bench::json::validate_bench_doc`) before it is written, and the
//! full (non-smoke) run **fails loudly** when the acceptance gate — R-TBS
//! saturated ingest capacity under 4 concurrent readers ≥ 90% of the
//! committed 265.1M items/s baseline — does not pass.

use std::path::PathBuf;
use tbs_bench::experiments::serving::{
    poll_cost, report, rows_to_json, run_serving, ServingConfig, SERVING_ROW_KEYS,
};
use tbs_bench::json::{validate_bench_doc, Json};
use tbs_bench::output::{results_dir, workspace_root};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServingConfig::default();
    let mut smoke = false;
    let mut json_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("expected a number after {}", args[*i - 1]);
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                cfg = ServingConfig::smoke();
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("expected a path after --json");
                    std::process::exit(2);
                })));
            }
            "--batches" => cfg.measured_batches = take_num(&mut i).max(1),
            "--warmup" => cfg.warmup_batches = take_num(&mut i),
            "--repeats" => cfg.repeats = take_num(&mut i).max(1),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_serving [--smoke] [--json PATH] \
                     [--batches N] [--warmup N] [--repeats N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let rows = run_serving(&cfg);
    let poll = poll_cost(&cfg);
    report(&rows, poll);

    let doc = rows_to_json(&cfg, &rows, poll);
    if let Err(e) = validate_bench_doc(&doc, "serving", SERVING_ROW_KEYS) {
        eprintln!("emitted document violates the shared row schema: {e}");
        std::process::exit(1);
    }
    if !smoke {
        match doc.get("summary").and_then(|s| s.get("gate")) {
            Some(gate) => {
                println!("\ngate: {gate}");
                if !matches!(gate.get("pass"), Some(Json::Bool(true))) {
                    eprintln!(
                        "serving gate FAILED: ingest under 4 readers fell below the baseline band"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("full run produced no gate summary — sweep misconfigured");
                std::process::exit(1);
            }
        }
    }

    let path = json_path.unwrap_or_else(|| {
        if smoke {
            results_dir().join("BENCH_serving_smoke.json")
        } else {
            workspace_root().join("BENCH_serving.json")
        }
    });
    std::fs::write(&path, doc.to_pretty_string()).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
