//! Concurrent-serving baseline: reader QPS × ingest throughput under
//! sustained mixed load (0/1/2/4/8 reader threads polling epoch
//! snapshots while the sharded engine stays saturated), plus the
//! unthrottled reader-path cost — and, since PR 9, the **wire** serving
//! tier: framed-TCP `GET_SAMPLE` QPS over 1/2/4 loopback connections and
//! ingest capacity with `SUBSCRIBE_EPOCH` long-pollers attached,
//! emitted as a nested `wire` sub-document.
//!
//! ```text
//! cargo run --release -p tbs-bench --bin bench_serving            # full run, writes BENCH_serving.json
//! cargo run --release -p tbs-bench --bin bench_serving -- --smoke # CI smoke: tiny counts, results/ output
//! ```
//!
//! Flags:
//!
//! * `--smoke` — tiny iteration counts; writes to
//!   `results/BENCH_serving_smoke.json` instead of the repo root so a
//!   smoke run never clobbers the committed baseline.
//! * `--json <path>` — explicit output path for the JSON document.
//! * `--batches <n>` / `--warmup <n>` / `--repeats <n>` — override the
//!   measurement sizes.
//!
//! The emitted document is self-validated against the shared row schema
//! (`tbs_bench::json::validate_bench_doc`) before it is written — the
//! nested `wire` sub-document against its own `serving_wire` schema —
//! and the full (non-smoke) run **fails loudly** when any acceptance
//! gate does not pass: R-TBS saturated ingest capacity under 4
//! concurrent readers ≥ 90% of the committed 265.1M items/s baseline;
//! single-connection loopback `GET_SAMPLE` ≥ 100k requests/s; mixed
//! wire-load ingest ≥ 90% of the same baseline.

use std::path::PathBuf;
use tbs_bench::experiments::serving::{
    poll_cost, report, rows_to_json, run_serving, ServingConfig, SERVING_ROW_KEYS,
};
use tbs_bench::experiments::wire::{self, WireConfig, WIRE_ROW_KEYS};
use tbs_bench::json::{validate_bench_doc, Json};
use tbs_bench::output::{host_context, results_dir, workspace_root};

/// Exit non-zero unless `summary.<gate_key>.pass` in `doc` is `true`.
fn enforce_gate(doc: &Json, gate_key: &str, what: &str) {
    match doc.get("summary").and_then(|s| s.get(gate_key)) {
        Some(gate) => {
            println!("\n{gate_key}: {gate}");
            if !matches!(gate.get("pass"), Some(Json::Bool(true))) {
                eprintln!("{what} gate FAILED\n{}", host_context());
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("full run produced no {gate_key} summary — sweep misconfigured");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServingConfig::default();
    let mut smoke = false;
    let mut json_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("expected a number after {}", args[*i - 1]);
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                cfg = ServingConfig::smoke();
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("expected a path after --json");
                    std::process::exit(2);
                })));
            }
            "--batches" => cfg.measured_batches = take_num(&mut i).max(1),
            "--warmup" => cfg.warmup_batches = take_num(&mut i),
            "--repeats" => cfg.repeats = take_num(&mut i).max(1),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_serving [--smoke] [--json PATH] \
                     [--batches N] [--warmup N] [--repeats N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let wire_cfg = if smoke {
        WireConfig::smoke()
    } else {
        WireConfig::default()
    };

    let rows = run_serving(&cfg);
    let poll = poll_cost(&cfg);
    report(&rows, poll);
    let wire_rows = wire::run_wire(&wire_cfg);
    wire::report(&wire_rows);

    let wire_doc = wire::rows_to_json(&wire_cfg, &wire_rows);
    if let Err(e) = validate_bench_doc(&wire_doc, "serving_wire", WIRE_ROW_KEYS) {
        eprintln!("emitted wire sub-document violates the shared row schema: {e}");
        std::process::exit(1);
    }
    let mut doc = rows_to_json(&cfg, &rows, poll);
    if let Err(e) = validate_bench_doc(&doc, "serving", SERVING_ROW_KEYS) {
        eprintln!("emitted document violates the shared row schema: {e}");
        std::process::exit(1);
    }
    if !smoke {
        match doc.get("summary").and_then(|s| s.get("gate")) {
            Some(gate) => {
                println!("\ngate: {gate}");
                if !matches!(gate.get("pass"), Some(Json::Bool(true))) {
                    eprintln!(
                        "serving gate FAILED: ingest under 4 readers fell below \
                         the baseline band\n{}",
                        host_context()
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("full run produced no gate summary — sweep misconfigured");
                std::process::exit(1);
            }
        }
        enforce_gate(&wire_doc, "get_sample_gate", "wire GET_SAMPLE QPS");
        enforce_gate(&wire_doc, "mixed_gate", "wire mixed-load ingest");
    }
    // Nest the wire tier's results inside the one serving artifact so the
    // committed baseline stays a single file.
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("wire".to_string(), wire_doc));
    }

    let path = json_path.unwrap_or_else(|| {
        if smoke {
            results_dir().join("BENCH_serving_smoke.json")
        } else {
            workspace_root().join("BENCH_serving.json")
        }
    });
    std::fs::write(&path, doc.to_pretty_string()).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
