//! Verify equation (1) empirically for every decay-aware scheme and
//! demonstrate B-Chao's Appendix-D violation.
use tbs_bench::output::runs_from_env;
fn main() {
    tbs_bench::experiments::inclusion::run_and_report(runs_from_env(30_000));
}
