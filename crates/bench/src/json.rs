//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The workspace builds fully offline (no serde), so the `BENCH_*.json`
//! files are produced by this hand-rolled serializer. It supports exactly
//! the subset the benchmark harness needs — objects, arrays, strings,
//! integers, floats, booleans, null — and guarantees valid, deterministic
//! output: object keys keep insertion order, floats are rendered with
//! enough precision to round-trip, and non-finite floats degrade to
//! `null` (JSON has no NaN/Inf).

use std::fmt::{self, Display, Write as _};

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer, for counters that can exceed `i64`.
    UInt(u64),
    /// Floating-point number; NaN/Inf serialize as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Row keys every `BENCH_*.json` benchmark document shares, whatever the
/// benchmark-specific columns are. CI and the emitting binaries validate
/// against this single definition via [`validate_bench_doc`].
pub const BENCH_CORE_ROW_KEYS: &[&str] = &["sampler", "regime", "batches", "items"];

/// Validate the shared shape of a `BENCH_*.json` document: a `bench` tag
/// equal to `bench_name`, an integer `schema_version`, a `config` object,
/// and a non-empty `rows` array whose every row is an object carrying
/// [`BENCH_CORE_ROW_KEYS`] plus the benchmark's `extra_row_keys`.
pub fn validate_bench_doc(
    doc: &Json,
    bench_name: &str,
    extra_row_keys: &[&str],
) -> Result<(), String> {
    match doc.get("bench") {
        Some(Json::Str(s)) if s == bench_name => {}
        other => return Err(format!("bench tag: expected {bench_name:?}, got {other:?}")),
    }
    match doc.get("schema_version") {
        Some(Json::Int(v)) if *v >= 1 => {}
        other => {
            return Err(format!(
                "schema_version: expected integer ≥ 1, got {other:?}"
            ))
        }
    }
    match doc.get("config") {
        Some(Json::Obj(_)) => {}
        other => return Err(format!("config: expected object, got {other:?}")),
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("rows: empty".into()),
        other => return Err(format!("rows: expected array, got {other:?}")),
    };
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            return Err(format!("row {i}: expected object"));
        }
        for key in BENCH_CORE_ROW_KEYS.iter().chain(extra_row_keys) {
            if row.get(key).is_none() {
                return Err(format!("row {i}: missing key {key:?}"));
            }
        }
    }
    Ok(())
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline, ready
    /// to write to a `BENCH_*.json` file.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` on f64 prints the shortest representation that
                    // round-trips, and always includes a decimal point or
                    // exponent — i.e. valid JSON.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            (
                "b",
                Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Bool(true)]),
            ),
            ("c", Json::str("x\"y")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[0.5,null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_round_trip_and_stay_json() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        let x = 1_234.567_890_123;
        let s = Json::Num(x).to_string();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("a\nb\t\u{1}").to_string();
        assert_eq!(s, "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("rows", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": [],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn uint_beyond_i64_survives() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }

    fn sample_doc(extra: &[(&'static str, Json)]) -> Json {
        let mut row = vec![
            ("sampler", Json::str("R-TBS")),
            ("regime", Json::str("saturated")),
            ("batches", Json::Int(10)),
            ("items", Json::UInt(1000)),
        ];
        row.extend(extra.iter().cloned());
        Json::obj([
            ("bench", Json::str("scaling")),
            ("schema_version", Json::Int(1)),
            ("config", Json::obj([("seed", Json::Int(1))])),
            ("rows", Json::Arr(vec![Json::obj(row)])),
        ])
    }

    #[test]
    fn validate_accepts_conforming_doc() {
        let doc = sample_doc(&[("shards", Json::Int(4))]);
        validate_bench_doc(&doc, "scaling", &["shards"]).unwrap();
    }

    #[test]
    fn validate_rejects_missing_row_key() {
        let doc = sample_doc(&[]);
        let err = validate_bench_doc(&doc, "scaling", &["shards"]).unwrap_err();
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_bench_tag() {
        let doc = sample_doc(&[]);
        assert!(validate_bench_doc(&doc, "throughput", &[]).is_err());
    }

    #[test]
    fn get_walks_objects() {
        let doc = sample_doc(&[]);
        assert!(matches!(doc.get("bench"), Some(Json::Str(_))));
        assert!(doc.get("nonexistent").is_none());
        assert!(Json::Int(3).get("x").is_none());
    }
}
