//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The workspace builds fully offline (no serde), so the `BENCH_*.json`
//! files are produced by this hand-rolled serializer. It supports exactly
//! the subset the benchmark harness needs — objects, arrays, strings,
//! integers, floats, booleans, null — and guarantees valid, deterministic
//! output: object keys keep insertion order, floats are rendered with
//! enough precision to round-trip, and non-finite floats degrade to
//! `null` (JSON has no NaN/Inf).

use std::fmt::{self, Display, Write as _};

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer, for counters that can exceed `i64`.
    UInt(u64),
    /// Floating-point number; NaN/Inf serialize as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize with two-space indentation and a trailing newline, ready
    /// to write to a `BENCH_*.json` file.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` on f64 prints the shortest representation that
                    // round-trips, and always includes a decimal point or
                    // exponent — i.e. valid JSON.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            (
                "b",
                Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Bool(true)]),
            ),
            ("c", Json::str("x\"y")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[0.5,null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_round_trip_and_stay_json() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        let x = 1_234.567_890_123;
        let s = Json::Num(x).to_string();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("a\nb\t\u{1}").to_string();
        assert_eq!(s, "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("rows", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": [],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn uint_beyond_i64_survives() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }
}
