//! Minimal JSON emission *and parsing* for machine-readable benchmark
//! artifacts.
//!
//! The workspace builds fully offline (no serde), so the `BENCH_*.json`
//! files are produced by this hand-rolled serializer. It supports exactly
//! the subset the benchmark harness needs — objects, arrays, strings,
//! integers, floats, booleans, null — and guarantees valid, deterministic
//! output: object keys keep insertion order, floats are rendered with
//! enough precision to round-trip, and non-finite floats degrade to
//! `null` (JSON has no NaN/Inf).
//!
//! [`parse`] is the inverse: it reads any standard JSON text back into a
//! [`Json`] tree, which is what lets the *committed* `BENCH_*.json`
//! baselines at the repo root be re-validated against the shared row
//! schema ([`validate_bench_doc`]) on every CI run — emitting binaries
//! self-validate what they write, and the `bench_artifacts` test
//! validates what is checked in.

use std::fmt::{self, Display, Write as _};

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer, for counters that can exceed `i64`.
    UInt(u64),
    /// Floating-point number; NaN/Inf serialize as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Row keys every `BENCH_*.json` benchmark document shares, whatever the
/// benchmark-specific columns are. CI and the emitting binaries validate
/// against this single definition via [`validate_bench_doc`].
pub const BENCH_CORE_ROW_KEYS: &[&str] = &["sampler", "regime", "batches", "items"];

/// Validate the shared shape of a `BENCH_*.json` document: a `bench` tag
/// equal to `bench_name`, an integer `schema_version`, a `config` object,
/// and a non-empty `rows` array whose every row is an object carrying
/// [`BENCH_CORE_ROW_KEYS`] plus the benchmark's `extra_row_keys`.
pub fn validate_bench_doc(
    doc: &Json,
    bench_name: &str,
    extra_row_keys: &[&str],
) -> Result<(), String> {
    match doc.get("bench") {
        Some(Json::Str(s)) if s == bench_name => {}
        other => return Err(format!("bench tag: expected {bench_name:?}, got {other:?}")),
    }
    match doc.get("schema_version") {
        Some(Json::Int(v)) if *v >= 1 => {}
        other => {
            return Err(format!(
                "schema_version: expected integer ≥ 1, got {other:?}"
            ))
        }
    }
    match doc.get("config") {
        Some(Json::Obj(_)) => {}
        other => return Err(format!("config: expected object, got {other:?}")),
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("rows: empty".into()),
        other => return Err(format!("rows: expected array, got {other:?}")),
    };
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Obj(_)) {
            return Err(format!("row {i}: expected object"));
        }
        for key in BENCH_CORE_ROW_KEYS.iter().chain(extra_row_keys) {
            if row.get(key).is_none() {
                return Err(format!("row {i}: missing key {key:?}"));
            }
        }
    }
    Ok(())
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline, ready
    /// to write to a `BENCH_*.json` file.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

/// Parse standard JSON text into a [`Json`] tree.
///
/// Accepts exactly the JSON grammar (RFC 8259): any scalar, array, or
/// object at the top level, `\uXXXX` escapes including surrogate pairs,
/// and arbitrary whitespace. Numbers without a fraction or exponent
/// become [`Json::Int`] (or [`Json::UInt`] beyond the `i64` range);
/// everything else becomes [`Json::Num`]. Errors carry the byte offset
/// of the first offending character.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| "non-ASCII \\u escape".to_string())?;
        let v = u16::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi as u32).ok_or("lone low surrogate")?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(first) => {
                    // Consume one UTF-8 scalar (the input is a &str and
                    // self.pos only ever advances by whole tokens, so it
                    // sits on a char boundary). Decode just this scalar —
                    // its length is read off the leading byte — rather
                    // than re-validating the whole remaining input.
                    if first < 0x20 {
                        return Err(format!("unescaped control char at byte {}", self.pos));
                    }
                    let len = match first {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consume 1+ ASCII digits; error (at `at`) if none are present.
    fn digits(&mut self, what: &str, at: usize) -> Result<(), String> {
        let before = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == before {
            return Err(format!("{what} requires digits at byte {at}"));
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Json, String> {
        // RFC 8259 grammar, strictly: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        // — no leading zeros, and a fraction/exponent must carry digits.
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(format!("leading zero at byte {start}"));
                }
            }
            Some(c) if c.is_ascii_digit() => self.digits("integer part", start)?,
            _ => return Err(format!("integer part requires digits at byte {start}")),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            self.digits("fraction", start)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("exponent", start)?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` on f64 prints the shortest representation that
                    // round-trips, and always includes a decimal point or
                    // exponent — i.e. valid JSON.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            (
                "b",
                Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Bool(true)]),
            ),
            ("c", Json::str("x\"y")),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[0.5,null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_round_trip_and_stay_json() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        let x = 1_234.567_890_123;
        let s = Json::Num(x).to_string();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::str("a\nb\t\u{1}").to_string();
        assert_eq!(s, "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("rows", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        let v = Json::obj([("a", Json::Arr(vec![])), ("b", Json::Obj(vec![]))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": [],\n  \"b\": {}\n}\n");
    }

    #[test]
    fn uint_beyond_i64_survives() {
        let v = Json::UInt(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }

    fn sample_doc(extra: &[(&'static str, Json)]) -> Json {
        let mut row = vec![
            ("sampler", Json::str("R-TBS")),
            ("regime", Json::str("saturated")),
            ("batches", Json::Int(10)),
            ("items", Json::UInt(1000)),
        ];
        row.extend(extra.iter().cloned());
        Json::obj([
            ("bench", Json::str("scaling")),
            ("schema_version", Json::Int(1)),
            ("config", Json::obj([("seed", Json::Int(1))])),
            ("rows", Json::Arr(vec![Json::obj(row)])),
        ])
    }

    #[test]
    fn validate_accepts_conforming_doc() {
        let doc = sample_doc(&[("shards", Json::Int(4))]);
        validate_bench_doc(&doc, "scaling", &["shards"]).unwrap();
    }

    #[test]
    fn validate_rejects_missing_row_key() {
        let doc = sample_doc(&[]);
        let err = validate_bench_doc(&doc, "scaling", &["shards"]).unwrap_err();
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_bench_tag() {
        let doc = sample_doc(&[]);
        assert!(validate_bench_doc(&doc, "throughput", &[]).is_err());
    }

    #[test]
    fn get_walks_objects() {
        let doc = sample_doc(&[]);
        assert!(matches!(doc.get("bench"), Some(Json::Str(_))));
        assert!(doc.get("nonexistent").is_none());
        assert!(Json::Int(3).get("x").is_none());
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        // Compare serialized forms: a `UInt` within the i64 range parses
        // back as the numerically identical `Int` (JSON cannot tell them
        // apart), so tree equality is only demanded of the re-parse.
        let doc = sample_doc(&[("x", Json::Num(2.5)), ("y", Json::Null)]);
        let reparsed = parse(&doc.to_pretty_string()).unwrap();
        assert_eq!(reparsed.to_string(), doc.to_string());
        assert_eq!(parse(&doc.to_string()).unwrap(), reparsed);
    }

    #[test]
    fn parse_handles_the_full_scalar_zoo() {
        let v = parse(
            r#"{"i": -42, "big": 18446744073709551615, "f": 1.5e-3,
                "s": "a\n\"b\"\u00e9\ud83d\ude00", "t": true, "n": null,
                "empty_arr": [], "empty_obj": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("i"), Some(&Json::Int(-42)));
        assert_eq!(v.get("big"), Some(&Json::UInt(u64::MAX)));
        assert_eq!(v.get("f"), Some(&Json::Num(0.0015)));
        assert_eq!(v.get("s"), Some(&Json::Str("a\n\"b\"é😀".into())));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("empty_arr"), Some(&Json::Arr(vec![])));
        assert_eq!(v.get("empty_obj"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\": 1} garbage",
            "\"\\q\"",
            "\"\\ud800\"",
            // RFC 8259 number grammar violations.
            "01",
            "-01",
            "1.",
            "-.5",
            ".5",
            "1e",
            "1e+",
            "-",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parsed_numbers_round_trip_through_display() {
        for n in ["0", "-7", "3.25", "1e300", "1234567890123456789"] {
            let v = parse(n).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v);
        }
    }
}
