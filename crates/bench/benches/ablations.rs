//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * stochastic rounding vs independent coin flips (Theorem 4.4's foil);
//! * Floyd vs Fisher–Yates subset sampling (the `Sample(A, m)` primitive);
//! * B-Chao's overweight bookkeeping vs R-TBS's latent sample under slow,
//!   decaying streams (where Chao's `V` set is busiest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tbs_core::util::{retain_random, sample_indices, sample_indices_into};
use tbs_core::{BChao, RTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;
use tbs_stats::rounding::{bernoulli_total, stochastic_round};

fn bench_rounding_vs_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("accept_count");
    group.sample_size(30);
    group.bench_function("stochastic_round", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        b.iter(|| stochastic_round(&mut rng, black_box(1352.4)));
    });
    group.bench_function("independent_coin_flips", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        b.iter(|| bernoulli_total(&mut rng, black_box(10_000), black_box(0.13524)));
    });
    group.finish();
}

fn bench_subset_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_sampling");
    group.sample_size(20);
    for &(n, m) in &[(100_000usize, 100usize), (100_000, 50_000)] {
        group.bench_with_input(
            BenchmarkId::new("floyd_indices", format!("{n}/{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
                b.iter(|| black_box(sample_indices(n, m, &mut rng).len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fisher_yates_retain", format!("{n}/{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
                b.iter_batched(
                    || (0..n as u64).collect::<Vec<_>>(),
                    |mut items| {
                        retain_random(&mut items, m, &mut rng);
                        black_box(items.len())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    // The allocation-free scratch-buffer variant, covering both sides of
    // its documented routing rules (`m·4 ≥ n` or `m > 1024` ⇒ dense): this
    // is the micro-bench justifying the thresholds in the
    // `sample_indices_into` docs.
    for &(n, m) in &[
        (100_000usize, 100usize), // sparse + small: sorted-prefix Floyd
        (100_000, 1_000),         // sparse, at the sorted-Floyd cap
        (100_000, 25_000),        // dense crossover: Fisher–Yates prefix
        (100_000, 50_000),        // deep dense: Fisher–Yates prefix
    ] {
        group.bench_with_input(
            BenchmarkId::new("indices_into_scratch", format!("{n}/{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
                let mut scratch = Vec::new();
                b.iter(|| {
                    sample_indices_into(n, m, &mut rng, &mut scratch);
                    black_box(scratch.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_chao_vs_rtbs_slow_stream(c: &mut Criterion) {
    // High decay + sparse arrivals: Chao tracks overweight items every
    // step; R-TBS just downsamples its latent state.
    let mut group = c.benchmark_group("slow_stream_step");
    group.sample_size(20);
    group.bench_function("B-Chao", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s: BChao<u64> = BChao::new(1.0, 1_000);
        s.observe((0..2_000u64).collect(), &mut rng);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            s.observe(black_box(vec![t; 10]), &mut rng);
        });
    });
    group.bench_function("R-TBS", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut s: RTbs<u64> = RTbs::new(1.0, 1_000);
        s.observe((0..2_000u64).collect(), &mut rng);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            s.observe(black_box(vec![t; 10]), &mut rng);
        });
    });
    group.finish();
}

criterion_group! {
    name = ablation_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_rounding_vs_binomial,
    bench_subset_sampling,
    bench_chao_vs_rtbs_slow_stream
}

criterion_main!(ablation_benches);
