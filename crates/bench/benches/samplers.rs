//! Per-batch maintenance cost of every sampling scheme (single node).
//!
//! Backs the paper's claim that R-TBS stays lightweight relative to
//! B-Chao's overweight-item bookkeeping, and quantifies the price of exact
//! decay control over plain reservoir sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use tbs_core::traits::BatchSampler;
use tbs_core::{BChao, BTbs, BatchedReservoir, CountWindow, RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;

const LAMBDA: f64 = 0.07;
const CAPACITY: usize = 10_000;

fn bench_scheme<S, F>(c: &mut Criterion, name: &str, make: F)
where
    S: BatchSampler<u64>,
    F: Fn() -> S,
{
    let mut group = c.benchmark_group("sampler_observe");
    group.sample_size(20);
    for &batch_size in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(
            BenchmarkId::new(name, batch_size),
            &batch_size,
            |b, &size| {
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
                let mut sampler = make();
                // Warm to steady state.
                for t in 0..30u64 {
                    sampler.observe(
                        (0..size as u64).map(|i| t * 100_000 + i).collect(),
                        &mut rng,
                    );
                }
                let mut t = 30u64;
                b.iter(|| {
                    let batch: Vec<u64> = (0..size as u64).map(|i| t * 100_000 + i).collect();
                    t += 1;
                    sampler.observe(black_box(batch), &mut rng);
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_scheme(c, "R-TBS", || RTbs::new(LAMBDA, CAPACITY));
    bench_scheme(c, "T-TBS", || TTbs::new(LAMBDA, CAPACITY, 10_000.0));
    bench_scheme(c, "B-TBS", || BTbs::new(LAMBDA));
    bench_scheme(c, "B-RS(Unif)", || BatchedReservoir::new(CAPACITY));
    bench_scheme(c, "B-Chao", || BChao::new(LAMBDA, CAPACITY));
    bench_scheme(c, "SW", || CountWindow::new(CAPACITY));
}

criterion_group! {
    name = sampler_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}

criterion_main!(sampler_benches);
