//! Criterion companions to Figures 7–9: real wall-clock per-batch cost of
//! the distributed implementations (the simulated-cluster *time model* is
//! reported by the `fig7`–`fig9` binaries; this measures the actual
//! in-process execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tbs_distributed::{DRTbs, DTTbs, DrtbsConfig, DttbsConfig, Strategy};

const BATCH: usize = 20_000;
const CAPACITY: usize = 40_000;

fn bench_fig7_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_per_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    for strategy in Strategy::all() {
        group.bench_function(BenchmarkId::from_parameter(strategy.label()), |b| {
            let cfg = DrtbsConfig::new(0.07, CAPACITY, 8, strategy);
            let mut d: DRTbs<u64> = DRTbs::new(cfg, 42);
            d.observe_batch((0..(2 * CAPACITY as u64)).collect())
                .unwrap();
            let mut t = 0u64;
            b.iter(|| {
                let base = t * BATCH as u64;
                t += 1;
                black_box(
                    d.observe_batch((base..base + BATCH as u64).collect())
                        .unwrap(),
                );
            });
        });
    }
    group.bench_function(BenchmarkId::from_parameter("D-T-TBS (Dist,CP)"), |b| {
        let cfg = DttbsConfig::new(0.07, CAPACITY, BATCH as f64, 8);
        let mut d: DTTbs<u64> = DTTbs::new(cfg, 42);
        d.observe_batch((0..(2 * CAPACITY as u64)).collect());
        let mut t = 0u64;
        b.iter(|| {
            let base = t * BATCH as u64;
            t += 1;
            black_box(d.observe_batch((base..base + BATCH as u64).collect()));
        });
    });
    group.finish();
}

fn bench_fig8_scale_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_scale_out_threaded");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let mut cfg = DrtbsConfig::new(0.07, CAPACITY, w, Strategy::DistCoPartitioned);
            cfg.threaded = true;
            let mut d: DRTbs<u64> = DRTbs::new(cfg, 42);
            d.observe_batch((0..(2 * CAPACITY as u64)).collect())
                .unwrap();
            let mut t = 0u64;
            b.iter(|| {
                let base = t * BATCH as u64;
                t += 1;
                black_box(
                    d.observe_batch((base..base + BATCH as u64).collect())
                        .unwrap(),
                );
            });
        });
    }
    group.finish();
}

fn bench_fig9_scale_up(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_scale_up");
    group.sample_size(10);
    for &batch in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &size| {
            let cfg = DrtbsConfig::new(0.07, CAPACITY, 8, Strategy::DistCoPartitioned);
            let mut d: DRTbs<u64> = DRTbs::new(cfg, 42);
            d.observe_batch((0..(2 * CAPACITY as u64)).collect())
                .unwrap();
            let mut t = 0u64;
            b.iter(|| {
                let base = t * size as u64;
                t += 1;
                black_box(
                    d.observe_batch((base..base + size as u64).collect())
                        .unwrap(),
                );
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = distributed_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig7_strategies,
    bench_fig8_scale_out,
    bench_fig9_scale_up
}

criterion_main!(distributed_benches);
