//! Cost of the R-TBS primitives: Algorithm 3 downsampling, latent-sample
//! realization, and the full per-batch step across the four transition
//! types (unsaturated/saturated × under/over).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tbs_core::downsample::downsample;
use tbs_core::latent::LatentSample;
use tbs_core::RTbs;
use tbs_stats::rng::Xoshiro256PlusPlus;

fn bench_downsample(c: &mut Criterion) {
    let mut group = c.benchmark_group("downsample");
    group.sample_size(30);
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("to_half", size), &size, |b, &n| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
            b.iter_batched(
                || LatentSample::from_full((0..n as u64).collect::<Vec<_>>()),
                |mut latent| {
                    downsample(&mut latent, n as f64 / 2.0 + 0.3, &mut rng);
                    black_box(latent.weight())
                },
                criterion::BatchSize::SmallInput,
            );
        });
        // The common per-step case: tiny decay shave (λ = 0.07).
        group.bench_with_input(BenchmarkId::new("decay_shave", size), &size, |b, &n| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
            b.iter_batched(
                || LatentSample::from_full((0..n as u64).collect::<Vec<_>>()),
                |mut latent| {
                    downsample(&mut latent, n as f64 * (-0.07f64).exp(), &mut rng);
                    black_box(latent.weight())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_realize(c: &mut Criterion) {
    let mut group = c.benchmark_group("realize_sample");
    group.sample_size(30);
    for &size in &[1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &n| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
            let mut latent = LatentSample::from_full((0..n as u64).collect::<Vec<_>>());
            downsample(&mut latent, n as f64 - 0.5, &mut rng);
            b.iter(|| black_box(latent.realize(&mut rng).len()));
        });
    }
    group.finish();
}

fn bench_rtbs_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtbs_step");
    group.sample_size(20);
    // Saturated steady state (the §6.1 regime).
    group.bench_function("saturated", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut s: RTbs<u64> = RTbs::new(0.07, 10_000);
        s.observe((0..20_000u64).collect(), &mut rng);
        b.iter(|| s.observe(black_box((0..5_000u64).collect()), &mut rng));
    });
    // Unsaturated steady state (n above the equilibrium weight).
    group.bench_function("unsaturated", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s: RTbs<u64> = RTbs::new(0.07, 100_000);
        for t in 0..50u64 {
            s.observe((0..5_000).map(|i| t * 5_000 + i).collect(), &mut rng);
        }
        b.iter(|| s.observe(black_box((0..5_000u64).collect()), &mut rng));
    });
    group.finish();
}

criterion_group! {
    name = downsampling_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_downsample,
    bench_realize,
    bench_rtbs_transitions
}

criterion_main!(downsampling_benches);
