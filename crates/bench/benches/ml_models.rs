//! Model retraining + scoring cost versus training-sample size — the
//! quantitative backing for the paper's premise that "retraining on a
//! sample speeds up the training process relative to training on all of
//! the data".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tbs_datagen::gmm::GmmGenerator;
use tbs_datagen::modes::Mode;
use tbs_datagen::regression::RegressionGenerator;
use tbs_datagen::text::UsenetGenerator;
use tbs_ml::{KnnClassifier, LinearRegression, NaiveBayes};
use tbs_stats::rng::Xoshiro256PlusPlus;

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_score_batch");
    group.sample_size(20);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let gmm = GmmGenerator::paper(&mut rng);
    let batch = gmm.sample_batch(Mode::Normal, 100, &mut rng);
    for &train_size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(train_size),
            &train_size,
            |b, &n| {
                let train = gmm.sample_batch(Mode::Normal, n, &mut rng);
                let mut knn = KnnClassifier::new(7);
                knn.train(&train);
                b.iter(|| black_box(knn.misclassification_pct(&batch)));
            },
        );
    }
    group.finish();
}

fn bench_linreg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linreg_fit");
    group.sample_size(20);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
    let gen = RegressionGenerator::paper();
    for &train_size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(train_size),
            &train_size,
            |b, &n| {
                let train = gen.sample_batch(Mode::Normal, n, &mut rng);
                b.iter(|| {
                    let mut model = LinearRegression::new(true);
                    model.train(&train);
                    black_box(model.coefficients().to_vec())
                });
            },
        );
    }
    group.finish();
}

fn bench_naive_bayes(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_bayes_fit");
    group.sample_size(20);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
    let gen = UsenetGenerator::paper();
    for &train_size in &[300usize, 1_500, 15_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(train_size),
            &train_size,
            |b, &n| {
                let train: Vec<_> = (0..n as u64).map(|i| gen.message(i, &mut rng)).collect();
                b.iter(|| {
                    let mut model = NaiveBayes::new(gen.vocab_size() as usize);
                    model.train(&train);
                    black_box(model.is_trained())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = ml_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_knn, bench_linreg, bench_naive_bayes
}

criterion_main!(ml_benches);
