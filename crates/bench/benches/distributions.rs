//! Cost of the exact variate generators (the paper's refs [21]/[22]):
//! BINV vs BTPE binomial paths, hypergeometric inversion, multivariate
//! splits, stochastic rounding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use tbs_stats::binomial::binomial;
use tbs_stats::hypergeometric::hypergeometric;
use tbs_stats::multivariate::multivariate_hypergeometric;
use tbs_stats::rng::Xoshiro256PlusPlus;
use tbs_stats::rounding::stochastic_round;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    group.sample_size(30);
    // (n, p): BINV territory (np < 10) and BTPE territory (np >= 10).
    for &(n, p, label) in &[
        (100u64, 0.05f64, "binv_small"),
        (1_000_000, 5e-6, "binv_large_n"),
        (1_000, 0.4, "btpe_medium"),
        (10_000_000, 0.3, "btpe_huge"),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
            b.iter(|| binomial(&mut rng, black_box(n), black_box(p)));
        });
    }
    group.finish();
}

fn bench_hypergeometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypergeometric");
    group.sample_size(30);
    for &(k, a, b_, label) in &[
        (10u64, 20u64, 30u64, "tiny"),
        (1_000, 5_000, 5_000, "medium"),
        (100_000, 1_000_000, 9_000_000, "large"),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |bch| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
            bch.iter(|| hypergeometric(&mut rng, black_box(k), black_box(a), black_box(b_)));
        });
    }
    group.finish();
}

fn bench_multivariate(c: &mut Criterion) {
    let mut group = c.benchmark_group("multivariate_hypergeometric");
    group.sample_size(30);
    for &workers in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |bch, &w| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            let sizes = vec![10_000u64; w];
            bch.iter(|| multivariate_hypergeometric(&mut rng, black_box(&sizes), 5_000));
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    c.bench_function("stochastic_round", |b| {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        b.iter(|| stochastic_round(&mut rng, black_box(1234.567)));
    });
}

criterion_group! {
    name = distribution_benches;
    // Short measurement windows keep the full-workspace bench run
    // in the minutes range; increase locally for tighter CIs.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_binomial,
    bench_hypergeometric,
    bench_multivariate,
    bench_rounding
}

criterion_main!(distribution_benches);
