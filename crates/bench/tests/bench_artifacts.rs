//! Every committed `BENCH_*.json` baseline at the repo root must parse
//! and conform to the shared row schema — including historical artifacts
//! like `BENCH_throughput_pre_refactor.json`, which CI long ignored.
//!
//! The emitting binaries self-validate what they *write*; this test
//! validates what is *checked in*, so a hand-edited or truncated baseline
//! fails `cargo test` instead of silently gating future PRs against
//! garbage.

use std::collections::BTreeMap;
use tbs_bench::experiments::scaling::SCALING_ROW_KEYS;
use tbs_bench::experiments::serving::SERVING_ROW_KEYS;
use tbs_bench::experiments::throughput::THROUGHPUT_ROW_KEYS;
use tbs_bench::experiments::wire::{GATE_MIN_QPS_PER_CONN, WIRE_ROW_KEYS};
use tbs_bench::json::{parse, validate_bench_doc, Json};
use tbs_bench::output::workspace_root;

/// The schema registry: `bench` tag → required per-row keys beyond the
/// shared core. A committed document whose tag is not listed here fails
/// the test — add the new bench's keys when adding a new artifact.
fn schemas() -> BTreeMap<&'static str, &'static [&'static str]> {
    BTreeMap::from([
        ("throughput", THROUGHPUT_ROW_KEYS),
        ("scaling", SCALING_ROW_KEYS),
        ("serving", SERVING_ROW_KEYS),
    ])
}

#[test]
fn every_committed_bench_artifact_passes_the_shared_validator() {
    let root = workspace_root();
    let schemas = schemas();
    let mut checked = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read workspace root") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        let tag = match doc.get("bench") {
            Some(Json::Str(tag)) => tag.clone(),
            other => panic!("{name}: missing/invalid bench tag: {other:?}"),
        };
        let extra_keys = schemas
            .get(tag.as_str())
            .unwrap_or_else(|| panic!("{name}: bench tag {tag:?} has no registered schema"));
        validate_bench_doc(&doc, &tag, extra_keys)
            .unwrap_or_else(|e| panic!("{name}: schema violation: {e}"));
        checked.push(name.to_string());
    }
    checked.sort();
    // The four baselines this repo currently commits; growing the list is
    // fine, silently checking nothing is not.
    assert!(
        checked.len() >= 4,
        "expected at least the 4 committed BENCH artifacts, found {checked:?}"
    );
    for expected in [
        "BENCH_scaling.json",
        "BENCH_serving.json",
        "BENCH_throughput.json",
        "BENCH_throughput_pre_refactor.json",
    ] {
        assert!(
            checked.iter().any(|c| c == expected),
            "missing committed artifact {expected} (found {checked:?})"
        );
    }
}

#[test]
fn committed_scaling_baseline_passes_the_cliff_gate() {
    // The 8-shard-cliff fix is part of the committed artifact: saturated
    // R-TBS aggregate at K=8 must clear twice the pre-fix 267.7M items/s
    // row, K=16 must not regress below K=8, and — since the flattened-tail
    // PR — K=32 must not regress below K=16. The bench recorded the
    // verdict; re-check the numbers so a hand-edited pass flag fails.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_scaling.json"))
        .expect("committed BENCH_scaling.json");
    let doc = parse(&text).expect("valid JSON");
    let gate = doc
        .get("summary")
        .and_then(|s| s.get("gate"))
        .expect("scaling summary gate");
    assert_eq!(gate.get("pass"), Some(&Json::Bool(true)), "gate: {gate}");
    let num = |key: &str| match gate.get(key) {
        Some(Json::Num(v)) => *v,
        other => panic!("gate {key} missing: {other:?}"),
    };
    let k8 = num("k8_items_per_sec_aggregate");
    let k16 = num("k16_items_per_sec_aggregate");
    let k32 = num("k32_items_per_sec_aggregate");
    let floor = num("k8_floor_items_per_sec");
    assert!(floor >= 535.4e6, "floor weakened to {floor}");
    assert!(k8 >= floor, "K=8 aggregate {k8} below floor {floor}");
    assert!(k16 >= k8, "K=16 aggregate {k16} regressed below K=8 {k8}");
    assert!(
        k32 >= k16,
        "K=32 aggregate {k32} regressed below K=16 {k16}"
    );
}

#[test]
fn committed_throughput_baseline_passes_its_gates() {
    // The durability row (PR 8) made the throughput artifact carry gate
    // verdicts too: the facade within 10% of the raw fast path, jump
    // ingest ≥2× per-item, the jump row within 10% of the committed
    // absolute baseline, and automatic checkpointing keeping ≥50% of
    // jump throughput. Re-check the recorded ratios so a hand-edited
    // pass flag fails.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_throughput.json"))
        .expect("committed BENCH_throughput.json");
    let doc = parse(&text).expect("valid JSON");
    let gates = doc
        .get("summary")
        .and_then(|s| s.get("gates"))
        .expect("throughput summary gates");
    let ratio = |name: &str| {
        let gate = gates
            .get(name)
            .unwrap_or_else(|| panic!("missing gate {name}: {gates}"));
        assert_eq!(gate.get("pass"), Some(&Json::Bool(true)), "{name}: {gate}");
        match gate.get("ratio") {
            Some(Json::Num(v)) => *v,
            other => panic!("{name} ratio missing: {other:?}"),
        }
    };
    assert!(ratio("facade_overhead") >= 0.9);
    assert!(ratio("jump_speedup") >= 2.0);
    assert!(ratio("jump_vs_committed_baseline") >= 0.9);
    assert!(ratio("checkpoint_overhead") >= 0.5);
}

#[test]
fn committed_serving_baseline_passes_its_own_gate() {
    // The acceptance gate is part of the committed artifact: R-TBS
    // saturated ingest under 4 concurrent readers within 10% of the
    // committed 265.1M items/s single-thread baseline, and the bench
    // recorded the pass verdict.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_serving.json"))
        .expect("committed BENCH_serving.json");
    let doc = parse(&text).expect("valid JSON");
    let gate = doc
        .get("summary")
        .and_then(|s| s.get("gate"))
        .expect("serving summary gate");
    assert_eq!(gate.get("pass"), Some(&Json::Bool(true)), "gate: {gate}");
    match gate.get("ratio") {
        Some(Json::Num(ratio)) => assert!(*ratio >= 0.9, "gate ratio {ratio} < 0.9"),
        other => panic!("gate ratio missing: {other:?}"),
    }
}

#[test]
fn committed_wire_subdocument_passes_validator_and_both_gates() {
    // PR 9 nested the framed-TCP serving tier's results inside
    // `BENCH_serving.json` under `wire`. The sub-document must conform to
    // its own `serving_wire` row schema, and the recorded gate numbers —
    // single-connection loopback GET_SAMPLE QPS and mixed wire-load
    // ingest vs the committed baseline — must actually clear their
    // thresholds, so a hand-edited pass flag fails.
    let text = std::fs::read_to_string(workspace_root().join("BENCH_serving.json"))
        .expect("committed BENCH_serving.json");
    let doc = parse(&text).expect("valid JSON");
    let wire = doc.get("wire").expect("wire sub-document");
    validate_bench_doc(wire, "serving_wire", WIRE_ROW_KEYS)
        .unwrap_or_else(|e| panic!("wire sub-document schema violation: {e}"));
    let summary = wire.get("summary").expect("wire summary");

    let qps_gate = summary.get("get_sample_gate").expect("get_sample_gate");
    assert_eq!(
        qps_gate.get("pass"),
        Some(&Json::Bool(true)),
        "gate: {qps_gate}"
    );
    match qps_gate.get("qps_per_conn") {
        Some(Json::Num(qps)) => assert!(
            *qps >= GATE_MIN_QPS_PER_CONN,
            "single-connection QPS {qps} below {GATE_MIN_QPS_PER_CONN}"
        ),
        other => panic!("qps_per_conn missing: {other:?}"),
    }

    let mixed_gate = summary.get("mixed_gate").expect("mixed_gate");
    assert_eq!(
        mixed_gate.get("pass"),
        Some(&Json::Bool(true)),
        "gate: {mixed_gate}"
    );
    match mixed_gate.get("ratio") {
        Some(Json::Num(ratio)) => assert!(*ratio >= 0.9, "mixed wire ratio {ratio} < 0.9"),
        other => panic!("mixed gate ratio missing: {other:?}"),
    }
}
