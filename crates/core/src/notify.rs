//! A notification primitive serving blocking threads *and* parked async
//! tasks from one wake source.
//!
//! The serving tier needs [`crate::frozen::FrozenSample`] publication to
//! wake two kinds of consumers: OS threads blocked in
//! `EpochCell::wait_for_epoch` (a condvar wait), and network connection
//! *tasks* long-polling `SUBSCRIBE_EPOCH` — which must park a [`Waker`],
//! not a thread, so one executor thread can hold thousands of idle
//! subscriptions. [`Notify`] unifies both under a single generation
//! counter: every `notify_all` bumps the generation, wakes every blocked
//! thread, and fires every registered waker.
//!
//! ## The lost-wakeup discipline
//!
//! Both wait paths follow the same protocol:
//!
//! 1. read the generation ([`Notify::generation`] or the value returned
//!    by [`Notify::register`]),
//! 2. re-check the external condition,
//! 3. sleep only while the generation still equals the one read in (1).
//!
//! A notification that lands between (2) and (3) has already bumped the
//! generation, so [`Notify::wait_past`] returns immediately and
//! [`Notify::register`] refuses the registration — the caller loops and
//! re-checks. No wakeup can be lost, because the condition is always
//! re-examined after any generation the sleeper has not yet seen.

use std::sync::{Condvar, Mutex};
use std::task::Waker;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    /// Bumped by every `notify_all`; sleepers wait for it to move.
    generation: u64,
    /// Async waiters parked since the last notification.
    wakers: Vec<Waker>,
}

/// A generation-counted notifier for mixed thread/task waiters; see the
/// module docs for the wait protocol.
#[derive(Debug, Default)]
pub struct Notify {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Outcome of [`Notify::wait_past`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The generation moved past the one handed in.
    Notified,
    /// The deadline elapsed first.
    TimedOut,
}

impl Notify {
    /// A fresh notifier at generation 0 with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation. Read this *before* checking the condition
    /// you intend to sleep on, then hand it to [`Notify::wait_past`] /
    /// [`Notify::register`].
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("notify lock").generation
    }

    /// Bump the generation, wake every blocked thread, and fire every
    /// registered waker.
    pub fn notify_all(&self) {
        let wakers = {
            let mut inner = self.inner.lock().expect("notify lock");
            inner.generation = inner.generation.wrapping_add(1);
            std::mem::take(&mut inner.wakers)
        };
        self.cv.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }

    /// Block the calling thread until the generation moves past `seen`
    /// or `deadline` passes (`None` = wait forever). Returns immediately
    /// if the generation already differs from `seen`.
    pub fn wait_past(&self, seen: u64, deadline: Option<Instant>) -> WaitOutcome {
        let mut inner = self.inner.lock().expect("notify lock");
        while inner.generation == seen {
            match deadline {
                None => inner = self.cv.wait(inner).expect("notify lock"),
                Some(deadline) => {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        return WaitOutcome::TimedOut;
                    };
                    let (guard, timeout) = self.cv.wait_timeout(inner, left).expect("notify lock");
                    inner = guard;
                    if timeout.timed_out() && inner.generation == seen {
                        return WaitOutcome::TimedOut;
                    }
                }
            }
        }
        WaitOutcome::Notified
    }

    /// Register `waker` to fire at the next notification, *provided* the
    /// generation still equals `seen`. Returns `Ok(())` on registration
    /// (the caller must return `Pending`) or `Err(current)` when the
    /// generation already moved — the caller re-checks its condition
    /// instead of parking, closing the lost-wakeup window.
    pub fn register(&self, seen: u64, waker: &Waker) -> Result<(), u64> {
        let mut inner = self.inner.lock().expect("notify lock");
        if inner.generation != seen {
            return Err(inner.generation);
        }
        // Re-registration by the same task replaces its stale waker
        // instead of accumulating one entry per poll.
        if let Some(slot) = inner.wakers.iter_mut().find(|w| w.will_wake(waker)) {
            slot.clone_from(waker);
        } else {
            inner.wakers.push(waker.clone());
        }
        Ok(())
    }

    /// Number of currently registered async waiters (diagnostics/tests).
    pub fn registered(&self) -> usize {
        self.inner.lock().expect("notify lock").wakers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::{Wake, Waker};
    use std::time::Duration;

    struct CountingWake(AtomicUsize);
    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn wait_past_returns_immediately_on_stale_generation() {
        let n = Notify::new();
        let seen = n.generation();
        n.notify_all();
        assert_eq!(n.wait_past(seen, None), WaitOutcome::Notified);
    }

    #[test]
    fn wait_past_times_out() {
        let n = Notify::new();
        let seen = n.generation();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(n.wait_past(seen, Some(deadline)), WaitOutcome::TimedOut);
    }

    #[test]
    fn notify_wakes_a_blocked_thread() {
        let n = Arc::new(Notify::new());
        let seen = n.generation();
        let n2 = Arc::clone(&n);
        let waiter = std::thread::spawn(move || n2.wait_past(seen, None));
        std::thread::sleep(Duration::from_millis(10));
        n.notify_all();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn register_fires_wakers_and_rejects_stale_generations() {
        let n = Notify::new();
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let seen = n.generation();
        n.register(seen, &waker).expect("fresh generation");
        // Same task re-registering replaces, not accumulates.
        n.register(seen, &waker).expect("still fresh");
        assert_eq!(n.registered(), 1);
        n.notify_all();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert_eq!(n.registered(), 0);
        // After the bump the old generation is refused.
        assert_eq!(n.register(seen, &waker), Err(seen + 1));
    }
}
