//! Monte-Carlo verification of inclusion probabilities.
//!
//! The paper's central correctness claim is equation (1): the ratio of
//! appearance probabilities of items from different batches equals
//! `e^{−λ·Δt}`. This module estimates appearance probabilities empirically
//! by replaying a fixed batch-size schedule many times with tagged items —
//! used both by the statistical test-suites and by the `inclusion_check`
//! experiment binary that contrasts R-TBS (conforming) with B-Chao
//! (violating during fill-up / slow arrivals).

use crate::traits::BatchSampler;
use rand::RngCore;

/// A stream item tagged with its batch index, for tracking appearances.
pub type Tagged = (u32, u32);

/// Empirical appearance statistics for one batch of the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchInclusion {
    /// Index of the batch in the schedule (arrival time, 0-based).
    pub batch: usize,
    /// Number of items the batch contained.
    pub batch_size: u64,
    /// Empirical probability that a given item of this batch is in the final
    /// sample.
    pub probability: f64,
    /// Monte-Carlo standard error of `probability`.
    pub std_error: f64,
}

/// Replay `schedule` (batch sizes at times 0, 1, 2, …) `trials` times
/// through fresh samplers produced by `make_sampler`, and estimate each
/// batch's per-item appearance probability in the *final* sample.
pub fn measure_inclusion<S, F>(
    mut make_sampler: F,
    schedule: &[u64],
    trials: usize,
    rng: &mut dyn RngCore,
) -> Vec<BatchInclusion>
where
    S: BatchSampler<Tagged>,
    F: FnMut() -> S,
{
    assert!(trials > 0, "need at least one trial");
    let mut appearances = vec![0u64; schedule.len()];
    for _ in 0..trials {
        let mut sampler = make_sampler();
        for (bi, &size) in schedule.iter().enumerate() {
            let batch: Vec<Tagged> = (0..size as u32).map(|i| (bi as u32, i)).collect();
            sampler.observe(batch, rng);
        }
        for (bi, _) in sampler.sample(rng) {
            appearances[bi as usize] += 1;
        }
    }
    schedule
        .iter()
        .enumerate()
        .map(|(bi, &size)| {
            let denom = trials as f64 * size as f64;
            let p = if size == 0 {
                0.0
            } else {
                appearances[bi] as f64 / denom
            };
            let se = if size == 0 {
                0.0
            } else {
                (p * (1.0 - p) / denom).sqrt()
            };
            BatchInclusion {
                batch: bi,
                batch_size: size,
                probability: p,
                std_error: se,
            }
        })
        .collect()
}

/// Maximum absolute deviation between the measured adjacent-batch inclusion
/// ratios `p_{t}/p_{t+1}` and the decay-mandated `e^{−λ}`, over batch pairs
/// whose estimates are reliable (both probabilities above `min_prob`).
///
/// A correct sampler drives this to ~0 (up to Monte-Carlo noise); B-Chao
/// does not during fill-up.
pub fn max_ratio_violation(stats: &[BatchInclusion], lambda: f64, min_prob: f64) -> f64 {
    let target = (-lambda).exp();
    let mut worst = 0.0f64;
    for pair in stats.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.batch_size == 0 || b.batch_size == 0 {
            continue;
        }
        if a.probability < min_prob || b.probability < min_prob {
            continue;
        }
        let ratio = a.probability / b.probability;
        worst = worst.max((ratio - target).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btbs::BTbs;
    use crate::chao::BChao;
    use crate::rtbs::RTbs;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn btbs_satisfies_ratio_property() {
        let lambda = 0.4;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let schedule = [5u64, 5, 5, 5];
        let stats = measure_inclusion(|| BTbs::new(lambda), &schedule, 30_000, &mut rng);
        let v = max_ratio_violation(&stats, lambda, 0.05);
        assert!(v < 0.05, "B-TBS ratio violation {v}");
    }

    #[test]
    fn rtbs_satisfies_ratio_property_through_saturation() {
        let lambda = 0.3;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        // Saturates (capacity 8 < total arrivals) and keeps decaying.
        let schedule = [6u64, 6, 6, 6, 6];
        let stats = measure_inclusion(|| RTbs::new(lambda, 8), &schedule, 40_000, &mut rng);
        let v = max_ratio_violation(&stats, lambda, 0.02);
        assert!(v < 0.05, "R-TBS ratio violation {v}");
    }

    #[test]
    fn chao_violates_ratio_during_fill_up() {
        let lambda = 0.3;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        // Capacity far above arrivals: the whole run is fill-up.
        let schedule = [6u64, 6, 6, 6];
        let stats = measure_inclusion(|| BChao::new(lambda, 1000), &schedule, 4_000, &mut rng);
        // Every batch fully retained → all probabilities 1, ratio 1.
        let v = max_ratio_violation(&stats, lambda, 0.02);
        let expected_gap = 1.0 - (-lambda).exp();
        assert!(
            (v - expected_gap).abs() < 0.02,
            "expected fill-up violation ≈ {expected_gap}, measured {v}"
        );
    }

    #[test]
    fn empty_batches_are_skipped_in_ratio() {
        let lambda = 0.5;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let schedule = [4u64, 0, 4];
        let stats = measure_inclusion(|| BTbs::new(lambda), &schedule, 5_000, &mut rng);
        assert_eq!(stats[1].batch_size, 0);
        assert_eq!(stats[1].probability, 0.0);
        // Ratio check must not trip over the empty batch.
        let _ = max_ratio_violation(&stats, lambda, 0.01);
    }

    #[test]
    fn std_error_shrinks_with_trials() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let schedule = [10u64];
        let few = measure_inclusion(|| BTbs::new(0.1), &schedule, 100, &mut rng);
        let many = measure_inclusion(|| BTbs::new(0.1), &schedule, 10_000, &mut rng);
        // p = 1 for the most recent batch in B-TBS, so SE = 0 in both; use a
        // decayed batch instead.
        let schedule = [10u64, 0, 0];
        let few = [
            few,
            measure_inclusion(|| BTbs::new(0.3), &schedule, 100, &mut rng),
        ];
        let many = [
            many,
            measure_inclusion(|| BTbs::new(0.3), &schedule, 10_000, &mut rng),
        ];
        assert!(many[1][0].std_error < few[1][0].std_error);
    }
}
