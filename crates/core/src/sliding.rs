//! Sliding-window baselines (§1, §6).
//!
//! The paper's `SW` comparator retains the most recent items and forgets
//! everything older — the "all-or-nothing" inclusion mechanism whose
//! brittleness under recurring patterns motivates time-biased sampling.
//! Two variants:
//!
//! * [`CountWindow`] — the last `n` items (the §6 baseline: "SW contains the
//!   last 1000 items"), bounding memory deterministically;
//! * [`TimeWindow`] — all items that arrived within the last `w` time units
//!   (unbounded memory when the arrival rate is high, and shrinking toward
//!   empty when the stream dries up — like any wall-clock scheme).

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use rand::Rng;
use std::collections::VecDeque;

/// The last `n` items of the stream.
#[derive(Debug, Clone)]
pub struct CountWindow<T> {
    items: VecDeque<T>,
    capacity: usize,
    steps: u64,
}

impl<T> CountWindow<T> {
    /// Create a window retaining the most recent `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            steps: 0,
        }
    }

    /// Exact current size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over the retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Advance the clock by one time unit and absorb the arriving batch.
    /// Deterministic — `rng` is unused and accepted only for signature
    /// uniformity; at capacity the ring buffer allocates nothing.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, _rng: &mut R) {
        for item in batch {
            if self.items.len() == self.capacity {
                self.items.pop_front();
            }
            self.items.push_back(item);
        }
        self.steps += 1;
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.items.len() as f64
    }

    /// Hard upper bound on the window size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// All-or-nothing retention: decay rate 0.
    pub fn decay_rate(&self) -> f64 {
        0.0
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "SW"
    }
}

impl<T: Clone> CountWindow<T> {
    /// Copy out the current window contents, oldest first.
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

impl<T: Wire> CountWindow<T> {
    /// Serialize the complete window state (items oldest-first) into `w`;
    /// see [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.steps);
        w.put_u32(self.items.len() as u32);
        for item in &self.items {
            w.put_item(item);
        }
    }

    /// Rebuild a window from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("count window capacity"));
        }
        let steps = r.get_u64()?;
        let len = r.get_u32()? as usize;
        if len > capacity {
            return Err(CheckpointError::Corrupt("count window item count"));
        }
        // Allocate from the (bounds-checked) item count, never from the
        // blob's capacity field; the ring buffer regrows lazily.
        r.check_count(len, 4)?;
        let mut items = VecDeque::with_capacity(len);
        for _ in 0..len {
            items.push_back(r.get_item()?);
        }
        Ok(Self {
            items,
            capacity,
            steps,
        })
    }
}

adapt_batch_sampler!(CountWindow);

/// All items that arrived strictly within the last `width` time units.
#[derive(Debug, Clone)]
pub struct TimeWindow<T> {
    /// (arrival time, item), oldest first.
    items: VecDeque<(f64, T)>,
    width: f64,
    now: f64,
    steps: u64,
}

impl<T> TimeWindow<T> {
    /// Create a wall-clock window of the given `width > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    pub fn new(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "window width must be positive and finite, got {width}"
        );
        Self {
            items: VecDeque::new(),
            width,
            now: 0.0,
            steps: 0,
        }
    }

    /// Exact current size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current wall-clock time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The configured window width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    fn advance(&mut self, batch: Vec<T>, gap: f64) {
        self.now += gap;
        let cutoff = self.now - self.width;
        while self.items.front().is_some_and(|(t, _)| *t <= cutoff) {
            self.items.pop_front();
        }
        let now = self.now;
        self.items.extend(batch.into_iter().map(|x| (now, x)));
        self.steps += 1;
    }

    /// Advance the clock by one time unit and absorb the arriving batch.
    /// Deterministic — `rng` is unused and accepted only for signature
    /// uniformity.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, _rng: &mut R) {
        self.advance(batch, 1.0);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, batch: Vec<T>, gap: f64, _rng: &mut R) {
        check_gap(gap);
        self.advance(batch, gap);
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.items.len() as f64
    }

    /// No bound: memory is unbounded under fast arrivals.
    pub fn max_size(&self) -> Option<usize> {
        None
    }

    /// All-or-nothing retention: decay rate 0.
    pub fn decay_rate(&self) -> f64 {
        0.0
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "SW-time"
    }
}

impl<T: Clone> TimeWindow<T> {
    /// Copy out the current window contents, oldest first.
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.items.iter().map(|(_, x)| x.clone()).collect()
    }
}

impl<T: Wire> TimeWindow<T> {
    /// Serialize the complete window state (arrival-stamped items,
    /// oldest first) into `w`; see [`crate::RTbs::save_state`] for the
    /// contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.width);
        w.put_f64(self.now);
        w.put_u64(self.steps);
        w.put_u32(self.items.len() as u32);
        for (t, item) in &self.items {
            w.put_f64(*t);
            w.put_item(item);
        }
    }

    /// Rebuild a window from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let width = r.get_f64()?;
        if !(width.is_finite() && width > 0.0) {
            return Err(CheckpointError::Corrupt("time window width"));
        }
        let now = check_non_negative(r.get_f64()?, "time window clock")?;
        let steps = r.get_u64()?;
        let len = r.get_u32()? as usize;
        // Each entry costs ≥ 8 (time) + 4 (item length prefix) bytes.
        r.check_count(len, 12)?;
        let mut items = VecDeque::with_capacity(len);
        let mut prev = 0.0f64;
        for _ in 0..len {
            let t = check_non_negative(r.get_f64()?, "time window arrival time")?;
            // The structure's invariants: arrival times are oldest-first
            // and never ahead of the restored clock. Accepting a
            // violation would rebuild a window whose eviction sweep
            // silently stops early.
            if t > now || t < prev {
                return Err(CheckpointError::Corrupt("time window arrival order"));
            }
            prev = t;
            items.push_back((t, r.get_item()?));
        }
        Ok(Self {
            items,
            width,
            now,
            steps,
        })
    }
}

adapt_batch_sampler!(TimeWindow);
adapt_timed_batch_sampler!(TimeWindow);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn count_window_keeps_exactly_last_n() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut w = CountWindow::new(5);
        w.observe((0..3u32).collect(), &mut rng);
        assert_eq!(w.sample(&mut rng), vec![0, 1, 2]);
        w.observe((3..9u32).collect(), &mut rng);
        assert_eq!(w.sample(&mut rng), vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn count_window_single_oversized_batch() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut w = CountWindow::new(3);
        w.observe((0..10u32).collect(), &mut rng);
        assert_eq!(w.sample(&mut rng), vec![7, 8, 9]);
    }

    #[test]
    fn count_window_completely_forgets_old_data() {
        // The all-or-nothing failure mode: after n newer items, an old item's
        // inclusion probability is exactly zero.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut w = CountWindow::new(4);
        w.observe(vec![99u32], &mut rng);
        w.observe((0..4u32).collect(), &mut rng);
        assert!(!w.sample(&mut rng).contains(&99));
    }

    #[test]
    fn time_window_evicts_by_age() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut w = TimeWindow::new(2.5);
        w.observe(vec![1u32], &mut rng); // t=1
        w.observe(vec![2u32], &mut rng); // t=2
        w.observe(vec![3u32], &mut rng); // t=3
        assert_eq!(w.len(), 3);
        w.observe(vec![4u32], &mut rng); // t=4: item from t=1 is 3.0 > 2.5 old
        let s = w.sample(&mut rng);
        assert!(!s.contains(&1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn time_window_shrinks_when_stream_dries_up() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut w = TimeWindow::new(3.0);
        w.observe((0..10u32).collect(), &mut rng);
        for _ in 0..4 {
            w.observe(vec![], &mut rng);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn time_window_unbounded_under_fast_arrivals() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut w = TimeWindow::new(10.0);
        for t in 0..5u32 {
            w.observe((0..1000).map(|i| t * 1000 + i).collect(), &mut rng);
        }
        assert_eq!(w.len(), 5000);
        assert_eq!(w.max_size(), None);
    }

    #[test]
    fn time_window_real_valued_gaps() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut w = TimeWindow::new(1.0);
        w.observe_after(vec![1u32], 0.4, &mut rng);
        w.observe_after(vec![2u32], 0.4, &mut rng);
        w.observe_after(vec![3u32], 0.4, &mut rng);
        // First item is now 0.8 old — still inside; after one more gap it
        // leaves.
        assert_eq!(w.len(), 3);
        w.observe_after(vec![], 0.4, &mut rng);
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn count_window_rejects_zero() {
        CountWindow::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn time_window_rejects_zero() {
        TimeWindow::<u8>::new(0.0);
    }

    #[test]
    fn metadata() {
        let w = CountWindow::<u8>::new(7);
        assert_eq!(w.name(), "SW");
        assert_eq!(w.max_size(), Some(7));
        let t = TimeWindow::<u8>::new(2.0);
        assert_eq!(t.name(), "SW-time");
    }
}
