//! # tbs-core
//!
//! Temporally-biased stream sampling — the algorithmic core of the EDBT 2018
//! paper *Temporally-Biased Sampling for Online Model Management*
//! (Hentschel, Haas & Tian).
//!
//! ## The problem
//!
//! Maintain a sample `S_t` over a stream of batches such that items decay
//! exponentially in *wall-clock* time: for items `i`, `j` arriving at times
//! `t′ ≤ t″`,
//!
//! ```text
//! Pr[i ∈ S_t] / Pr[j ∈ S_t] = e^{−λ (t″ − t′)}        (1)
//! ```
//!
//! while keeping the sample size under control. Retraining ML models on such
//! samples keeps them fresh *and* robust to recurring patterns — unlike
//! sliding windows, which forget old data entirely.
//!
//! ## The schemes
//!
//! | Scheme | Decay control | Size control | Varying arrival rate |
//! |---|---|---|---|
//! | [`btbs::BTbs`] (Alg. 4) | exact (1) | none | yes |
//! | [`brs::BatchedReservoir`] (Alg. 5) | none (λ=0) | hard bound | yes |
//! | [`ttbs::TTbs`] (Alg. 1) | exact (1) | probabilistic target | **no** — needs known constant mean batch size |
//! | [`chao::BChao`] (Alg. 6/7) | violated at fill-up / slow arrivals | hard bound (never shrinks) | partially |
//! | [`rtbs::RTbs`] (Alg. 2) | exact (1), always | hard bound, optimal E-size & variance | yes |
//! | [`sliding::CountWindow`] | all-or-nothing | hard bound | yes |
//! | [`sliding::TimeWindow`] | all-or-nothing | none | yes |
//!
//! ## Sharding
//!
//! R-TBS and T-TBS are **mergeable** ([`merge`]): K independent shard
//! samplers over a deterministic partition of the stream can be unioned —
//! via the paper's §5 weight algebra, with stochastic rounding of the
//! fractional items — into a sample statistically equivalent to a
//! single-node sampler over the interleaved stream. This is what lets the
//! multi-core engine in `tbs-distributed` ingest with zero cross-shard
//! coordination.
//!
//! ## Two API layers
//!
//! Every sampler's ingest API exists twice (see [`traits`] for the full
//! rationale):
//!
//! * **inherent generic methods** (`observe<R: Rng>`, `observe_after`,
//!   `sample`, `sample_into`) — the monomorphized fast path. With a
//!   concrete RNG the per-batch transition inlines every random draw and
//!   performs zero steady-state heap allocations beyond the caller-provided
//!   batch. Concrete call sites get this automatically: inherent methods
//!   shadow the trait methods of the same name.
//! * the object-safe [`traits::BatchSampler`] / [`traits::TimedBatchSampler`]
//!   (`&mut dyn RngCore`) — thin adapters over the inherent methods, for
//!   heterogeneous `Box<dyn BatchSampler<T>>` collections (the ML pipeline,
//!   the evaluation harness). The `bench_throughput` binary in `tbs-bench`
//!   measures the dispatch cost of this layer (`fast` vs `dyn` rows).
//!
//! Service code should usually enter through the root crate's
//! `temporal_sampling::api` facade instead: a validating builder over all
//! of these samplers (errors instead of panics), a unified handle that
//! owns its RNG, and versioned snapshot/restore built on [`checkpoint`]
//! and each sampler's `save_state`/`load_state` pair. The facade's
//! `observe` enum-dispatches straight onto the inherent fast path
//! (`facade` rows in the same benchmark).
//!
//! ## Example
//!
//! Feed 50 batches to R-TBS with decay rate λ = 0.07 and a hard bound of
//! 100 items, then realize a sample. `rng` is a concrete xoshiro256++, so
//! every call below is monomorphized — no trait import needed:
//!
//! ```rust
//! use rand::SeedableRng;
//! use tbs_core::RTbs;
//! use tbs_stats::rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let mut sampler: RTbs<u64> = RTbs::new(0.07, 100);
//! for t in 0..50u64 {
//!     let batch: Vec<u64> = (0..20).map(|i| t * 20 + i).collect();
//!     sampler.observe(batch, &mut rng);
//! }
//! let sample = sampler.sample(&mut rng);
//! assert!(sample.len() <= 100);
//! // Retraining loops that realize the sample every batch can reuse one
//! // buffer instead of allocating a fresh Vec per call:
//! let mut buf = Vec::new();
//! sampler.sample_into(&mut rng, &mut buf);
//! assert_eq!(buf.len(), sample.len());
//! // The exponential decay law keeps total weight near 20 / (1 − e^{−λ}).
//! assert!(sampler.total_weight() > 100.0);
//! ```

pub mod ares;
pub mod brs;
pub mod btbs;
pub mod chao;
pub mod checkpoint;
pub mod downsample;
pub mod forward;
pub mod frozen;
pub mod jumps;
pub mod latent;
pub mod merge;
pub mod notify;
pub mod rtbs;
pub mod sliding;
pub mod theory;
pub mod traits;
pub mod ttbs;
pub mod util;
pub mod verify;

pub use ares::BAres;
pub use brs::BatchedReservoir;
pub use btbs::BTbs;
pub use chao::BChao;
pub use forward::{DecayGauge, ExponentialGauge, ForwardDecayRTbs, PolynomialGauge};
pub use frozen::FrozenSample;
pub use jumps::{IngestMode, JumpCursor};
pub use latent::LatentSample;
pub use merge::{
    merge_replay, partition_batch, BalancedSplitter, MergePlan, MergeScalars, MergeableSample,
    ShardSpec,
};
pub use rtbs::RTbs;
pub use sliding::{CountWindow, TimeWindow};
pub use traits::{BatchSampler, TimedBatchSampler};
pub use ttbs::TTbs;
