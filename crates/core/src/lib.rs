//! # tbs-core
//!
//! Temporally-biased stream sampling — the algorithmic core of the EDBT 2018
//! paper *Temporally-Biased Sampling for Online Model Management*
//! (Hentschel, Haas & Tian).
//!
//! ## The problem
//!
//! Maintain a sample `S_t` over a stream of batches such that items decay
//! exponentially in *wall-clock* time: for items `i`, `j` arriving at times
//! `t′ ≤ t″`,
//!
//! ```text
//! Pr[i ∈ S_t] / Pr[j ∈ S_t] = e^{−λ (t″ − t′)}        (1)
//! ```
//!
//! while keeping the sample size under control. Retraining ML models on such
//! samples keeps them fresh *and* robust to recurring patterns — unlike
//! sliding windows, which forget old data entirely.
//!
//! ## The schemes
//!
//! | Scheme | Decay control | Size control | Varying arrival rate |
//! |---|---|---|---|
//! | [`btbs::BTbs`] (Alg. 4) | exact (1) | none | yes |
//! | [`brs::BatchedReservoir`] (Alg. 5) | none (λ=0) | hard bound | yes |
//! | [`ttbs::TTbs`] (Alg. 1) | exact (1) | probabilistic target | **no** — needs known constant mean batch size |
//! | [`chao::BChao`] (Alg. 6/7) | violated at fill-up / slow arrivals | hard bound (never shrinks) | partially |
//! | [`rtbs::RTbs`] (Alg. 2) | exact (1), always | hard bound, optimal E-size & variance | yes |
//! | [`sliding::CountWindow`] | all-or-nothing | hard bound | yes |
//! | [`sliding::TimeWindow`] | all-or-nothing | none | yes |
//!
//! All schemes implement [`traits::BatchSampler`]; the decay-aware ones also
//! implement [`traits::TimedBatchSampler`] for real-valued inter-arrival
//! gaps.
//!
//! ## Example
//!
//! Feed 50 batches to R-TBS with decay rate λ = 0.07 and a hard bound of
//! 100 items, then realize a sample:
//!
//! ```rust
//! use rand::SeedableRng;
//! use tbs_core::traits::BatchSampler;
//! use tbs_core::RTbs;
//! use tbs_stats::rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let mut sampler: RTbs<u64> = RTbs::new(0.07, 100);
//! for t in 0..50u64 {
//!     let batch: Vec<u64> = (0..20).map(|i| t * 20 + i).collect();
//!     sampler.observe(batch, &mut rng);
//! }
//! let sample = sampler.sample(&mut rng);
//! assert!(sample.len() <= 100);
//! // The exponential decay law keeps total weight near 20 / (1 − e^{−λ}).
//! assert!(sampler.total_weight() > 100.0);
//! ```

pub mod ares;
pub mod brs;
pub mod btbs;
pub mod chao;
pub mod downsample;
pub mod forward;
pub mod latent;
pub mod rtbs;
pub mod sliding;
pub mod theory;
pub mod traits;
pub mod ttbs;
pub mod util;
pub mod verify;

pub use ares::BAres;
pub use brs::BatchedReservoir;
pub use btbs::BTbs;
pub use chao::BChao;
pub use forward::{DecayGauge, ExponentialGauge, ForwardDecayRTbs, PolynomialGauge};
pub use latent::LatentSample;
pub use rtbs::RTbs;
pub use sliding::{CountWindow, TimeWindow};
pub use traits::{BatchSampler, TimedBatchSampler};
pub use ttbs::TTbs;
