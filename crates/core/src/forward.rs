//! Forward-decay time-biased sampling (the paper's declared future work).
//!
//! §1 and §8 of the paper point to the *forward decay* model of Cormode,
//! Shkapenyuk, Srivastava & Xu (ICDE 2009, the paper's reference \[13\])
//! as the route to arbitrary decay laws: fix a landmark time `L` no later
//! than any arrival, pick a monotone non-decreasing gauge `g`, and give an
//! item that arrived at `t_i` the weight
//!
//! ```text
//! w_t(i) = g(t_i − L) / g(t − L)
//! ```
//!
//! at query time `t`. The decisive property: the *ratio* of two items'
//! weights, `g(t_i − L)/g(t_j − L)`, never changes as `t` advances — so a
//! sampler only needs to apply a **common per-step factor**
//! `g(t−1−L)/g(t−L)` to every stored weight, exactly the operation R-TBS's
//! machinery already performs. [`ForwardDecayRTbs`] therefore delivers all
//! of R-TBS's guarantees (hard size bound, maximal expected size, minimal
//! variance, exact inclusion law) under *any* monotone gauge:
//!
//! * exponential gauge `g(x) = e^{λx}` → classic backward exponential
//!   decay, identical to [`crate::rtbs::RTbs`];
//! * polynomial gauge `g(x) = (1+x)^β` → the polynomial decay laws that
//!   backward schemes cannot support without per-item timestamp updates.

use crate::rtbs::RTbs;
use rand::Rng;

/// A monotone non-decreasing decay gauge `g` with `g(x) > 0` for `x ≥ 0`.
pub trait DecayGauge {
    /// Evaluate `g(x)` for age-from-landmark `x ≥ 0`.
    fn g(&self, x: f64) -> f64;

    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Exponential gauge `g(x) = e^{λx}` — reduces forward decay to the
/// paper's backward exponential decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialGauge {
    /// Rate λ ≥ 0.
    pub lambda: f64,
}

impl DecayGauge for ExponentialGauge {
    fn g(&self, x: f64) -> f64 {
        (self.lambda * x).exp()
    }
    fn name(&self) -> &'static str {
        "exponential"
    }
}

/// Polynomial gauge `g(x) = (1 + x)^β` — heavy-tailed retention: old items
/// decay polynomially rather than exponentially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolynomialGauge {
    /// Exponent β ≥ 0.
    pub beta: f64,
}

impl DecayGauge for PolynomialGauge {
    fn g(&self, x: f64) -> f64 {
        (1.0 + x).powf(self.beta)
    }
    fn name(&self) -> &'static str {
        "polynomial"
    }
}

/// R-TBS under forward decay: a bounded, decay-exact reservoir for any
/// monotone gauge.
///
/// Internally drives an [`RTbs`] core with the time-varying per-step factor
/// `g(t−1−L)/g(t−L)`; the landmark is the construction instant (`L = 0`,
/// first batch arrives at `t = 1`).
#[derive(Debug, Clone)]
pub struct ForwardDecayRTbs<T, G: DecayGauge> {
    core: RTbs<T>,
    gauge: G,
    /// Current time since the landmark (batches observed).
    now: f64,
}

impl<T: Clone, G: DecayGauge> ForwardDecayRTbs<T, G> {
    /// Create an empty forward-decay sampler with capacity `n`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the gauge is non-positive /
    /// decreasing at the origin.
    pub fn new(gauge: G, capacity: usize) -> Self {
        assert!(gauge.g(0.0) > 0.0, "gauge must be positive at 0");
        assert!(gauge.g(1.0) >= gauge.g(0.0), "gauge must be non-decreasing");
        Self {
            // λ = 0 placeholder: every step supplies its own factor.
            core: RTbs::new(0.0, capacity),
            gauge,
            now: 0.0,
        }
    }

    /// Absorb the next batch (arriving one time unit after the previous).
    /// Generic over the RNG: with a concrete generator this is as
    /// monomorphized as the underlying [`RTbs`] fast path.
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, rng: &mut R) {
        let prev = self.now;
        self.now += 1.0;
        // Common factor applied to all previously stored weights.
        let factor = self.gauge.g(prev) / self.gauge.g(self.now);
        debug_assert!(factor > 0.0 && factor <= 1.0);
        self.core.observe_with_decay(batch, factor, rng);
    }

    /// Realize the current sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<T> {
        self.core.sample(rng)
    }

    /// Sample weight `C_t` (expected realized size).
    pub fn sample_weight(&self) -> f64 {
        self.core.sample_weight()
    }

    /// Total normalized weight `W_t = Σ_i g(t_i − L)/g(t − L)`.
    pub fn total_weight(&self) -> f64 {
        self.core.total_weight()
    }

    /// Time since the landmark.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The theoretical relative inclusion ratio between items that arrived
    /// at `t_i` and `t_j`: `g(t_i − L)/g(t_j − L)`, constant in query time.
    pub fn inclusion_ratio(&self, t_i: f64, t_j: f64) -> f64 {
        self.gauge.g(t_i) / self.gauge.g(t_j)
    }

    /// Gauge name for reporting.
    pub fn gauge_name(&self) -> &'static str {
        self.gauge.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn exponential_gauge_matches_backward_rtbs() {
        // Forward decay with g(x) = e^{λx} must reproduce classic R-TBS
        // trajectories exactly (weights, not just distributions).
        let lambda = 0.3;
        let mut rng1 = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut rng2 = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut fwd = ForwardDecayRTbs::new(ExponentialGauge { lambda }, 30);
        let mut bwd: RTbs<u64> = RTbs::new(lambda, 30);
        for t in 0..50u64 {
            let b = [10u64, 0, 25, 5][t as usize % 4];
            let batch: Vec<u64> = (0..b).collect();
            fwd.observe(batch.clone(), &mut rng1);
            bwd.observe(batch, &mut rng2);
            assert!(
                (fwd.total_weight() - bwd.total_weight()).abs() < 1e-9,
                "weights diverged at t={t}: {} vs {}",
                fwd.total_weight(),
                bwd.total_weight()
            );
            assert!((fwd.sample_weight() - bwd.sample_weight()).abs() < 1e-9);
        }
    }

    #[test]
    fn polynomial_gauge_weight_recursion() {
        // W_t = W_{t-1}·g(t-1)/g(t) + |B_t| with g(x) = (1+x)^2.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let gauge = PolynomialGauge { beta: 2.0 };
        let mut s = ForwardDecayRTbs::new(gauge, 1000);
        let mut w = 0.0f64;
        for t in 0..30u64 {
            let b = 7u64;
            let factor = gauge.g(t as f64) / gauge.g(t as f64 + 1.0);
            w = w * factor + b as f64;
            s.observe((0..b).collect(), &mut rng);
            assert!((s.total_weight() - w).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn polynomial_inclusion_ratio_is_polynomial() {
        // Items from batches 1 and 4 (ages measured from the landmark)
        // must appear with probability ratio g(1)/g(4) = (2/5)^β — *not*
        // an exponential in the age difference.
        let beta = 2.0;
        let trials = 60_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut old_hits = 0u64;
        let mut new_hits = 0u64;
        for _ in 0..trials {
            let mut s = ForwardDecayRTbs::new(PolynomialGauge { beta }, 6);
            s.observe(vec![1u8; 4], &mut rng); // t=1
            s.observe(vec![2u8; 4], &mut rng); // t=2
            s.observe(vec![3u8; 4], &mut rng); // t=3
            s.observe(vec![4u8; 4], &mut rng); // t=4
            for item in s.sample(&mut rng) {
                match item {
                    1 => old_hits += 1,
                    4 => new_hits += 1,
                    _ => {}
                }
            }
        }
        let measured = old_hits as f64 / new_hits as f64;
        let expect = (2.0f64 / 5.0).powf(beta);
        assert!(
            (measured - expect).abs() < 0.03,
            "ratio {measured} vs g(1)/g(4) = {expect}"
        );
    }

    #[test]
    fn polynomial_retains_old_items_longer_than_exponential() {
        // Heavy-tailed decay: after many batches, a polynomial gauge keeps
        // substantially more very old weight than exponential decay with a
        // similar initial rate.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let horizon = 60u64;
        let count_old = |sample: &[u64]| sample.iter().filter(|&&x| x == 0).count();
        let mut poly_hits = 0usize;
        let mut exp_hits = 0usize;
        for _ in 0..300 {
            let mut poly = ForwardDecayRTbs::new(PolynomialGauge { beta: 1.5 }, 50);
            let mut expo = ForwardDecayRTbs::new(ExponentialGauge { lambda: 0.4 }, 50);
            for t in 0..horizon {
                let batch: Vec<u64> = vec![t; 10];
                poly.observe(batch.clone(), &mut rng);
                expo.observe(batch, &mut rng);
            }
            poly_hits += count_old(&poly.sample(&mut rng));
            exp_hits += count_old(&expo.sample(&mut rng));
        }
        assert!(
            poly_hits > exp_hits * 2,
            "polynomial ({poly_hits}) should retain far more age-{horizon} \
             items than exponential ({exp_hits})"
        );
    }

    #[test]
    fn size_bound_holds_under_any_gauge() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s = ForwardDecayRTbs::new(PolynomialGauge { beta: 3.0 }, 20);
        for t in 0..100u64 {
            let b = [0u64, 100, 3, 40][t as usize % 4];
            s.observe((0..b).collect(), &mut rng);
            assert!(s.sample(&mut rng).len() <= 20);
        }
    }

    #[test]
    fn inclusion_ratio_helper_is_time_invariant() {
        let s: ForwardDecayRTbs<u8, _> = ForwardDecayRTbs::new(PolynomialGauge { beta: 2.0 }, 10);
        let r = s.inclusion_ratio(2.0, 8.0);
        assert!((r - (3.0f64 / 9.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "per-step decay factor")]
    fn rtbs_decay_hook_rejects_amplification() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut s: RTbs<u8> = RTbs::new(0.1, 10);
        s.observe_with_decay(vec![1], 1.5, &mut rng);
    }
}
