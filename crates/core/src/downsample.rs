//! The downsampling operator (§4.2, Algorithm 3).
//!
//! Given a latent sample `L = (A, π, C)` and a target weight `C′ < C`,
//! downsampling produces `L′ = (A′, π′, C′)` such that **every** item's
//! realized-inclusion probability is scaled by exactly the same factor
//! (Theorem 4.1):
//!
//! ```text
//! Pr[i ∈ S′] = (C′/C) · Pr[i ∈ S]      for all i ∈ L.
//! ```
//!
//! This uniform scaling is forced by the R-TBS invariant
//! `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)`: exponential decay multiplies all item
//! weights by the same factor, so inclusion probabilities must shrink by the
//! same factor too. The algorithm distinguishes three cases by how the
//! integer part of the weight changes, handling the partial item exactly.
//!
//! Beyond per-step decay, this operator is the leaf step of the shard
//! merge (`tbs_core::merge`): each shard's latent sample is downsampled
//! to its share `C·W^k/W` of the merged capacity, which is what lets the
//! `⌈n/K⌉+1` adaptive shard capacity absorb split skew **at merge time**
//! instead of reserving `⌈1/(1−e^{−λ})⌉` slots per shard up front.

use crate::latent::LatentSample;
use crate::util::{retain_random, retain_random_cheap};
use rand::Rng;

/// Downsample `latent` in place from its current weight `C` to `target = C′`.
///
/// Requires `0 < C′ ≤ C`; `C′ = C` is a permitted no-op (it arises for decay
/// rate λ = 0). All randomness is drawn from `rng`.
///
/// # Panics
///
/// Panics if `target` is not in `(0, C]`.
pub fn downsample<T, R: Rng + ?Sized>(latent: &mut LatentSample<T>, target: f64, rng: &mut R) {
    downsample_with(latent, target, rng, false);
}

/// [`downsample`] with a choice of retention sweep. With `cheap = true`
/// the full-item retention draws only `min(k, len − k)` random indices
/// (complement-side Fisher–Yates, see
/// [`retain_random_cheap`](crate::util)): in R-TBS's per-step decay the
/// survivor count `k ≈ e^{−λ}·len` is nearly everything, so sweeping the
/// few *deleted* items costs ~`λ·len` draws instead of `len`. A uniform
/// subset's complement is itself uniform, so both sweeps keep a uniform
/// `k`-subset — the distribution of the result is identical, only the
/// RNG stream differs. Jump-mode ingest uses the cheap side; the default
/// path keeps the historical stream.
pub(crate) fn downsample_with<T, R: Rng + ?Sized>(
    latent: &mut LatentSample<T>,
    target: f64,
    rng: &mut R,
    cheap: bool,
) {
    let c = latent.weight();
    let c_prime = target;
    assert!(
        c_prime > 0.0 && c_prime <= c,
        "downsample target must lie in (0, C]; target={c_prime}, C={c}"
    );
    debug_assert!(latent.check_invariants().is_ok());

    let frac_c = c - c.floor();
    let frac_c_prime = c_prime - c_prime.floor();
    let floor_c = c.floor() as usize;
    let floor_c_prime = c_prime.floor() as usize;

    let u: f64 = rng.gen();

    if floor_c_prime == 0 {
        // No full items retained: at most the (new) partial item survives.
        // With probability 1 − frac(C)/C the partial item is replaced by a
        // uniformly chosen full item before everything else is dropped.
        let keep_partial_prob = if c > 0.0 { frac_c / c } else { 0.0 };
        if u > keep_partial_prob {
            latent.swap1(rng);
        }
        latent.full_mut().clear();
    } else if floor_c_prime == floor_c {
        // No full items deleted; only the partial item's status may change.
        // With probability 1 − ρ the partial item is promoted to full (via
        // swap), where ρ is chosen so Pr[i* ∈ S′] = (C′/C)·frac(C).
        let rho = (1.0 - (c_prime / c) * frac_c) / (1.0 - frac_c_prime);
        if u > rho {
            latent.swap1(rng);
        }
    } else {
        // 0 < ⌊C′⌋ < ⌊C⌋: some full items are deleted.
        let retain: fn(&mut Vec<T>, usize, &mut R) = if cheap {
            retain_random_cheap
        } else {
            retain_random
        };
        if u <= (c_prime / c) * frac_c {
            // Retain the partial item by promoting it to full: keep ⌊C′⌋
            // random full items, then swap the partial in.
            retain(latent.full_mut(), floor_c_prime, rng);
            latent.swap1(rng);
        } else {
            // Eject the partial item: keep ⌊C′⌋ + 1 random full items and
            // demote one of them to partial (overwriting π).
            retain(latent.full_mut(), floor_c_prime + 1, rng);
            latent.move1(rng);
        }
    }

    latent.set_weight(c_prime);
    if frac_c_prime == 0.0 {
        latent.clear_partial();
    }
    debug_assert!(latent.check_invariants().is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    /// Build a latent sample with the given number of full items and an
    /// optional partial item, with weight = full + frac.
    fn make_latent(full: usize, frac: f64, rng: &mut Xoshiro256PlusPlus) -> LatentSample<usize> {
        // Items 0..full are full; item `full` is the partial one (if any).
        if frac > 0.0 {
            let mut l = LatentSample::from_full((0..=full).collect());
            l.move1(rng);
            // move1 picks a random item as partial; relabel so that item ids
            // stay meaningful: we only need *a* valid structure here.
            l.set_weight(full as f64 + frac);
            l.check_invariants().unwrap();
            l
        } else {
            LatentSample::from_full((0..full).collect())
        }
    }

    /// Estimate Pr[item ∈ realized sample] before and after downsampling and
    /// assert the Theorem 4.1 scaling for every item.
    fn check_scaling(full: usize, frac: f64, target: f64, seed: u64) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let trials = 60_000usize;
        let c = full as f64 + frac;
        let n_items = full + usize::from(frac > 0.0);
        let mut appear = vec![0u64; n_items];
        for _ in 0..trials {
            let mut l = make_latent(full, frac, &mut rng);
            downsample(&mut l, target, &mut rng);
            for item in l.realize(&mut rng) {
                appear[item] += 1;
            }
        }
        // Pre-downsampling inclusion probability: full items 1, partial frac.
        // Which item is partial is randomized by make_latent, so average:
        // every item has the same pre probability p_pre = C / n_items.
        let p_pre = c / n_items as f64;
        let expect = (target / c) * p_pre;
        for (i, &cnt) in appear.iter().enumerate() {
            let phat = cnt as f64 / trials as f64;
            let tol = 4.5 * (expect * (1.0 - expect) / trials as f64).sqrt() + 0.004;
            assert!(
                (phat - expect).abs() < tol,
                "item {i}: phat {phat} vs expect {expect} \
                 (full={full}, frac={frac}, target={target})"
            );
        }
    }

    #[test]
    fn scaling_case_integral_to_fractional() {
        // Fig. 4(a): C = 3 → C′ = 1.5.
        check_scaling(3, 0.0, 1.5, 1);
    }

    #[test]
    fn scaling_case_fractional_items_deleted() {
        // Fig. 4(b): C = 3.2 → C′ = 1.6.
        check_scaling(3, 0.2, 1.6, 2);
    }

    #[test]
    fn scaling_case_no_full_retained() {
        // Fig. 4(c): C = 2.4 → C′ = 0.4.
        check_scaling(2, 0.4, 0.4, 3);
    }

    #[test]
    fn scaling_case_no_items_deleted() {
        // Fig. 4(d): C = 2.4 → C′ = 2.1.
        check_scaling(2, 0.4, 2.1, 4);
    }

    #[test]
    fn scaling_case_fractional_to_integral() {
        // C = 4.7 → C′ = 3.0 (line 19 clears the partial slot).
        check_scaling(4, 0.7, 3.0, 5);
    }

    #[test]
    fn scaling_case_sub_unit_weights() {
        // C = 0.9 → C′ = 0.3: only the partial item exists.
        check_scaling(0, 0.9, 0.3, 6);
    }

    #[test]
    fn noop_when_target_equals_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut l = LatentSample::from_full(vec![1, 2, 3]);
        downsample(&mut l, 3.0, &mut rng);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.full_items().len(), 3);
    }

    #[test]
    fn footprint_never_exceeds_floor_plus_one() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        for trial in 0..500 {
            let full = 1 + (trial % 7);
            let frac = [0.0, 0.25, 0.5, 0.9][trial % 4];
            let c = full as f64 + frac;
            let target = c * (0.05 + 0.9 * ((trial * 37 % 100) as f64 / 100.0));
            let mut l = make_latent(full, frac, &mut rng);
            downsample(&mut l, target.max(0.01), &mut rng);
            assert!(l.footprint() <= target.floor() as usize + 1);
            l.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "downsample target")]
    fn rejects_target_above_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut l = LatentSample::from_full(vec![1, 2]);
        downsample(&mut l, 2.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "downsample target")]
    fn rejects_zero_target() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut l = LatentSample::from_full(vec![1, 2]);
        downsample(&mut l, 0.0, &mut rng);
    }
}
