//! A-Res weighted reservoir sampling with exponential time bias (§7).
//!
//! The Efraimidis–Spirakis A-Res scheme (the paper's reference \[16\],
//! adapted to time decay by Cormode et al. \[13\]) keeps the `n` items with
//! the largest keys `u_i^{1/w_i}`, `u_i ~ U(0,1)`, where here
//! `w_i = e^{λ·t_i}` grows with the arrival time so that *relative* weights
//! decay "forward" without per-item updates.
//!
//! The paper's §7 criticism, which this implementation exists to
//! demonstrate: A-Res constrains the *acceptance* mechanics, so the
//! resulting **appearance** probabilities are "both hard to compute and not
//! intuitive" and do **not** satisfy the relative-inclusion law (1) —
//! trivially during fill-up (everything is retained), and measurably in
//! steady state. See the statistical tests below and the
//! `inclusion_check` experiment binary.
//!
//! Numerics: keys are compared in log space, `ln(u_i)·e^{−λ·t_i}` (a
//! negative number increasing toward 0 with weight), which avoids overflow
//! of `e^{λ·t_i}` on long streams.

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::traits::adapt_batch_sampler;
use rand::Rng;

/// One reservoir entry: log-space A-Res key plus the item.
#[derive(Debug, Clone)]
struct Entry<T> {
    /// `ln(u)·e^{−λ t}` — larger (closer to zero) is better.
    log_key: f64,
    item: T,
}

/// Batched A-Res sampler with exponentially growing arrival weights.
#[derive(Debug, Clone)]
pub struct BAres<T> {
    entries: Vec<Entry<T>>,
    lambda: f64,
    capacity: usize,
    steps: u64,
}

impl<T> BAres<T> {
    /// Create an empty A-Res sampler.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative/non-finite or `capacity` is zero.
    pub fn new(lambda: f64, capacity: usize) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity + 1),
            lambda,
            capacity,
            steps: 0,
        }
    }

    /// Current number of stored items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn insert(&mut self, log_key: f64, item: T) {
        if self.entries.len() < self.capacity {
            self.entries.push(Entry { log_key, item });
            return;
        }
        // Replace the minimum-key entry if the newcomer beats it. A linear
        // scan keeps the structure simple; the capacity is the sample size,
        // and the scan is the same O(n) as the batched alternatives here.
        let (min_idx, min_entry) = self
            .entries
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.log_key.total_cmp(&b.1.log_key))
            .expect("reservoir non-empty at capacity");
        if log_key > min_entry.log_key {
            self.entries[min_idx] = Entry { log_key, item };
        }
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, rng: &mut R) {
        self.steps += 1;
        // Weight of this batch's items: w = e^{λ t}; key = u^{1/w};
        // log key = ln(u)/w = ln(u)·e^{−λ t}.
        let inv_w = (-self.lambda * self.steps as f64).exp();
        for item in batch {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            self.insert(u.ln() * inv_w, item);
        }
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.entries.len() as f64
    }

    /// Hard upper bound on the sample size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// Exponential arrival-weight growth rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.lambda
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "A-Res"
    }
}

impl<T: Clone> BAres<T> {
    /// Copy out the current sample (deterministic; `rng` is unused and
    /// accepted only for signature uniformity with the latent schemes).
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.entries.iter().map(|e| e.item.clone()).collect()
    }
}

impl<T: Wire> BAres<T> {
    /// Serialize the complete sampler state — including each entry's
    /// log-space A-Res key, which fully determines future evictions —
    /// into `w`; see [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.lambda);
        w.put_u64(self.capacity as u64);
        w.put_u64(self.steps);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_f64(e.log_key);
            w.put_item(&e.item);
        }
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "A-Res lambda")?;
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("A-Res capacity"));
        }
        let steps = r.get_u64()?;
        let len = r.get_u32()? as usize;
        if len > capacity {
            return Err(CheckpointError::Corrupt("A-Res entry count"));
        }
        // Allocate from the (bounds-checked) entry count, never from the
        // blob's capacity field — a corrupt capacity must not drive an
        // allocation. Each entry costs ≥ 8 (key) + 4 (length prefix) bytes.
        r.check_count(len, 12)?;
        let mut entries = Vec::with_capacity(len + 1);
        for _ in 0..len {
            let log_key = r.get_f64()?;
            if log_key.is_nan() || log_key > 0.0 {
                return Err(CheckpointError::Corrupt("A-Res log key"));
            }
            entries.push(Entry {
                log_key,
                item: r.get_item()?,
            });
        }
        Ok(Self {
            entries,
            lambda,
            capacity,
            steps,
        })
    }
}

adapt_batch_sampler!(BAres);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{max_ratio_violation, measure_inclusion};
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn respects_capacity_and_fill_up() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s: BAres<u32> = BAres::new(0.2, 10);
        s.observe((0..4).collect(), &mut rng);
        assert_eq!(s.len(), 4);
        s.observe((0..100).collect(), &mut rng);
        assert_eq!(s.len(), 10);
        for _ in 0..20 {
            s.observe((0..50).collect(), &mut rng);
            assert_eq!(s.len(), 10);
        }
    }

    #[test]
    fn zero_lambda_is_plain_reservoir_uniformity() {
        // λ = 0: all weights equal; every item should appear with the same
        // frequency — classic uniform reservoir behaviour.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let trials = 20_000;
        let mut first_batch = 0u64;
        let mut last_batch = 0u64;
        for _ in 0..trials {
            let mut s: BAres<u8> = BAres::new(0.0, 4);
            s.observe(vec![1; 4], &mut rng);
            s.observe(vec![2; 4], &mut rng);
            for item in s.sample(&mut rng) {
                match item {
                    1 => first_batch += 1,
                    2 => last_batch += 1,
                    _ => {}
                }
            }
        }
        let ratio = first_batch as f64 / last_batch as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn recency_bias_is_present() {
        // With λ > 0, newer items must dominate the sample.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s: BAres<u64> = BAres::new(0.5, 50);
        for t in 0..40u64 {
            s.observe(vec![t; 20], &mut rng);
        }
        let sample = s.sample(&mut rng);
        let mean_age: f64 =
            sample.iter().map(|&t| 39.0 - t as f64).sum::<f64>() / sample.len() as f64;
        assert!(mean_age < 6.0, "mean age {mean_age} too old for lambda=0.5");
    }

    #[test]
    fn violates_relative_inclusion_during_fill_up() {
        // The §7 / Appendix-D style failure: a large reservoir retains
        // everything, so all appearance probabilities are 1 regardless of
        // age — property (1) demands ratio e^{-λ}.
        let lambda = 0.4;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let schedule = [5u64, 5, 5];
        let stats = measure_inclusion(|| BAres::new(lambda, 1000), &schedule, 4_000, &mut rng);
        let v = max_ratio_violation(&stats, lambda, 0.02);
        let expect = 1.0 - (-lambda).exp();
        assert!(
            (v - expect).abs() < 0.02,
            "fill-up violation {v}, expected ≈ {expect}"
        );
    }

    #[test]
    fn steady_state_inclusion_deviates_from_law_1() {
        // Even past fill-up, A-Res's appearance probabilities do not track
        // e^{-λΔ} the way R-TBS's do: compare worst-case ratio violations
        // head to head on the same schedule.
        let lambda = 0.6;
        let schedule = [4u64, 4, 4, 4, 4, 4, 4, 4];
        let trials = 60_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let ares_stats = measure_inclusion(|| BAres::new(lambda, 6), &schedule, trials, &mut rng);
        // min_prob 0.02 trims pairs whose ratio estimate is pure noise.
        let ares_violation = max_ratio_violation(&ares_stats, lambda, 0.02);
        let rtbs_stats =
            measure_inclusion(|| crate::RTbs::new(lambda, 6), &schedule, trials, &mut rng);
        let rtbs_violation = max_ratio_violation(&rtbs_stats, lambda, 0.02);
        assert!(
            ares_violation > 2.0 * rtbs_violation + 0.02,
            "A-Res violation {ares_violation} not clearly worse than R-TBS \
             {rtbs_violation}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        BAres::<u8>::new(0.1, 0);
    }
}
