//! Closed-form theory from §1, §3 (Theorem 3.1) and Remark 1.
//!
//! These formulas serve three purposes: choosing the decay rate λ from
//! application-level retention criteria (the §1 recipes), predicting T-TBS /
//! B-TBS sample-size behaviour, and giving the test-suite exact targets to
//! verify the simulators against.

/// Decay rate λ such that a fraction `fraction` of the items from
/// `k_batches` ago are (in expectation) still reflected in the sample:
/// solves `e^{−λk} = fraction`.
///
/// Paper example: `lambda_for_retention(40.0, 0.10) ≈ 0.058`.
///
/// # Panics
///
/// Panics unless `k_batches > 0` and `fraction ∈ (0, 1]`.
pub fn lambda_for_retention(k_batches: f64, fraction: f64) -> f64 {
    assert!(k_batches > 0.0, "k_batches must be positive");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must lie in (0,1], got {fraction}"
    );
    -fraction.ln() / k_batches
}

/// Decay rate λ such that, with probability `q`, at least one of `n` items
/// from `k` batches ago remains in the sample:
/// `λ = −k⁻¹ ln(1 − (1 − q)^{1/n})`.
///
/// Paper example: `lambda_for_group_survival(150.0, 1000.0, 0.01) ≈ 0.077`.
///
/// # Panics
///
/// Panics unless `k > 0`, `n > 0` and `q ∈ (0, 1)`.
pub fn lambda_for_group_survival(k: f64, n: f64, q: f64) -> f64 {
    assert!(k > 0.0 && n > 0.0, "k and n must be positive");
    assert!(q > 0.0 && q < 1.0, "q must lie in (0,1), got {q}");
    -(1.0 - (1.0 - q).powf(1.0 / n)).ln() / k
}

/// Expected T-TBS sample size at time `t` (Theorem 3.1(ii)):
/// `E[C_t] = n + p^t (C₀ − n)` with `p = e^{−λ}`.
pub fn ttbs_expected_size(n: f64, c0: f64, lambda: f64, t: u64) -> f64 {
    let p = (-lambda).exp();
    n + p.powi(t as i32) * (c0 - n)
}

/// Stationary T-TBS sample-size variance (equation (10) of the proofs):
/// `Var[C_t] → α·n + σ_B²·q²/(1 − p²)` with `α = (1 + p − q)/(1 + p)`,
/// `p = e^{−λ}` and `q = n(1 − p)/b`.
pub fn ttbs_stationary_variance(n: f64, lambda: f64, mean_batch: f64, batch_var: f64) -> f64 {
    let p = (-lambda).exp();
    let q = (n * (1.0 - p) / mean_batch).min(1.0);
    let alpha = (1.0 + p - q) / (1.0 + p);
    alpha * n + batch_var * q * q / (1.0 - p * p)
}

/// Equilibrium (stationary mean) sample size of B-TBS — and the equilibrium
/// *total weight* of R-TBS — under mean batch size `b` (Remark 1):
/// `b / (1 − e^{−λ})`.
///
/// When this value is below the R-TBS capacity `n`, the R-TBS reservoir
/// never saturates and its sample weight stabilizes here (e.g. the paper's
/// 1479 items for `n = 1600`, `b = 100`, `λ = 0.07`).
pub fn equilibrium_weight(mean_batch: f64, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "equilibrium requires positive decay");
    mean_batch / (1.0 - (-lambda).exp())
}

/// Large-deviation exponent `ν⁺_{ε,r}` for upward excursions
/// (Theorem 3.1(iv)(a)): `(1+ε)·ln((1+ε)/r) − (1 + ε − r)`.
pub fn nu_plus(epsilon: f64, r: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(r >= 1.0, "upper-support ratio r >= 1");
    (1.0 + epsilon) * ((1.0 + epsilon) / r).ln() - (1.0 + epsilon - r)
}

/// Large-deviation exponent `ν⁻_{ε,r}` for downward excursions
/// (Theorem 3.1(iv)(b)): `(1−ε)·ln((1−ε)/r) − (1 − ε − r)`.
pub fn nu_minus(epsilon: f64, r: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
    assert!(r >= 1.0, "upper-support ratio r >= 1");
    (1.0 - epsilon) * ((1.0 - epsilon) / r).ln() - (1.0 - epsilon - r)
}

/// Upper bound on `Pr[C_t ≥ (1+ε)n]` in steady state (the `e^{−n·ν⁺}`
/// leading factor of Theorem 3.1(iv)(a), ignoring the vanishing `O(p^t)`
/// correction).
pub fn ttbs_upper_deviation_bound(n: f64, epsilon: f64, r: f64) -> f64 {
    (-n * nu_plus(epsilon, r)).exp()
}

/// Upper bound on `Pr[C_t ≤ (1−ε)n]` in steady state (Theorem 3.1(iv)(b)).
pub fn ttbs_lower_deviation_bound(n: f64, epsilon: f64, r: f64) -> f64 {
    (-n * nu_minus(epsilon, r)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_recipe_matches_paper_example() {
        // "by setting λ = 0.058, around 10% of the data items from 40
        // batches ago are included".
        let lambda = lambda_for_retention(40.0, 0.10);
        assert!((lambda - 0.0576).abs() < 0.001, "lambda {lambda}");
    }

    #[test]
    fn group_survival_recipe_matches_paper_example() {
        // k = 150, n = 1000, q = 0.01 → λ ≈ 0.077.
        let lambda = lambda_for_group_survival(150.0, 1000.0, 0.01);
        assert!((lambda - 0.077).abs() < 0.002, "lambda {lambda}");
    }

    #[test]
    fn expected_size_converges_to_target() {
        let at_zero = ttbs_expected_size(1000.0, 0.0, 0.1, 0);
        assert_eq!(at_zero, 0.0);
        let late = ttbs_expected_size(1000.0, 0.0, 0.1, 200);
        assert!((late - 1000.0).abs() < 1.0);
        // Starting above the target decays down.
        let above = ttbs_expected_size(1000.0, 5000.0, 0.1, 10);
        assert!(above > 1000.0 && above < 5000.0);
    }

    #[test]
    fn equilibrium_weight_matches_paper_1479() {
        // §6.3: b = 100, λ = 0.07 → 1479 items.
        let w = equilibrium_weight(100.0, 0.07);
        assert!((w - 1479.0).abs() < 1.0, "w = {w}");
    }

    #[test]
    fn stationary_variance_deterministic_batches() {
        // σ_B² = 0 → Var = αn only.
        let v = ttbs_stationary_variance(1000.0, 0.1, 100.0, 0.0);
        let p = (-0.1f64).exp();
        let q = 1000.0 * (1.0 - p) / 100.0;
        let alpha = (1.0 + p - q) / (1.0 + p);
        assert!((v - alpha * 1000.0).abs() < 1e-9);
        assert!(v > 0.0 && v < 1000.0);
    }

    #[test]
    fn nu_exponents_positive_and_monotone() {
        // ν⁺ is positive and strictly increasing in ε for ε > r − 1.
        let r = 1.0;
        let mut prev = 0.0;
        for i in 1..10 {
            let eps = i as f64 * 0.1;
            let v = nu_plus(eps, r);
            assert!(v > 0.0, "nu_plus({eps}) = {v}");
            assert!(v > prev);
            prev = v;
        }
        // ν⁻ increases from r − 1 − ln r toward r as ε → 1.
        assert!(nu_minus(0.9, 1.0) > nu_minus(0.1, 1.0));
    }

    #[test]
    fn deviation_bounds_decay_exponentially_in_n() {
        let b1 = ttbs_upper_deviation_bound(100.0, 0.2, 1.0);
        let b2 = ttbs_upper_deviation_bound(200.0, 0.2, 1.0);
        assert!(b2 < b1 * b1 * 1.01, "bound not exponential: {b1} vs {b2}");
        assert!(b1 < 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn retention_rejects_bad_fraction() {
        lambda_for_retention(10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive decay")]
    fn equilibrium_rejects_zero_lambda() {
        equilibrium_weight(100.0, 0.0);
    }
}
