//! Exponential-jumps ingest: batch-level acceptance sampling.
//!
//! The per-item hot path already does O(1) work per item; this module is
//! the "skip work, don't just do it faster" layer on top. Instead of
//! touching every arriving item with its own RNG draw, the jump-ahead
//! ingest mode spends **per-batch** randomness:
//!
//! * **Saturated R-TBS** (Alg. 2 lines 16–17): every batch item is
//!   accepted independently with the same probability `p = n/W`, so the
//!   accept *count* is drawn directly as `M ~ Binomial(|B|, p)` (exact
//!   BINV/BTPE from `tbs-stats`). The accepted donors and the evicted
//!   victims are then chosen as **random contiguous windows** — one
//!   uniform start each — and exchanged with bulk segment swaps. A
//!   window with a uniform random start is a systematic sample (Madow
//!   1944): every position is covered by exactly `M` of the `n` possible
//!   windows, so each item's inclusion probability is exactly `M/n`,
//!   identical to the per-item Fisher–Yates sweep. Window starts are
//!   drawn independently every batch, so survival events across batches
//!   multiply exactly as in per-item mode and the Theorem 4.2 marginal
//!   `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` is preserved for every item at
//!   every time. (The *pairwise* joint law differs — neighbours share
//!   window membership — which is why the statistical-equivalence
//!   harness in `tests/statistical_equivalence.rs` checks first-order
//!   inclusion frequencies and sample-size distributions, the quantities
//!   the paper's guarantees are stated in.)
//!
//! * **T-TBS acceptance** (Alg. 1 line 8): each item is an independent
//!   `Bernoulli(q)` trial, so the gaps between accepted items are iid
//!   `Geometric(q)`. When `q` is small the A-ExpJ idiom (Efraimidis &
//!   Spirakis 2006) wins: draw one geometric jump, skip that many items
//!   wholesale, accept the next. The pending jump is carried across
//!   batch boundaries in a [`JumpCursor`] — geometric gaps are
//!   memoryless and `q` is constant, so resuming a partially consumed
//!   skip in the next batch is *exactly* the same process. When `q` is
//!   large (the paper's §6 regimes sit near `q ≈ 0.9`) jumping is
//!   counter-productive — almost every item is accepted — so the jump
//!   path instead draws `Binomial(|B|, q)` and sweeps out the *rejected*
//!   minority ([`JUMP_GEOMETRIC_MAX_Q`] is the crossover).
//!
//! Neither rewrite changes a sampler's state shape; the only new
//! persistent state is the T-TBS [`JumpCursor`], which rides along in
//! the version-2 checkpoint payload.

/// How a sampler consumes arriving batches.
///
/// The mode changes *how randomness is spent*, not what is sampled: both
/// modes realize the same first-order inclusion probabilities (Theorem
/// 4.2 for R-TBS, `q·e^{−λa}` for T-TBS) and the same expected sample
/// sizes. They draw different random-number streams, so two runs of the
/// same seed in different modes produce different — equally valid —
/// samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Reference path: per-item Fisher–Yates sweeps and per-item decay
    /// bookkeeping. Bit-compatible with all previously recorded
    /// trajectories; the default everywhere.
    #[default]
    PerItem,
    /// Batch-level acceptance sampling: binomial accept counts plus
    /// windowed victim/donor selection (saturated R-TBS), geometric
    /// acceptance jumps with a cross-batch cursor (sparse T-TBS), and
    /// complement-side retention sweeps. Statistically equivalent to
    /// [`IngestMode::PerItem`] (see the module docs for exactly which
    /// distributional statements are preserved).
    Jump,
}

impl IngestMode {
    /// Label used in benchmark/CSV output.
    pub fn label(self) -> &'static str {
        match self {
            IngestMode::PerItem => "per-item",
            IngestMode::Jump => "jump",
        }
    }
}

/// Largest acceptance probability for which T-TBS's jump mode uses
/// geometric skip sampling; above it, skips are shorter than one item on
/// average and a `Binomial(|B|, q)` count plus a complement-side sweep
/// of the rejected minority is strictly cheaper.
///
/// The cursor of a sampler whose `q` lies above this threshold is
/// structurally zero — checkpoint restore rejects blobs that claim
/// otherwise.
pub const JUMP_GEOMETRIC_MAX_Q: f64 = 0.5;

/// Pending geometric skip carried across batch boundaries by T-TBS's
/// jump mode: the number of not-yet-seen items that must still be
/// rejected before the next acceptance.
///
/// Memorylessness makes this exact: conditioned on a `Geometric(q)` gap
/// exceeding the part already consumed inside the previous batch, the
/// remainder is again `Geometric(q)`-distributed *plus the deficit* — so
/// storing the raw remaining count and decrementing it across batches
/// reproduces the untruncated process draw for draw.
///
/// The *first* gap of a sampler's lifetime must itself be drawn from
/// `Geometric(q)` — the position of the first success in a Bernoulli
/// process is geometric, not zero. An unprimed cursor marks "no gap
/// drawn yet"; the first jump-mode acceptance pass primes it. (Starting
/// at a literal zero skip would accept the very first item with
/// certainty — a bias the statistical-equivalence harness catches
/// immediately.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JumpCursor {
    /// Items still to skip before the next accepted item. Meaningful
    /// only when `primed`.
    pub pending_skip: u64,
    /// Whether the initial geometric gap has been drawn.
    pub primed: bool,
}

impl JumpCursor {
    /// The pristine cursor: no gap drawn yet (the state before any
    /// jump-mode batch, and forever for samplers on the binomial side of
    /// [`JUMP_GEOMETRIC_MAX_Q`]).
    pub fn zero() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_item_is_the_default_mode() {
        assert_eq!(IngestMode::default(), IngestMode::PerItem);
        assert_eq!(JumpCursor::default(), JumpCursor::zero());
    }

    #[test]
    fn labels_are_stable() {
        // Benchmark rows key on these strings.
        assert_eq!(IngestMode::PerItem.label(), "per-item");
        assert_eq!(IngestMode::Jump.label(), "jump");
    }
}
