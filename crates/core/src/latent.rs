//! Latent fractional samples (§4.1).
//!
//! R-TBS maintains a *latent sample* `L = (A, π, C)`: a set `A` of `⌊C⌋`
//! "full" items, an optional "partial" item `π`, and a real-valued sample
//! weight `C`. The actual sample `S` is *realized* from `L` by including
//! every full item and including the partial item with probability
//! `frac(C)`, so that `E[|S|] = C` exactly (equation (3)) and the footprint
//! never exceeds `⌊C⌋ + 1`.
//!
//! The structure's invariants (checked by [`LatentSample::check_invariants`]
//! and exercised by property tests):
//!
//! 1. `A.len() == ⌊C⌋`;
//! 2. the partial item is present iff `frac(C) > 0`;
//! 3. `C ≥ 0`.

use crate::util::draw_without_replacement;
use rand::Rng;

/// A latent fractional sample `(A, π, C)`.
#[derive(Debug, Clone)]
pub struct LatentSample<T> {
    full: Vec<T>,
    partial: Option<T>,
    weight: f64,
}

impl<T> Default for LatentSample<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> LatentSample<T> {
    /// The empty latent sample (`C = 0`).
    pub fn empty() -> Self {
        Self {
            full: Vec::new(),
            partial: None,
            weight: 0.0,
        }
    }

    /// A latent sample consisting solely of full items (`C = |items|`).
    pub fn from_full(items: Vec<T>) -> Self {
        let weight = items.len() as f64;
        Self {
            full: items,
            partial: None,
            weight,
        }
    }

    /// Sample weight `C` — the expected size of a realized sample.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The full items `A`.
    pub fn full_items(&self) -> &[T] {
        &self.full
    }

    /// The partial item `π`, if any.
    pub fn partial_item(&self) -> Option<&T> {
        self.partial.as_ref()
    }

    /// Number of items physically stored (`⌊C⌋` or `⌊C⌋ + 1`).
    pub fn footprint(&self) -> usize {
        self.full.len() + usize::from(self.partial.is_some())
    }

    /// True when `C = 0` (no items at all).
    pub fn is_empty(&self) -> bool {
        self.full.is_empty() && self.partial.is_none()
    }

    /// Fractional part of the sample weight — the partial item's inclusion
    /// probability.
    pub fn frac(&self) -> f64 {
        self.weight - self.weight.floor()
    }

    /// Insert items that are accepted with probability 1 (they become full
    /// items and raise the weight by the item count). Used by R-TBS whenever
    /// the relation `C = W` licenses certain acceptance (Alg. 2 lines 9/20).
    pub fn push_full(&mut self, items: impl IntoIterator<Item = T>) {
        let before = self.full.len();
        self.full.extend(items);
        self.weight += (self.full.len() - before) as f64;
    }

    /// Replace `m` uniformly chosen full items with the given `m`
    /// replacements; the weight is unchanged (Alg. 2 line 17, the
    /// saturated→saturated transition).
    ///
    /// # Panics
    ///
    /// Panics if `replacements.len()` exceeds the number of full items.
    pub fn replace_random_full<R: Rng + ?Sized>(&mut self, replacements: Vec<T>, rng: &mut R) {
        let m = replacements.len();
        assert!(
            m <= self.full.len(),
            "cannot replace {m} items in a sample of {}",
            self.full.len()
        );
        let victims = draw_without_replacement(&mut self.full, m, rng);
        drop(victims);
        self.full.extend(replacements);
    }

    /// `Swap1(A, π)`: move a uniformly chosen item from `A` to `π`, moving
    /// the current partial item (if any) back into `A`.
    ///
    /// # Panics
    ///
    /// Panics if `A` is empty.
    pub(crate) fn swap1<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        assert!(!self.full.is_empty(), "Swap1 requires a full item");
        let idx = rng.gen_range(0..self.full.len());
        let chosen = self.full.swap_remove(idx);
        if let Some(old_partial) = self.partial.replace(chosen) {
            self.full.push(old_partial);
        }
    }

    /// `Move1(A, π)`: move a uniformly chosen item from `A` to `π`,
    /// discarding the current partial item (if any).
    ///
    /// # Panics
    ///
    /// Panics if `A` is empty.
    pub(crate) fn move1<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        assert!(!self.full.is_empty(), "Move1 requires a full item");
        let idx = rng.gen_range(0..self.full.len());
        let chosen = self.full.swap_remove(idx);
        self.partial = Some(chosen);
    }

    pub(crate) fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    pub(crate) fn full_mut(&mut self) -> &mut Vec<T> {
        &mut self.full
    }

    pub(crate) fn clear_partial(&mut self) {
        self.partial = None;
    }

    /// Verify the structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.weight < 0.0 || !self.weight.is_finite() {
            return Err(format!("invalid weight {}", self.weight));
        }
        let floor = self.weight.floor() as usize;
        if self.full.len() != floor {
            return Err(format!(
                "full item count {} != floor(weight) {}",
                self.full.len(),
                floor
            ));
        }
        let frac = self.frac();
        if (frac > 0.0) != self.partial.is_some() {
            return Err(format!(
                "partial item presence {} inconsistent with frac {}",
                self.partial.is_some(),
                frac
            ));
        }
        Ok(())
    }
}

impl<T: Clone> LatentSample<T> {
    /// Realize a sample `S` from the latent state per equation (2): all full
    /// items, plus the partial item with probability `frac(C)`.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<T> {
        let mut out = self.full.clone();
        if let Some(p) = &self.partial {
            if rng.gen::<f64>() < self.frac() {
                out.push(p.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn empty_sample_invariants() {
        let l = LatentSample::<u32>::empty();
        assert!(l.is_empty());
        assert_eq!(l.weight(), 0.0);
        assert_eq!(l.footprint(), 0);
        l.check_invariants().unwrap();
    }

    #[test]
    fn from_full_has_integral_weight() {
        let l = LatentSample::from_full(vec![1, 2, 3]);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.frac(), 0.0);
        assert_eq!(l.footprint(), 3);
        l.check_invariants().unwrap();
    }

    #[test]
    fn push_full_raises_weight_by_count() {
        let mut l = LatentSample::from_full(vec![1]);
        l.push_full(vec![2, 3]);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.full_items().len(), 3);
        l.check_invariants().unwrap();
    }

    #[test]
    fn realize_with_integral_weight_is_exact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let l = LatentSample::from_full(vec![1, 2, 3]);
        for _ in 0..20 {
            assert_eq!(l.realize(&mut rng).len(), 3);
        }
    }

    #[test]
    fn realize_size_distribution_matches_frac() {
        // A latent sample of weight 3.6 realizes to 4 items w.p. 0.6.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut l = LatentSample::from_full(vec![1, 2, 3, 4]);
        l.move1(&mut rng); // 3 full + 1 partial
        l.set_weight(3.6);
        l.check_invariants().unwrap();
        let trials = 100_000;
        let mut fours = 0u64;
        for _ in 0..trials {
            let s = l.realize(&mut rng);
            assert!(s.len() == 3 || s.len() == 4);
            if s.len() == 4 {
                fours += 1;
            }
        }
        let phat = fours as f64 / trials as f64;
        assert!((phat - 0.6).abs() < 0.01, "phat {phat}");
    }

    #[test]
    fn expected_realized_size_is_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut l = LatentSample::from_full(vec![10, 20, 30]);
        l.move1(&mut rng);
        l.set_weight(2.25);
        let trials = 100_000;
        let total: usize = (0..trials).map(|_| l.realize(&mut rng).len()).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn swap1_preserves_footprint_and_returns_old_partial() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut l = LatentSample::from_full(vec![1, 2, 3]);
        l.move1(&mut rng); // footprint 3: 2 full + 1 partial
        let before = l.footprint();
        l.swap1(&mut rng);
        assert_eq!(l.footprint(), before);
        assert_eq!(l.full_items().len(), 2);
        assert!(l.partial_item().is_some());
    }

    #[test]
    fn move1_discards_old_partial() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut l = LatentSample::from_full(vec![1, 2, 3]);
        l.move1(&mut rng);
        let first_partial = *l.partial_item().unwrap();
        l.move1(&mut rng);
        // Old partial is gone; footprint dropped by one.
        assert_eq!(l.footprint(), 2);
        assert!(!l.full_items().contains(&first_partial));
    }

    #[test]
    fn replace_random_full_keeps_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut l = LatentSample::from_full((0..10).collect::<Vec<u32>>());
        l.replace_random_full(vec![100, 101, 102], &mut rng);
        assert_eq!(l.weight(), 10.0);
        assert_eq!(l.full_items().len(), 10);
        let news = l.full_items().iter().filter(|&&x| x >= 100).count();
        assert_eq!(news, 3);
        l.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot replace")]
    fn replace_rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut l = LatentSample::from_full(vec![1]);
        l.replace_random_full(vec![2, 3], &mut rng);
    }

    #[test]
    fn invariant_violations_are_reported() {
        let mut l = LatentSample::from_full(vec![1, 2]);
        l.set_weight(2.5); // frac > 0 but no partial item
        assert!(l.check_invariants().is_err());
        let mut l = LatentSample::from_full(vec![1, 2]);
        l.set_weight(3.0); // floor mismatch
        assert!(l.check_invariants().is_err());
    }
}
