//! Latent fractional samples (§4.1).
//!
//! R-TBS maintains a *latent sample* `L = (A, π, C)`: a set `A` of `⌊C⌋`
//! "full" items, an optional "partial" item `π`, and a real-valued sample
//! weight `C`. The actual sample `S` is *realized* from `L` by including
//! every full item and including the partial item with probability
//! `frac(C)`, so that `E[|S|] = C` exactly (equation (3)) and the footprint
//! never exceeds `⌊C⌋ + 1`.
//!
//! The structure's invariants (checked by [`LatentSample::check_invariants`]
//! and exercised by property tests):
//!
//! 1. `A.len() == ⌊C⌋`;
//! 2. the partial item is present iff `frac(C) > 0`;
//! 3. `C ≥ 0`.

use crate::util::uniform_index;
use rand::Rng;

/// A latent fractional sample `(A, π, C)`.
#[derive(Debug, Clone)]
pub struct LatentSample<T> {
    full: Vec<T>,
    partial: Option<T>,
    weight: f64,
}

impl<T> Default for LatentSample<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> LatentSample<T> {
    /// The empty latent sample (`C = 0`).
    pub fn empty() -> Self {
        Self {
            full: Vec::new(),
            partial: None,
            weight: 0.0,
        }
    }

    /// A latent sample consisting solely of full items (`C = |items|`).
    pub fn from_full(items: Vec<T>) -> Self {
        let weight = items.len() as f64;
        Self {
            full: items,
            partial: None,
            weight,
        }
    }

    /// Sample weight `C` — the expected size of a realized sample.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The full items `A`.
    pub fn full_items(&self) -> &[T] {
        &self.full
    }

    /// The partial item `π`, if any.
    pub fn partial_item(&self) -> Option<&T> {
        self.partial.as_ref()
    }

    /// Number of items physically stored (`⌊C⌋` or `⌊C⌋ + 1`).
    pub fn footprint(&self) -> usize {
        self.full.len() + usize::from(self.partial.is_some())
    }

    /// True when `C = 0` (no items at all).
    pub fn is_empty(&self) -> bool {
        self.full.is_empty() && self.partial.is_none()
    }

    /// Fractional part of the sample weight — the partial item's inclusion
    /// probability.
    pub fn frac(&self) -> f64 {
        self.weight - self.weight.floor()
    }

    /// Insert items that are accepted with probability 1 (they become full
    /// items and raise the weight by the item count). Used by R-TBS whenever
    /// the relation `C = W` licenses certain acceptance (Alg. 2 lines 9/20).
    pub fn push_full(&mut self, items: impl IntoIterator<Item = T>) {
        let before = self.full.len();
        self.full.extend(items);
        self.weight += (self.full.len() - before) as f64;
    }

    /// Replace `m` uniformly chosen full items with the given `m`
    /// replacements; the weight is unchanged (Alg. 2 line 17, the
    /// saturated→saturated transition).
    ///
    /// Victims are overwritten **in place** via a partial Fisher–Yates
    /// sweep — the item count never changes and no intermediate victim
    /// vector is allocated. At iteration `i` the slots `i..len` hold
    /// exactly the not-yet-replaced originals, so drawing `j` uniformly
    /// from that suffix and overwriting slot `i` (after a swap) evicts a
    /// uniform `m`-subset.
    ///
    /// # Panics
    ///
    /// Panics if `replacements.len()` exceeds the number of full items.
    pub fn replace_random_full<R: Rng + ?Sized>(&mut self, replacements: Vec<T>, rng: &mut R) {
        let m = replacements.len();
        assert!(
            m <= self.full.len(),
            "cannot replace {m} items in a sample of {}",
            self.full.len()
        );
        let len = self.full.len();
        for (i, rep) in replacements.into_iter().enumerate() {
            let j = i + uniform_index(rng, len - i);
            self.full.swap(i, j);
            self.full[i] = rep;
        }
    }

    /// [`Self::replace_random_full`] fed from a borrowed donor pool: moves
    /// a uniform `m`-subset of `donors` into the sample, replacing `m`
    /// uniformly chosen full items, which are swapped back into the
    /// vacated donor slots. The weight is unchanged and **nothing is
    /// allocated** — this is the R-TBS saturated→saturated hot path
    /// (Alg. 2 lines 16–17), where `donors` is the arriving batch.
    ///
    /// Both subsets are chosen by partial Fisher–Yates prefix sweeps
    /// (distributionally identical to drawing `m` distinct indices with
    /// Floyd's algorithm, but with no index buffer). Donor selection draws
    /// only `min(m, |donors| − m)` random numbers: when most of the batch
    /// is accepted — the common case right at saturation, where
    /// `m/|B| = n/W ≈ 1` — it is the uniform *complement* (the rejected
    /// items) that is swept into the prefix, and the accepted subset is
    /// the suffix.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `donors.len()` or the number of full items.
    pub fn replace_random_full_from<R: Rng + ?Sized>(
        &mut self,
        donors: &mut [T],
        m: usize,
        rng: &mut R,
    ) {
        assert!(
            m <= donors.len() && m <= self.full.len(),
            "cannot move {m} of {} donors into a sample of {}",
            donors.len(),
            self.full.len()
        );
        let d = donors.len();
        // Select the accepted donor subset by sweeping the *smaller* of the
        // subset and its complement into the prefix; a uniform subset's
        // complement is itself uniform, so both arrangements leave a
        // uniform m-subset at `start..start + m`.
        let start = if 2 * m <= d {
            for i in 0..m {
                let j = i + uniform_index(rng, d - i);
                donors.swap(i, j);
            }
            0
        } else {
            let excluded = d - m;
            for i in 0..excluded {
                let j = i + uniform_index(rng, d - i);
                donors.swap(i, j);
            }
            excluded
        };
        let full_len = self.full.len();
        for i in 0..m {
            // The next victim among the untouched full items.
            let k = i + uniform_index(rng, full_len - i);
            self.full.swap(i, k);
            std::mem::swap(&mut self.full[i], &mut donors[start + i]);
        }
    }

    /// [`Self::replace_random_full_from`]'s jump-mode counterpart: move
    /// the `m` donors at the contiguous (cyclic) window
    /// `donor_start..donor_start + m` into the `m` full-item slots at the
    /// cyclic window `victim_start..victim_start + m`, swapping the
    /// evicted victims back into the vacated donor slots. The weight is
    /// unchanged and **no per-item randomness is consumed** — the caller
    /// supplies the two uniformly drawn window starts, and a window with
    /// a uniform start is a systematic sample: every slot is covered by
    /// exactly `m` of the possible starts, so each full item is evicted
    /// with probability exactly `m/n` and each donor accepted with
    /// probability exactly `m/|donors|`, matching the per-item sweep's
    /// first-order inclusion probabilities (see [`crate::jumps`]).
    ///
    /// Each cyclic window wraps at most once, so the exchange is at most
    /// three bulk [`slice::swap_with_slice`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds `donors.len()` or the number of full items,
    /// or a window start is out of range while `m > 0`.
    pub(crate) fn replace_window_from(
        &mut self,
        donors: &mut [T],
        m: usize,
        victim_start: usize,
        donor_start: usize,
    ) {
        let n = self.full.len();
        let d = donors.len();
        assert!(
            m <= d && m <= n,
            "cannot move {m} of {d} donors into a sample of {n}"
        );
        if m == 0 {
            return;
        }
        assert!(victim_start < n && donor_start < d, "window start oob");
        let mut i = 0;
        while i < m {
            let v = (victim_start + i) % n;
            let r = (donor_start + i) % d;
            let run = (m - i).min(n - v).min(d - r);
            self.full[v..v + run].swap_with_slice(&mut donors[r..r + run]);
            i += run;
        }
    }

    /// `Swap1(A, π)`: move a uniformly chosen item from `A` to `π`, moving
    /// the current partial item (if any) back into `A`.
    ///
    /// # Panics
    ///
    /// Panics if `A` is empty.
    pub(crate) fn swap1<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        assert!(!self.full.is_empty(), "Swap1 requires a full item");
        let idx = uniform_index(rng, self.full.len());
        let chosen = self.full.swap_remove(idx);
        if let Some(old_partial) = self.partial.replace(chosen) {
            self.full.push(old_partial);
        }
    }

    /// `Move1(A, π)`: move a uniformly chosen item from `A` to `π`,
    /// discarding the current partial item (if any).
    ///
    /// # Panics
    ///
    /// Panics if `A` is empty.
    pub(crate) fn move1<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        assert!(!self.full.is_empty(), "Move1 requires a full item");
        let idx = uniform_index(rng, self.full.len());
        let chosen = self.full.swap_remove(idx);
        self.partial = Some(chosen);
    }

    pub(crate) fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    /// Fold `other` into `self` by the §4.1 stochastic-rounding union —
    /// the same algebra as the shard-merge's latent fold, draw-for-draw
    /// (see `merge_latent` in [`crate::merge`]), but *in place*: `other`'s
    /// full-item buffer is drained (its allocation survives for reuse) and
    /// `other` is left empty. With fractional parts α (`self`) and β
    /// (`other`), either the combined fraction stays below one — keep a
    /// single partial item, `self`'s with probability α/(α+β) — or it
    /// crosses one, promoting one of the two to full (`self`'s with
    /// probability `(1−β)/(2−α−β)`, which solves
    /// `Pr[promoted or realized] = α`) while the other remains partial
    /// with fraction α+β−1. Every item's realized-inclusion probability is
    /// preserved exactly.
    ///
    /// This is the batch-granular downsampling hot path: each deferred
    /// arrival segment is downsampled to its composed scale and absorbed
    /// into the live latent sample without allocating.
    pub(crate) fn absorb<R: Rng + ?Sized>(&mut self, other: &mut LatentSample<T>, rng: &mut R) {
        let alpha = self.frac();
        let beta = other.frac();
        let new_weight = self.weight + other.weight;
        self.full.append(&mut other.full);
        let mut a = self.partial.take();
        let mut b = other.partial.take();
        other.weight = 0.0;

        // Ground truth for the structure is the *computed* new weight (as
        // in the merge fold): the promotion count is whatever reconciles
        // the full count with ⌊new_weight⌋ — 0 or 1 in exact arithmetic,
        // clamped for the representability edge where α or β rounded to 1.
        let candidates = usize::from(a.is_some()) + usize::from(b.is_some());
        let promotions = (new_weight.floor() as usize)
            .saturating_sub(self.full.len())
            .min(candidates);

        if promotions == 1 && candidates == 2 {
            let p_first = (1.0 - beta) / (2.0 - alpha - beta);
            let promoted = if rng.gen::<f64>() < p_first {
                a.take()
            } else {
                b.take()
            };
            self.full
                .push(promoted.expect("promotion needs a candidate"));
        } else {
            for _ in 0..promotions {
                // 0 or 1 candidates: promotion is forced, not randomized.
                // (The back candidate goes first, matching the merge fold.)
                let promoted = b.take().or_else(|| a.take());
                self.full
                    .push(promoted.expect("promotion needs a candidate"));
            }
        }

        let frac = new_weight - new_weight.floor();
        self.partial = if frac > 0.0 {
            match (a, b) {
                (Some(pa), Some(pb)) => {
                    // Both partials survived below the integer boundary:
                    // keep self's with probability α/(α+β).
                    if rng.gen::<f64>() < alpha / (alpha + beta) {
                        Some(pa)
                    } else {
                        Some(pb)
                    }
                }
                (Some(p), None) | (None, Some(p)) => Some(p),
                (None, None) => None,
            }
        } else {
            None
        };
        self.weight = new_weight;
        debug_assert!(self.check_invariants().is_ok());
    }

    /// Decompose into `(A, π, C)` — used by the shard-merge algebra in
    /// [`crate::merge`], which reassembles unions via
    /// [`Self::from_raw_parts`].
    pub(crate) fn into_parts(self) -> (Vec<T>, Option<T>, f64) {
        (self.full, self.partial, self.weight)
    }

    /// Rebuild a latent sample from raw parts. The caller must uphold the
    /// structural invariants (`|A| = ⌊C⌋`, partial present iff
    /// `frac(C) > 0`); they are re-checked in debug builds.
    pub(crate) fn from_raw_parts(full: Vec<T>, partial: Option<T>, weight: f64) -> Self {
        let l = Self {
            full,
            partial,
            weight,
        };
        debug_assert!(l.check_invariants().is_ok(), "invalid raw parts");
        l
    }

    /// [`Self::from_raw_parts`] for untrusted inputs (checkpoint restore):
    /// verifies the structural invariants and reports a violation instead
    /// of asserting.
    pub(crate) fn try_from_raw_parts(
        full: Vec<T>,
        partial: Option<T>,
        weight: f64,
    ) -> Result<Self, String> {
        let l = Self {
            full,
            partial,
            weight,
        };
        l.check_invariants()?;
        Ok(l)
    }

    pub(crate) fn full_mut(&mut self) -> &mut Vec<T> {
        &mut self.full
    }

    pub(crate) fn clear_partial(&mut self) {
        self.partial = None;
    }

    /// Reset to the empty latent sample (`C = 0`) **without** releasing the
    /// full-item buffer, so a sampler that momentarily decays to zero weight
    /// re-fills without reallocating.
    pub fn clear(&mut self) {
        self.full.clear();
        self.partial = None;
        self.weight = 0.0;
    }

    /// Verify the structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.weight < 0.0 || !self.weight.is_finite() {
            return Err(format!("invalid weight {}", self.weight));
        }
        let floor = self.weight.floor() as usize;
        if self.full.len() != floor {
            return Err(format!(
                "full item count {} != floor(weight) {}",
                self.full.len(),
                floor
            ));
        }
        let frac = self.frac();
        if (frac > 0.0) != self.partial.is_some() {
            return Err(format!(
                "partial item presence {} inconsistent with frac {}",
                self.partial.is_some(),
                frac
            ));
        }
        Ok(())
    }
}

impl<T: Clone> LatentSample<T> {
    /// Realize a sample `S` from the latent state per equation (2): all full
    /// items, plus the partial item with probability `frac(C)`.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<T> {
        let mut out = Vec::with_capacity(self.footprint());
        self.realize_into(rng, &mut out);
        out
    }

    /// [`Self::realize`] into a caller-owned buffer: `out` is cleared and
    /// refilled. Once the buffer's capacity covers the footprint, repeated
    /// realizations allocate nothing — callers that materialize the sample
    /// every batch (model-retraining loops, the benchmark harness) should
    /// hold one buffer and reuse it.
    pub fn realize_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(&self.full);
        if let Some(p) = &self.partial {
            if rng.gen::<f64>() < self.frac() {
                out.push(p.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn empty_sample_invariants() {
        let l = LatentSample::<u32>::empty();
        assert!(l.is_empty());
        assert_eq!(l.weight(), 0.0);
        assert_eq!(l.footprint(), 0);
        l.check_invariants().unwrap();
    }

    #[test]
    fn from_full_has_integral_weight() {
        let l = LatentSample::from_full(vec![1, 2, 3]);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.frac(), 0.0);
        assert_eq!(l.footprint(), 3);
        l.check_invariants().unwrap();
    }

    #[test]
    fn push_full_raises_weight_by_count() {
        let mut l = LatentSample::from_full(vec![1]);
        l.push_full(vec![2, 3]);
        assert_eq!(l.weight(), 3.0);
        assert_eq!(l.full_items().len(), 3);
        l.check_invariants().unwrap();
    }

    #[test]
    fn realize_with_integral_weight_is_exact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let l = LatentSample::from_full(vec![1, 2, 3]);
        for _ in 0..20 {
            assert_eq!(l.realize(&mut rng).len(), 3);
        }
    }

    #[test]
    fn realize_size_distribution_matches_frac() {
        // A latent sample of weight 3.6 realizes to 4 items w.p. 0.6.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut l = LatentSample::from_full(vec![1, 2, 3, 4]);
        l.move1(&mut rng); // 3 full + 1 partial
        l.set_weight(3.6);
        l.check_invariants().unwrap();
        let trials = 100_000;
        let mut fours = 0u64;
        for _ in 0..trials {
            let s = l.realize(&mut rng);
            assert!(s.len() == 3 || s.len() == 4);
            if s.len() == 4 {
                fours += 1;
            }
        }
        let phat = fours as f64 / trials as f64;
        assert!((phat - 0.6).abs() < 0.01, "phat {phat}");
    }

    #[test]
    fn expected_realized_size_is_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut l = LatentSample::from_full(vec![10, 20, 30]);
        l.move1(&mut rng);
        l.set_weight(2.25);
        let trials = 100_000;
        let total: usize = (0..trials).map(|_| l.realize(&mut rng).len()).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn swap1_preserves_footprint_and_returns_old_partial() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut l = LatentSample::from_full(vec![1, 2, 3]);
        l.move1(&mut rng); // footprint 3: 2 full + 1 partial
        let before = l.footprint();
        l.swap1(&mut rng);
        assert_eq!(l.footprint(), before);
        assert_eq!(l.full_items().len(), 2);
        assert!(l.partial_item().is_some());
    }

    #[test]
    fn move1_discards_old_partial() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut l = LatentSample::from_full(vec![1, 2, 3]);
        l.move1(&mut rng);
        let first_partial = *l.partial_item().unwrap();
        l.move1(&mut rng);
        // Old partial is gone; footprint dropped by one.
        assert_eq!(l.footprint(), 2);
        assert!(!l.full_items().contains(&first_partial));
    }

    #[test]
    fn replace_random_full_keeps_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut l = LatentSample::from_full((0..10).collect::<Vec<u32>>());
        l.replace_random_full(vec![100, 101, 102], &mut rng);
        assert_eq!(l.weight(), 10.0);
        assert_eq!(l.full_items().len(), 10);
        let news = l.full_items().iter().filter(|&&x| x >= 100).count();
        assert_eq!(news, 3);
        l.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot replace")]
    fn replace_rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut l = LatentSample::from_full(vec![1]);
        l.replace_random_full(vec![2, 3], &mut rng);
    }

    #[test]
    fn replace_random_full_never_changes_length() {
        // The in-place overwrite must keep |A| and C fixed for every m,
        // including the m = 0 and m = |A| edges.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(20);
        for m in [0usize, 1, 5, 10] {
            let mut l = LatentSample::from_full((0..10u32).collect::<Vec<_>>());
            l.replace_random_full((100..100 + m as u32).collect(), &mut rng);
            assert_eq!(l.full_items().len(), 10, "length changed for m={m}");
            assert_eq!(l.weight(), 10.0);
            let news = l.full_items().iter().filter(|&&x| x >= 100).count();
            assert_eq!(news, m, "wrong replacement count for m={m}");
            l.check_invariants().unwrap();
        }
    }

    #[test]
    fn replace_random_full_victims_are_uniform() {
        // Chi² test: every original item must be evicted equally often.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(21);
        let trials = 60_000u64;
        let n = 10usize;
        let m = 3usize;
        let mut evicted = vec![0u64; n];
        for _ in 0..trials {
            let mut l = LatentSample::from_full((0..n as u32).collect::<Vec<_>>());
            l.replace_random_full(vec![999; m], &mut rng);
            let survivors: std::collections::HashSet<u32> =
                l.full_items().iter().copied().collect();
            for v in 0..n as u32 {
                if !survivors.contains(&v) {
                    evicted[v as usize] += 1;
                }
            }
        }
        let expected = vec![trials as f64 * m as f64 / n as f64; n];
        assert!(
            !tbs_stats::gof::chi2_rejects(&evicted, &expected),
            "victim choice not uniform: {evicted:?}"
        );
    }

    #[test]
    fn replace_random_full_from_swaps_victims_into_donors() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(22);
        let mut l = LatentSample::from_full((0..10u32).collect::<Vec<_>>());
        let mut donors: Vec<u32> = (100..108).collect();
        l.replace_random_full_from(&mut donors, 4, &mut rng);
        assert_eq!(l.full_items().len(), 10);
        assert_eq!(l.weight(), 10.0);
        assert_eq!(
            l.full_items().iter().filter(|&&x| x >= 100).count(),
            4,
            "exactly m donors must enter the sample"
        );
        // The pool still holds 8 items: 4 unused donors + 4 evicted originals.
        assert_eq!(donors.len(), 8);
        assert_eq!(donors.iter().filter(|&&x| x < 100).count(), 4);
        // Conservation: sample ∪ donors is a permutation of the inputs.
        let mut all: Vec<u32> = l
            .full_items()
            .iter()
            .chain(donors.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..10).chain(100..108).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        l.check_invariants().unwrap();
    }

    #[test]
    fn replace_random_full_from_selects_uniform_donors_and_victims() {
        // Both marginals at once: donor inclusion and victim eviction must
        // each be uniform over their pools.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(23);
        let trials = 60_000u64;
        let (n, d, m) = (8usize, 6usize, 2usize);
        let mut evicted = vec![0u64; n];
        let mut inserted = vec![0u64; d];
        for _ in 0..trials {
            let mut l = LatentSample::from_full((0..n as u32).collect::<Vec<_>>());
            let mut donors: Vec<u32> = (100..100 + d as u32).collect();
            l.replace_random_full_from(&mut donors, m, &mut rng);
            let sample: std::collections::HashSet<u32> = l.full_items().iter().copied().collect();
            for v in 0..n as u32 {
                if !sample.contains(&v) {
                    evicted[v as usize] += 1;
                }
            }
            for v in 0..d as u32 {
                if sample.contains(&(100 + v)) {
                    inserted[v as usize] += 1;
                }
            }
        }
        let expect_evict = vec![trials as f64 * m as f64 / n as f64; n];
        let expect_insert = vec![trials as f64 * m as f64 / d as f64; d];
        assert!(
            !tbs_stats::gof::chi2_rejects(&evicted, &expect_evict),
            "victims not uniform: {evicted:?}"
        );
        assert!(
            !tbs_stats::gof::chi2_rejects(&inserted, &expect_insert),
            "donors not uniform: {inserted:?}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn replace_from_rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(24);
        let mut l = LatentSample::from_full(vec![1u8, 2]);
        let mut donors = vec![3u8];
        l.replace_random_full_from(&mut donors, 2, &mut rng);
    }

    #[test]
    fn replace_window_from_conserves_and_wraps() {
        // Every (victim_start, donor_start) pair — wrapping or not — must
        // move exactly m donors in and m victims out, conserving items.
        let (n, d, m) = (7usize, 5usize, 4usize);
        for victim_start in 0..n {
            for donor_start in 0..d {
                let mut l = LatentSample::from_full((0..n as u32).collect::<Vec<_>>());
                let mut donors: Vec<u32> = (100..100 + d as u32).collect();
                l.replace_window_from(&mut donors, m, victim_start, donor_start);
                assert_eq!(l.full_items().len(), n);
                assert_eq!(l.weight(), n as f64);
                assert_eq!(
                    l.full_items().iter().filter(|&&x| x >= 100).count(),
                    m,
                    "wrong donor count at starts ({victim_start}, {donor_start})"
                );
                // Conservation: sample ∪ donor slots permute the inputs.
                let mut all: Vec<u32> = l
                    .full_items()
                    .iter()
                    .chain(donors.iter())
                    .copied()
                    .collect();
                all.sort_unstable();
                let mut expect: Vec<u32> = (0..n as u32).chain(100..100 + d as u32).collect();
                expect.sort_unstable();
                assert_eq!(all, expect);
                l.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn replace_window_from_zero_is_noop() {
        let mut l = LatentSample::from_full(vec![1u32, 2, 3]);
        let mut donors = vec![9u32];
        l.replace_window_from(&mut donors, 0, 0, 0);
        assert_eq!(l.full_items(), &[1, 2, 3]);
        assert_eq!(donors, vec![9]);
    }

    #[test]
    fn replace_window_from_marginals_are_uniform() {
        // With uniform window starts, windowed exchange is a systematic
        // sample: eviction must be uniform at m/n and donor inclusion
        // uniform at m/d — the first-order guarantee jump mode rests on.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(25);
        let trials = 60_000u64;
        let (n, d, m) = (8usize, 6usize, 2usize);
        let mut evicted = vec![0u64; n];
        let mut inserted = vec![0u64; d];
        for _ in 0..trials {
            let mut l = LatentSample::from_full((0..n as u32).collect::<Vec<_>>());
            let mut donors: Vec<u32> = (100..100 + d as u32).collect();
            let c = crate::util::uniform_index(&mut rng, n);
            let r = crate::util::uniform_index(&mut rng, d);
            l.replace_window_from(&mut donors, m, c, r);
            let sample: std::collections::HashSet<u32> = l.full_items().iter().copied().collect();
            for v in 0..n as u32 {
                if !sample.contains(&v) {
                    evicted[v as usize] += 1;
                }
            }
            for v in 0..d as u32 {
                if sample.contains(&(100 + v)) {
                    inserted[v as usize] += 1;
                }
            }
        }
        let expect_evict = vec![trials as f64 * m as f64 / n as f64; n];
        let expect_insert = vec![trials as f64 * m as f64 / d as f64; d];
        assert!(
            !tbs_stats::gof::chi2_rejects(&evicted, &expect_evict),
            "windowed victims not uniform: {evicted:?}"
        );
        assert!(
            !tbs_stats::gof::chi2_rejects(&inserted, &expect_insert),
            "windowed donors not uniform: {inserted:?}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn replace_window_from_rejects_overdraw() {
        let mut l = LatentSample::from_full(vec![1u8, 2]);
        let mut donors = vec![3u8];
        l.replace_window_from(&mut donors, 2, 0, 0);
    }

    #[test]
    fn realize_into_reuses_buffer() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(25);
        let mut l = LatentSample::from_full(vec![1, 2, 3, 4]);
        l.move1(&mut rng);
        l.set_weight(3.5);
        let mut out: Vec<i32> = Vec::with_capacity(8);
        for _ in 0..100 {
            l.realize_into(&mut rng, &mut out);
            assert!(out.len() == 3 || out.len() == 4);
            assert!(out.capacity() <= 8, "buffer grew unexpectedly");
        }
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut l = LatentSample::from_full((0..100u32).collect::<Vec<_>>());
        let cap_before = l.full_items().len();
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.weight(), 0.0);
        l.check_invariants().unwrap();
        // Refill: the retained buffer accepts items again.
        l.push_full(0..cap_before as u32);
        assert_eq!(l.weight(), cap_before as f64);
    }

    #[test]
    fn absorb_conserves_items_and_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(30);
        for (w1, w2) in [(2.7, 1.6), (2.2, 1.3), (3.0, 2.5), (0.4, 0.9), (2.0, 3.0)] {
            let mut a = raw_with_weight(0, w1);
            let mut b = raw_with_weight(100, w2);
            let before: f64 = w1 + w2;
            a.absorb(&mut b, &mut rng);
            assert_eq!(a.weight(), before, "weight not conserved for ({w1},{w2})");
            assert!(b.is_empty());
            assert_eq!(b.weight(), 0.0);
            a.check_invariants()
                .unwrap_or_else(|e| panic!("({w1},{w2}): {e}"));
        }
    }

    /// A latent sample tagged from `base`: ⌊w⌋ full items, plus a partial
    /// (tagged `base + 99`) when w is fractional.
    fn raw_with_weight(base: u32, w: f64) -> LatentSample<u32> {
        let full: Vec<u32> = (base..base + w.floor() as u32).collect();
        let partial = (w.fract() > 0.0).then_some(base + 99);
        LatentSample::from_raw_parts(full, partial, w)
    }

    #[test]
    fn absorb_promotion_probability_matches_stochastic_rounding() {
        // α + β ≥ 1 with two candidate partials: exactly one is promoted
        // to full, the acceptor's w.p. (1−β)/(2−α−β) — the §4.1
        // stochastic-rounding union's 1-of-2 case.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
        let trials = 60_000u64;
        let (w1, w2) = (2.7, 1.6); // α = 0.7, β = 0.6
        let mut acc_promoted = 0u64;
        for _ in 0..trials {
            let mut a = raw_with_weight(0, w1);
            let mut b = raw_with_weight(100, w2);
            a.absorb(&mut b, &mut rng);
            assert_eq!(a.full_items().len(), 4);
            // The non-promoted candidate survives as the partial.
            if a.full_items().contains(&99) {
                assert_eq!(a.partial_item(), Some(&199));
                acc_promoted += 1;
            } else {
                assert_eq!(a.partial_item(), Some(&99));
            }
        }
        let phat = acc_promoted as f64 / trials as f64;
        let expect = (1.0 - 0.6) / (2.0 - 0.7 - 0.6);
        assert!((phat - expect).abs() < 0.01, "phat {phat} vs {expect}");
    }

    #[test]
    fn absorb_partial_choice_probability_matches_alpha_over_sum() {
        // α + β < 1: no promotion; the acceptor's partial survives
        // w.p. α/(α+β).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(32);
        let trials = 60_000u64;
        let (w1, w2) = (2.2, 1.3); // α = 0.2, β = 0.3
        let mut kept_acc = 0u64;
        for _ in 0..trials {
            let mut a = raw_with_weight(0, w1);
            let mut b = raw_with_weight(100, w2);
            a.absorb(&mut b, &mut rng);
            assert_eq!(a.full_items().len(), 3);
            match a.partial_item() {
                Some(&99) => kept_acc += 1,
                Some(&199) => {}
                other => panic!("unexpected partial {other:?}"),
            }
        }
        let phat = kept_acc as f64 / trials as f64;
        let expect = 0.2 / (0.2 + 0.3);
        assert!((phat - expect).abs() < 0.01, "phat {phat} vs {expect}");
    }

    #[test]
    fn absorb_integral_cases_spend_no_randomness() {
        // Integral + integral, and single-candidate forced promotions,
        // are deterministic: the RNG stream must not advance.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(33);
        let probe = rng.clone().gen::<u64>();
        let mut a = LatentSample::from_full(vec![1u32, 2]);
        let mut b = LatentSample::from_full(vec![3u32]);
        a.absorb(&mut b, &mut rng);
        assert_eq!(a.weight(), 3.0);
        assert_eq!(a.full_items(), &[1, 2, 3]);

        // One fractional side, no promotion: the lone candidate carries
        // over as the partial with certainty.
        let mut a2 = raw_with_weight(0, 2.6);
        let mut b2 = raw_with_weight(100, 3.0);
        a2.absorb(&mut b2, &mut rng);
        assert_eq!(a2.weight(), 5.6);
        assert_eq!(a2.full_items().len(), 5);
        assert_eq!(a2.partial_item(), Some(&99));
        a2.check_invariants().unwrap();

        assert_eq!(
            rng.gen::<u64>(),
            probe,
            "RNG advanced on deterministic path"
        );
    }

    #[test]
    fn invariant_violations_are_reported() {
        let mut l = LatentSample::from_full(vec![1, 2]);
        l.set_weight(2.5); // frac > 0 but no partial item
        assert!(l.check_invariants().is_err());
        let mut l = LatentSample::from_full(vec![1, 2]);
        l.set_weight(3.0); // floor mismatch
        assert!(l.check_invariants().is_err());
    }
}
