//! B-TBS — Bernoulli time-biased sampling (Algorithm 4, Appendix A).
//!
//! The simplest decay-correct scheme: every arriving item is accepted with
//! probability 1; at each subsequent step every sample item survives an
//! independent coin flip with retention probability `p = e^{−λ}`. The
//! `|S|` coin flips are simulated with one binomial draw.
//!
//! B-TBS enforces the relative-inclusion property (1) exactly —
//! `Pr[x ∈ S_{t′}] = e^{−λ(t′−t)}` for `x ∈ B_t` — but offers **no control
//! over the sample size**: the stationary expected size is
//! `b/(1 − e^{−λ})` for mean batch size `b` (Remark 1), and growing batches
//! grow the sample without bound. This is the scheme of Xie et al. (ICDE
//! 2015) used for time-biased edge sampling in dynamic graphs.

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use crate::util::{retain_random, DecayCache};
use rand::Rng;
use tbs_stats::binomial::binomial;

/// Bernoulli time-biased sampler with decay rate λ.
///
/// The inherent `observe`/`observe_after` methods are the monomorphized,
/// allocation-free fast path; the [`crate::traits::BatchSampler`] impl is
/// a thin `dyn`-RNG adapter over them.
#[derive(Debug, Clone)]
pub struct BTbs<T> {
    items: Vec<T>,
    decay: DecayCache,
    steps: u64,
}

impl<T> BTbs<T> {
    /// Create an empty sampler with decay rate `lambda ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        Self {
            items: Vec::new(),
            decay: DecayCache::new(lambda),
            steps: 0,
        }
    }

    /// Create a sampler pre-loaded with an initial sample `S₀`.
    pub fn with_initial(lambda: f64, initial: Vec<T>) -> Self {
        let mut s = Self::new(lambda);
        s.items = initial;
        s
    }

    /// Current exact sample size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample is currently empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the current sample without copying.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, rng: &mut R) {
        let p = self.decay.unit();
        self.decay_and_insert(batch, p, rng);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, batch: Vec<T>, gap: f64, rng: &mut R) {
        check_gap(gap);
        let p = self.decay.factor(gap);
        self.decay_and_insert(batch, p, rng);
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.items.len() as f64
    }

    /// No hard bound: B-TBS has no size control at all.
    pub fn max_size(&self) -> Option<usize> {
        None
    }

    /// Exponential decay rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.decay.lambda()
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "B-TBS"
    }

    fn decay_and_insert<R: Rng + ?Sized>(&mut self, batch: Vec<T>, p: f64, rng: &mut R) {
        // Simulate |S| independent retention flips with one binomial draw,
        // then keep that many uniformly chosen survivors (Alg. 4, lines 4-5).
        let keep = binomial(rng, self.items.len() as u64, p) as usize;
        retain_random(&mut self.items, keep, rng);
        self.items.extend(batch);
        self.steps += 1;
    }
}

impl<T: Clone> BTbs<T> {
    /// Copy out the current sample (deterministic; `rng` is unused and
    /// accepted only for signature uniformity with the latent schemes).
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.items.clone()
    }
}

impl<T: Wire> BTbs<T> {
    /// Serialize the complete sampler state into `w`; see
    /// [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.decay.lambda());
        w.put_u64(self.steps);
        w.put_items(self.items.iter());
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "B-TBS lambda")?;
        let steps = r.get_u64()?;
        let items = r.get_items()?;
        Ok(Self {
            items,
            decay: DecayCache::new(lambda),
            steps,
        })
    }
}

adapt_batch_sampler!(BTbs);
adapt_timed_batch_sampler!(BTbs);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn zero_decay_keeps_everything() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = BTbs::new(0.0);
        for t in 0..10u64 {
            s.observe((0..5).map(|i| t * 5 + i).collect(), &mut rng);
        }
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn inclusion_probability_decays_exponentially() {
        // Pr[x ∈ S_{t'}] = e^{-λ(t'-t)}: insert one tagged item, age it k
        // steps with empty batches, measure survival frequency.
        let lambda = 0.3;
        let k = 5u64;
        let trials = 40_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut survived = 0u64;
        for _ in 0..trials {
            let mut s = BTbs::new(lambda);
            s.observe(vec![0u32], &mut rng);
            for _ in 0..k {
                s.observe(vec![], &mut rng);
            }
            if !s.is_empty() {
                survived += 1;
            }
        }
        let phat = survived as f64 / trials as f64;
        let expect = (-lambda * k as f64).exp();
        let tol = 4.0 * (expect * (1.0 - expect) / trials as f64).sqrt();
        assert!((phat - expect).abs() < tol, "phat={phat}, expect={expect}");
    }

    #[test]
    fn stationary_size_matches_remark_1() {
        // E[|S|] → b/(1 − e^{-λ}).
        let (lambda, b) = (0.1, 100usize);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s = BTbs::new(lambda);
        // Warm up past the transient.
        for t in 0..400u64 {
            s.observe((0..b as u64).map(|i| t * b as u64 + i).collect(), &mut rng);
        }
        let mut acc = 0.0;
        let rounds = 400;
        for t in 400..400 + rounds {
            s.observe((0..b as u64).map(|i| t * b as u64 + i).collect(), &mut rng);
            acc += s.len() as f64;
        }
        let mean = acc / rounds as f64;
        let expect = b as f64 / (1.0 - (-lambda).exp());
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn real_valued_gaps_compose() {
        // Two gaps of 0.5 must decay like one gap of 1.0 in distribution:
        // compare mean survivor counts.
        let lambda = 0.8;
        let trials = 20_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut survived_split = 0u64;
        let mut survived_whole = 0u64;
        for _ in 0..trials {
            let mut a = BTbs::new(lambda);
            a.observe(vec![1u8], &mut rng);
            a.observe_after(vec![], 0.5, &mut rng);
            a.observe_after(vec![], 0.5, &mut rng);
            survived_split += a.len() as u64;

            let mut b = BTbs::new(lambda);
            b.observe(vec![1u8], &mut rng);
            b.observe_after(vec![], 1.0, &mut rng);
            survived_whole += b.len() as u64;
        }
        let p1 = survived_split as f64 / trials as f64;
        let p2 = survived_whole as f64 / trials as f64;
        assert!((p1 - p2).abs() < 0.02, "split {p1} vs whole {p2}");
    }

    #[test]
    #[should_panic(expected = "decay rate")]
    fn rejects_negative_lambda() {
        BTbs::<u8>::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn rejects_negative_gap() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s = BTbs::new(0.1);
        s.observe_after(vec![1u8], -1.0, &mut rng);
    }

    #[test]
    fn with_initial_sample_counts() {
        let s = BTbs::with_initial(0.1, vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.batches_observed(), 0);
    }

    #[test]
    fn trait_metadata() {
        let s = BTbs::<u8>::new(0.25);
        assert_eq!(s.name(), "B-TBS");
        assert_eq!(s.decay_rate(), 0.25);
        assert_eq!(s.max_size(), None);
    }
}
