//! Mergeable shard samples — the algebra behind multi-core ingest.
//!
//! §5 of the paper shows that temporally-biased samples can be maintained
//! over *partitioned* data: D-R-TBS keeps the scalar driver state `(W, C)`
//! on a master and the items on workers, and its `Dist,CP` strategy needs
//! no per-item coordination at all. This module pushes that observation to
//! its logical end: run **K fully independent samplers**, one per shard of
//! the stream, with *zero* coordination during ingest, and only combine
//! their states when a sample is actually requested.
//!
//! ## Why the merge is exact
//!
//! Shard `k` sees the sub-stream `B_1^k, B_2^k, …` of a deterministic
//! partitioning (`Σ_k |B_j^k| = |B_j|`), so its total weight obeys
//! `Σ_k W_t^k = W_t`. By Theorem 4.2 each shard-local R-TBS holds every
//! item `i` of its sub-stream with probability `(C^k/W^k)·w_t(i)` where
//! `C^k = min(n_k, W^k)`. The single-node target is `(C/W)·w_t(i)` with
//! `C = min(n, W)`. Downsampling shard `k`'s latent sample from `C^k` to
//!
//! ```text
//! c_k = C · W^k / W
//! ```
//!
//! rescales all of its inclusion probabilities uniformly (Theorem 4.1), so
//! every item lands at exactly `(C/W)·w_t(i)` — the single-node law — and
//! the union of the downsampled shard samples carries total weight
//! `Σ_k c_k = C`. The union of K latent samples has up to K fractional
//! partial items; the internal `merge_latent` fold combines them pairwise
//! with the stochastic rounding of §4.1, preserving each partial item's
//! exact inclusion probability while restoring the `⌊C⌋ + 1` footprint
//! bound.
//!
//! The downsample step requires `c_k ≤ C^k`, i.e. the shard must not have
//! discarded weight the merged sample still needs: `n_k ≥ n·W^k/W`. How
//! much per-shard headroom that takes depends on how evenly the split
//! spreads weight. A *rotated* chunk split bounds the skew only by the
//! decay-geometric series, `|W^k − W/K| < 1/(1−e^{−λ})` — headroom that
//! is paid **per shard** and grows relative to `⌈n/K⌉` as K rises, until
//! shards fall off the saturated fast path (the old "8-shard cliff").
//!
//! [`BalancedSplitter`] amortizes the headroom across the merge instead.
//! It tracks each shard's *decayed item-count deviation*
//! `D_k ← e^{−λ}·D_k + (|B^k| − |B|/K)` and hands every batch's
//! `b mod K` remainder items to the shards with the smallest deviations.
//! By induction the deviation spread never exceeds one (giving +1 to the
//! `r` smallest of a set with spread ≤ 1 keeps the spread ≤ 1), and the
//! deviations sum to zero, so
//!
//! ```text
//! |W^k − W/K| = |D_k| ≤ 1       for every schedule, at every K
//! ```
//!
//! which shrinks the required capacity to
//!
//! ```text
//! n_k = ⌈n/K⌉ + 1               (headroom 0 for K = 1)
//! ```
//!
//! because `c_k = C·W^k/W ≤ (C/W)·(W/K + 1) ≤ n/K + 1 ≤ n_k`. The one
//! spare slot keeps each shard *saturated* whenever the merged sampler
//! comfortably is (`W/K − 1 ≥ n_k`), so shards run the cheap in-place
//! replacement transition, not the O(n_k) unsaturated transition.
//!
//! ## The merge tree
//!
//! Theorem 4.1's merge algebra is associative: once every shard is
//! downsampled to its target `c_k`, the pairwise latent union can be
//! folded in **any** tree shape. [`merge_replay`] is the canonical
//! log-depth schedule: leaves downsample in shard order, internal nodes
//! pair adjacent subtrees level by level ([`MergePlan`]), and every node
//! draws from its **own** RNG substream (`2^128`-spaced splits of the
//! caller's generator, see `Xoshiro256PlusPlus::split_streams`). Node
//! randomness is therefore a pure function of `(caller RNG state, node
//! id)` — the tree can execute sequentially on one thread or scattered
//! across shard workers and produce **bit-identical** results either
//! way. After splitting, the caller's generator `long_jump`s once past
//! the whole substream block; realization draws ride that trajectory.
//!
//! T-TBS is simpler: its acceptance rate `q = n(1−e^{−λ})/b` is a constant
//! independent of the sub-stream, so identically-configured shards already
//! hold every item with the single-node probability `q·e^{−λ·age}` and the
//! merge is a plain union; the per-shard equilibrium sizes `n·b_k/b` sum
//! to `n`. Its tree merge concatenates in leaf order, which reproduces the
//! shard-order concatenation of the linear fold exactly.

use crate::jumps::IngestMode;
use crate::latent::LatentSample;
use crate::rtbs::RTbs;
use crate::ttbs::TTbs;
use rand::Rng;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Configuration of a sharded sampler family: the single-node sampler the
/// merged state must be equivalent to, plus the shard count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Exponential decay rate λ (must be positive when `shards > 1`; the
    /// skew headroom `1/(1−e^{−λ})` diverges at λ = 0).
    pub lambda: f64,
    /// Single-node capacity `n` (R-TBS hard bound / T-TBS target size).
    pub capacity: usize,
    /// Number of shards K.
    pub shards: usize,
    /// Mean batch size `b` of the *whole* stream (T-TBS's assumed rate;
    /// ignored by R-TBS).
    pub mean_batch: f64,
    /// Ingest strategy every shard-local sampler runs (see
    /// [`crate::jumps::IngestMode`]). Jump mode composes with the merge
    /// algebra unchanged: it alters only *how* each shard spends
    /// randomness per batch, not the shard-state law the merge relies on.
    pub ingest: IngestMode,
    /// Batch-granular downsampling drift threshold θ ∈ (0, 1] applied to
    /// every shard-local R-TBS (see [`RTbs::set_defer_threshold`]); 1.0
    /// (the default) keeps the eager per-step downsample. Ignored by
    /// T-TBS, which has no latent downsample to defer.
    pub defer_threshold: f64,
    /// Shard-group threshold: when the per-cell reservoir share
    /// `⌈n/G⌉` would fall below this bound, shard threads are grouped
    /// onto fewer shared *cells* (reservoirs) — `G` starts at `shards`
    /// and halves until `⌈n/G⌉ ≥ threshold` (see [`Self::cells`]) — so
    /// per-reservoir fixed costs scale with the cell count instead of the
    /// thread count. 0 (the default) disables grouping (`cells == shards`).
    pub group_threshold: usize,
}

impl ShardSpec {
    /// Spec for a single-node-equivalent R-TBS sharding.
    pub fn rtbs(lambda: f64, capacity: usize, shards: usize) -> Self {
        Self {
            lambda,
            capacity,
            shards,
            mean_batch: 0.0,
            ingest: IngestMode::PerItem,
            defer_threshold: 1.0,
            group_threshold: 0,
        }
    }

    /// Spec for a single-node-equivalent T-TBS sharding.
    pub fn ttbs(lambda: f64, target: usize, mean_batch: f64, shards: usize) -> Self {
        Self {
            lambda,
            capacity: target,
            shards,
            mean_batch,
            ingest: IngestMode::PerItem,
            defer_threshold: 1.0,
            group_threshold: 0,
        }
    }

    /// Run every shard in the given ingest mode (default
    /// [`IngestMode::PerItem`]).
    pub fn with_ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest = mode;
        self
    }

    /// Enable batch-granular downsampling on every shard-local R-TBS with
    /// drift threshold `theta ∈ (0, 1]` (default 1.0 = eager).
    pub fn with_defer_threshold(mut self, theta: f64) -> Self {
        self.defer_threshold = theta;
        self
    }

    /// Group shard threads onto shared reservoir cells once `⌈n/G⌉`
    /// falls below `threshold` (default 0 = never group).
    pub fn with_group_threshold(mut self, threshold: usize) -> Self {
        self.group_threshold = threshold;
        self
    }

    /// Number of logical reservoir *cells* `G ≤ K`: the unit the sampler
    /// states, batch splits, and merge tree are sized by. Without
    /// grouping (`group_threshold == 0`) every shard thread owns its own
    /// cell, `G = K`. With grouping, `G` halves from `shards` until the
    /// per-cell reservoir share `⌈n/G⌉` reaches the threshold — so at
    /// high K several threads share one cell and the per-batch reservoir
    /// fixed costs (decay/downsample bookkeeping) scale with `G`, not K.
    pub fn cells(&self) -> usize {
        let mut g = self.shards;
        if self.group_threshold == 0 {
            return g;
        }
        while g > 1 && self.capacity.div_ceil(g) < self.group_threshold {
            g = g.div_ceil(2);
        }
        g
    }

    /// Per-cell R-TBS capacity `n_k = ⌈n/G⌉ + 1` over the `G =`
    /// [`Self::cells`] reservoir cells (no headroom for G = 1).
    ///
    /// The single spare slot is all the headroom mergeability needs
    /// *under the engine's balanced split*: [`BalancedSplitter`] keeps
    /// every cell's decayed weight within one item of `W/G`, so the
    /// downsample target `C·W^k/W` never exceeds `⌈n/G⌉ + 1` (module
    /// docs). This replaces the old per-shard `⌈1/(1−e^{−λ})⌉` headroom,
    /// which grew relative to `⌈n/K⌉` as K rose and pushed high-K shards
    /// off the saturated fast path.
    pub fn shard_capacity(&self) -> usize {
        let cells = self.cells();
        if cells <= 1 {
            return self.capacity;
        }
        self.capacity.div_ceil(cells) + 1
    }

    fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(
            self.lambda.is_finite() && self.lambda >= 0.0,
            "decay rate must be finite and non-negative"
        );
        assert!(
            self.cells() == 1 || self.lambda > 0.0,
            "sharded sampling requires λ > 0: the skew headroom 1/(1−e^{{−λ}}) \
             diverges at λ = 0 (use a single shard for undecayed sampling)"
        );
        assert!(
            self.defer_threshold.is_finite()
                && self.defer_threshold > 0.0
                && self.defer_threshold <= 1.0,
            "defer threshold must lie in (0, 1]"
        );
    }
}

/// Scalar state of one merge, computed **once** over all shard forks
/// before the tree executes (see [`MergeableSample::merge_targets`]).
///
/// Precomputing the global scalars is what makes the tree embarrassingly
/// parallel: each leaf's downsample target depends on the *global* weight
/// ratio `C·W^k/W`, so it cannot be derived pairwise — but it can be
/// derived upfront from the forks alone, after which every tree node is
/// independent of every non-descendant.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeScalars {
    /// Per-leaf downsample targets `c_k = min(C·W^k/W, C^k)` in shard-id
    /// order (empty for schemes that need no leaf step, e.g. T-TBS).
    pub leaf_targets: Vec<f64>,
    /// Single-node-equivalent total stream weight `W = Σ_k W^k`, summed
    /// in shard-id order (bit-identical to the linear fold's sum).
    pub total_weight: f64,
    /// Step counter for the merged sampler (max over shards).
    pub steps: u64,
}

/// A sampler whose state can be maintained shard-locally and merged into a
/// single-node-equivalent sample. Implemented by [`RTbs`] and [`TTbs`];
/// the parallel ingest engine in `tbs-distributed` is generic over this
/// trait.
///
/// The merge is expressed as four orthogonal primitives — scalar
/// precompute ([`merge_targets`](Self::merge_targets)), per-leaf
/// preparation ([`merge_leaf`](Self::merge_leaf)), the associative
/// pairwise combine ([`merge_pair`](Self::merge_pair)), and root
/// finalization ([`merge_finalize`](Self::merge_finalize)) — so the fold
/// can run as a log-depth tree across threads. The provided
/// [`merge_shards`](Self::merge_shards) runs the canonical sequential
/// schedule ([`merge_replay`]), which is bit-identical to any parallel
/// execution of the same tree.
pub trait MergeableSample: Sized {
    /// The stream item type.
    type Item;

    /// Build the K shard-local samplers for `spec`, in shard-id order.
    fn make_shards(spec: &ShardSpec) -> Vec<Self>;

    /// Compute the merge's global scalars from the shard forks (in
    /// shard-id order). Consumes no randomness.
    fn merge_targets(shards: &[Self], spec: &ShardSpec) -> MergeScalars;

    /// Prepare one leaf for the tree: downsample this shard's state to
    /// its precomputed `target` weight (Theorem 4.1). Identity for
    /// schemes whose shard states already obey the single-node law.
    fn merge_leaf(self, target: f64, rng: &mut Xoshiro256PlusPlus) -> Self;

    /// Combine two adjacent subtrees (left child first — implementations
    /// must preserve left-to-right order so any tree shape reproduces the
    /// shard-order linear fold).
    fn merge_pair(left: Self, right: Self, spec: &ShardSpec, rng: &mut Xoshiro256PlusPlus) -> Self;

    /// Stamp the root with the merge's global scalars, producing the
    /// single-node-equivalent sampler. Consumes no randomness.
    fn merge_finalize(root: Self, scalars: &MergeScalars, spec: &ShardSpec) -> Self;

    /// Merge shard states (in shard-id order) into one sampler whose
    /// realized sample is statistically equivalent to a single-node run
    /// over the interleaved stream. Consumes the shards. This is the
    /// canonical sequential execution of the merge tree — see
    /// [`merge_replay`] for the RNG-substream contract.
    fn merge_shards(shards: Vec<Self>, spec: &ShardSpec, rng: &mut Xoshiro256PlusPlus) -> Self {
        merge_replay(shards, spec, rng)
    }

    /// Shard-local ingest of one sub-batch (drain-based: the buffer's
    /// allocation survives for recycling). Monomorphized over the RNG.
    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<Self::Item>, rng: &mut R);

    /// A copy of the shard-local state, cheap enough to take *inline* on
    /// the ingest thread at a snapshot barrier so the expensive merge can
    /// run off to the side while the shard keeps ingesting. The cost must
    /// be bounded by the shard's sample footprint, never by the stream
    /// length — for R-TBS that is `O(n_k)` (the latent sample holds at
    /// most `n_k + 1` items), for T-TBS `O(|S_t^k|)`. Consumes no
    /// randomness: the fork is bit-identical to the live state.
    fn fork_for_merge(&self) -> Self;

    /// Total decayed stream weight `W_t` seen by this sampler, for
    /// schemes that track one (`None` for T-TBS, which needs no
    /// stream-level scalar state). On a merged sampler this is the
    /// single-node-equivalent `W_t = Σ_k W_t^k`.
    fn total_stream_weight(&self) -> Option<f64>;

    /// Realize the current sample into `out` (cleared first).
    fn realize_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<Self::Item>);

    /// Expected realized sample size (`C` for R-TBS, `|S|` for T-TBS).
    fn expected_size(&self) -> f64;
}

/// Deterministically split `batch` into `out.len()` shard sub-batches.
///
/// Shard `i` receives a contiguous chunk of `⌊b/K⌋` or `⌈b/K⌉` items; the
/// `b mod K` extra items go to the shards starting at `rotation % K`
/// (callers rotate per batch so remainders spread evenly). Each `out[i]`
/// is cleared and refilled — allocation-free once the buffers have reached
/// their high-water capacity. The split is a pure function of
/// `(b, K, rotation)`, which is what makes sharded runs reproducible.
pub fn partition_batch<T>(batch: &mut Vec<T>, rotation: usize, out: &mut [Vec<T>]) {
    let k = out.len();
    debug_assert!(k > 0, "cannot partition into zero shards");
    let b = batch.len();
    let base = b / k;
    let rem = b % k;
    // Walk shards from last to first so each chunk drains from the tail —
    // O(chunk) per shard instead of O(b) front-shifts.
    let mut end = b;
    for i in (0..k).rev() {
        let extra = usize::from((i + k - rotation % k) % k < rem);
        let len = base + extra;
        let buf = &mut out[i];
        buf.clear();
        buf.extend(batch.drain(end - len..));
        end -= len;
    }
    debug_assert_eq!(end, 0);
    debug_assert!(batch.is_empty());
}

/// Deviation-balanced deterministic batch splitter — the engine's split
/// policy, co-designed with [`ShardSpec::shard_capacity`].
///
/// Like [`partition_batch`], shard `i` receives a contiguous chunk of
/// `⌊b/K⌋` or `⌈b/K⌉` items, but the `b mod K` remainder items go to the
/// shards whose *decayed item-count deviation* `D_k` is smallest (ties
/// break toward the lower shard id) instead of following a fixed
/// rotation. The deviations evolve as `D_k ← e^{−λ}·D_k + (chunk_k −
/// b/K)`, which makes `D_k` exactly the shard's decayed-weight deviation
/// `W^k − W/K`; the balancing rule keeps `|D_k| ≤ 1` for **every**
/// schedule (see the module docs), which is what licenses the `⌈n/K⌉+1`
/// shard capacity.
///
/// The split is a pure function of the deviation state and the batch
/// lengths — independent of thread timing — so sharded runs stay
/// reproducible, and the state is a plain `Vec<f64>` that checkpoints
/// alongside the engine. All scratch space is pre-sized at construction;
/// `split` performs no heap allocation once the output buffers have
/// reached their high-water capacity.
#[derive(Debug, Clone)]
pub struct BalancedSplitter {
    /// Per-batch decay factor `e^{−λ}`.
    decay: f64,
    /// Decayed item-count deviations `D_k = W^k − W/K`, one per shard.
    deviations: Vec<f64>,
    /// Scratch: shard ids sorted by deviation (remainder placement).
    order: Vec<usize>,
    /// Scratch: per-shard chunk length of the current batch.
    sizes: Vec<usize>,
}

impl BalancedSplitter {
    /// A fresh splitter for `shards` shards at decay rate λ.
    pub fn new(lambda: f64, shards: usize) -> Self {
        Self::from_deviations(lambda, vec![0.0; shards])
    }

    /// Rebuild a splitter from checkpointed deviations.
    pub fn from_deviations(lambda: f64, deviations: Vec<f64>) -> Self {
        assert!(!deviations.is_empty(), "need at least one shard");
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative"
        );
        let shards = deviations.len();
        Self {
            decay: (-lambda).exp(),
            deviations,
            order: Vec::with_capacity(shards),
            sizes: vec![0; shards],
        }
    }

    /// The current deviation state (shard-id order), for checkpointing.
    pub fn deviations(&self) -> &[f64] {
        &self.deviations
    }

    /// Split `batch` into `out.len()` shard sub-batches and advance the
    /// deviation state. Each `out[i]` is cleared and refilled.
    pub fn split<T>(&mut self, batch: &mut Vec<T>, out: &mut [Vec<T>]) {
        let k = out.len();
        debug_assert_eq!(k, self.deviations.len(), "shard count mismatch");
        let b = batch.len();
        let base = b / k;
        let rem = b % k;
        for d in &mut self.deviations {
            *d *= self.decay;
        }
        self.sizes.clear();
        self.sizes.resize(k, base);
        if rem > 0 {
            // The remainder goes to the `rem` smallest deviations;
            // `select_nth_unstable_by` is in-place (no allocation).
            self.order.clear();
            self.order.extend(0..k);
            let dev = &self.deviations;
            self.order.select_nth_unstable_by(rem - 1, |&a, &b| {
                dev[a].total_cmp(&dev[b]).then(a.cmp(&b))
            });
            for &shard in &self.order[..rem] {
                self.sizes[shard] += 1;
            }
        }
        // Walk shards from last to first so each chunk drains from the
        // tail — O(chunk) per shard instead of O(b) front-shifts.
        let even = if k > 0 { b as f64 / k as f64 } else { 0.0 };
        let mut end = b;
        for i in (0..k).rev() {
            let len = self.sizes[i];
            let buf = &mut out[i];
            buf.clear();
            buf.extend(batch.drain(end - len..));
            end -= len;
            self.deviations[i] += len as f64 - even;
        }
        debug_assert_eq!(end, 0);
        debug_assert!(batch.is_empty());
    }
}

/// The shape of the canonical log-depth merge tree over K shard leaves.
///
/// Nodes are numbered `0..2K−1`: leaves `0..K` in shard-id order,
/// internal nodes `K..2K−1` in level-order creation order (adjacent
/// subtrees pair up; an odd subtree carries to the next level). The
/// numbering is what gives every node a stable RNG substream in
/// [`merge_replay`] regardless of execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// Children `(left, right)` of internal node `K + i`, in creation
    /// order — always topologically sorted (children precede parents).
    pairs: Vec<(usize, usize)>,
    /// `parent[node]`, with `usize::MAX` at the root.
    parent: Vec<usize>,
    /// Number of pairing levels, `⌈log₂ K⌉`.
    depth: usize,
}

impl MergePlan {
    /// Build the plan for `leaves` shards (`leaves ≥ 1`).
    pub fn new(leaves: usize) -> Self {
        assert!(leaves > 0, "need at least one leaf");
        let mut pairs = Vec::with_capacity(leaves.saturating_sub(1));
        let mut parent = vec![usize::MAX; 2 * leaves - 1];
        let mut level: Vec<usize> = (0..leaves).collect();
        let mut next_id = leaves;
        let mut depth = 0;
        while level.len() > 1 {
            depth += 1;
            let mut up = Vec::with_capacity(level.len().div_ceil(2));
            for chunk in level.chunks(2) {
                if let [l, r] = *chunk {
                    pairs.push((l, r));
                    parent[l] = next_id;
                    parent[r] = next_id;
                    up.push(next_id);
                    next_id += 1;
                } else {
                    up.push(chunk[0]);
                }
            }
            level = up;
        }
        debug_assert_eq!(pairs.len(), leaves - 1);
        Self {
            pairs,
            parent,
            depth,
        }
    }

    /// Number of leaves K.
    pub fn leaves(&self) -> usize {
        self.pairs.len() + 1
    }

    /// Total node count `2K − 1`.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Children of internal node `leaves() + i`, topologically sorted.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Parent of `node`, or `None` at the root.
    pub fn parent(&self, node: usize) -> Option<usize> {
        match self.parent[node] {
            usize::MAX => None,
            p => Some(p),
        }
    }

    /// The root node id (the last-created internal node; leaf 0 if K=1).
    pub fn root(&self) -> usize {
        self.node_count() - 1
    }

    /// Number of pairing levels, `⌈log₂ K⌉`.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Execute the canonical merge tree sequentially: the reference schedule
/// every parallel execution must (and does) reproduce bit-for-bit.
///
/// RNG-substream contract: the caller's generator is split into `2K`
/// jump-spaced substreams **without advancing it** — tree node `n` draws
/// exclusively from substream `n + 1` — and is then advanced by one
/// `long_jump` past the whole block. Realization draws made by the caller
/// after this function ride the post-`long_jump` trajectory, disjoint
/// from every node substream. Node randomness is thus a pure function of
/// `(entry RNG state, node id)`: executing the same tree on shard worker
/// threads in any completion order yields identical bits.
pub fn merge_replay<S: MergeableSample>(
    shards: Vec<S>,
    spec: &ShardSpec,
    rng: &mut Xoshiro256PlusPlus,
) -> S {
    assert_eq!(shards.len(), spec.cells(), "shard cell count mismatch");
    let k = shards.len();
    let plan = MergePlan::new(k);
    let scalars = S::merge_targets(&shards, spec);
    let mut streams = rng.split_streams(2 * k);
    rng.long_jump();
    let mut slots: Vec<Option<S>> = shards.into_iter().map(Some).collect();
    slots.resize_with(plan.node_count(), || None);
    for leaf in 0..k {
        let s = slots[leaf].take().expect("leaf occupied");
        let target = scalars.leaf_targets.get(leaf).copied().unwrap_or(0.0);
        slots[leaf] = Some(S::merge_leaf(s, target, &mut streams[leaf + 1]));
    }
    for (i, &(l, r)) in plan.pairs().iter().enumerate() {
        let node = k + i;
        let left = slots[l].take().expect("left child computed");
        let right = slots[r].take().expect("right child computed");
        slots[node] = Some(S::merge_pair(left, right, spec, &mut streams[node + 1]));
    }
    let root = slots[plan.root()].take().expect("root computed");
    S::merge_finalize(root, &scalars, spec)
}

/// Fold `incoming` into the accumulating latent union `(acc, acc_weight)`.
///
/// Full items concatenate; the two partial items are combined by the §4.1
/// stochastic-rounding algebra so that each keeps its exact inclusion
/// probability: with fractional parts α (accumulator) and β (incoming),
/// either the combined fraction stays below one — keep a single partial
/// item, the accumulator's with probability α/(α+β) — or it crosses one,
/// promoting one of the two to full (the accumulator's with probability
/// `(1−β)/(2−α−β)`, which solves `Pr[promoted or realized] = α`) while the
/// other remains partial with fraction α+β−1.
fn merge_latent<T, R: Rng + ?Sized>(
    acc: &mut LatentSample<T>,
    incoming: LatentSample<T>,
    rng: &mut R,
) {
    let (inc_full, inc_partial, inc_weight) = incoming.into_parts();
    let (mut full, acc_partial, acc_weight) = std::mem::take(acc).into_parts();
    let alpha = acc_weight - acc_weight.floor();
    let beta = inc_weight - inc_weight.floor();
    let new_weight = acc_weight + inc_weight;
    full.extend(inc_full);

    // Ground truth for the structure is the *computed* new weight: the
    // number of partial-item promotions is whatever reconciles the full
    // count with ⌊new_weight⌋ (0 or 1 in exact arithmetic; the clamp
    // guards the representability edge where α or β rounded to 1).
    let mut promotions = (new_weight.floor() as usize).saturating_sub(full.len());
    let mut candidates: Vec<(T, f64)> = acc_partial
        .map(|p| (p, alpha))
        .into_iter()
        .chain(inc_partial.map(|p| (p, beta)))
        .collect();
    promotions = promotions.min(candidates.len());

    if promotions == 1 && candidates.len() == 2 {
        // Promote one of the two partials; the other keeps fraction α+β−1.
        let (_, a) = candidates[0];
        let (_, b) = candidates[1];
        let p_first = (1.0 - b) / (2.0 - a - b);
        let keep = if rng.gen::<f64>() < p_first { 0 } else { 1 };
        full.push(candidates.swap_remove(keep).0);
    } else {
        for _ in 0..promotions {
            // 0 or 1 candidates: promotion is forced, not randomized.
            full.push(candidates.pop().expect("promotion needs a candidate").0);
        }
    }

    let frac = new_weight - new_weight.floor();
    let partial = if frac > 0.0 && !candidates.is_empty() {
        let item = if candidates.len() == 2 {
            // Both partials survived below the integer boundary: keep the
            // accumulator's with probability α/(α+β).
            let (_, a) = candidates[0];
            let (_, b) = candidates[1];
            let idx = usize::from(rng.gen::<f64>() >= a / (a + b));
            candidates.swap_remove(idx).0
        } else {
            candidates.pop().expect("candidate").0
        };
        Some(item)
    } else {
        None
    };

    *acc = LatentSample::from_raw_parts(full, partial, new_weight);
}

impl<T: Clone> MergeableSample for RTbs<T> {
    type Item = T;

    fn make_shards(spec: &ShardSpec) -> Vec<Self> {
        spec.validate();
        let n_k = spec.shard_capacity();
        (0..spec.cells())
            .map(|_| {
                let mut s = RTbs::new(spec.lambda, n_k);
                s.set_ingest_mode(spec.ingest);
                s.set_defer_threshold(spec.defer_threshold);
                s
            })
            .collect()
    }

    fn merge_targets(shards: &[Self], spec: &ShardSpec) -> MergeScalars {
        assert_eq!(shards.len(), spec.cells(), "shard cell count mismatch");
        let n = spec.capacity as f64;
        let w: f64 = shards.iter().map(|s| s.total_weight()).sum();
        let c = w.min(n);
        let leaf_targets = shards
            .iter()
            .map(|s| {
                let w_k = s.total_weight();
                let c_k = s.sample_weight();
                if w_k <= 0.0 || c_k <= 0.0 {
                    return 0.0;
                }
                // The min() guards floating-point ulps at the c_k
                // boundary (the balanced split guarantees c·w_k/w ≤ c_k
                // analytically).
                (c * w_k / w).min(c_k)
            })
            .collect();
        MergeScalars {
            leaf_targets,
            total_weight: w,
            steps: shards
                .iter()
                .map(|s| s.batches_observed())
                .max()
                .unwrap_or(0),
        }
    }

    fn merge_leaf(mut self, target: f64, rng: &mut Xoshiro256PlusPlus) -> Self {
        // A fork taken mid-deferral materializes on the leaf's own
        // substream (the live shard keeps its pending state untouched);
        // no-op consuming no randomness when nothing is deferred.
        self.materialize_deferred(rng);
        if target > 0.0 && target < self.sample_weight() {
            crate::downsample::downsample(self.latent_mut(), target, rng);
        }
        self
    }

    fn merge_pair(left: Self, right: Self, spec: &ShardSpec, rng: &mut Xoshiro256PlusPlus) -> Self {
        let (_, _, l_w, l_steps, mut latent) = left.into_merge_parts();
        let (_, _, r_w, r_steps, incoming) = right.into_merge_parts();
        merge_latent(&mut latent, incoming, rng);
        // Subtree weight/steps are only carried for bookkeeping; the root
        // gets the exact global scalars in merge_finalize.
        RTbs::from_merge_parts(
            spec.lambda,
            spec.capacity,
            l_w + r_w,
            l_steps.max(r_steps),
            latent,
        )
    }

    fn merge_finalize(root: Self, scalars: &MergeScalars, spec: &ShardSpec) -> Self {
        let (_, _, _, _, latent) = root.into_merge_parts();
        RTbs::from_merge_parts(
            spec.lambda,
            spec.capacity,
            scalars.total_weight,
            scalars.steps,
            latent,
        )
    }

    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        self.observe_drain(batch, rng);
    }

    fn fork_for_merge(&self) -> Self {
        // The clone copies the latent sample (≤ n_k + 1 items) and a few
        // scalars — bounded by the shard capacity, not the stream.
        self.clone()
    }

    fn total_stream_weight(&self) -> Option<f64> {
        Some(self.total_weight())
    }

    fn realize_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<T>) {
        self.sample_into(rng, out);
    }

    fn expected_size(&self) -> f64 {
        self.sample_weight()
    }
}

impl<T: Clone> MergeableSample for TTbs<T> {
    type Item = T;

    fn make_shards(spec: &ShardSpec) -> Vec<Self> {
        spec.validate();
        // Every shard runs the *global* configuration: the acceptance rate
        // q = n(1−e^{−λ})/b does not depend on the sub-stream, so shard
        // samples already obey the single-node inclusion law and sum to
        // the global equilibrium size n.
        (0..spec.cells())
            .map(|_| {
                let mut s = TTbs::new(spec.lambda, spec.capacity, spec.mean_batch);
                s.set_ingest_mode(spec.ingest);
                s
            })
            .collect()
    }

    fn merge_targets(shards: &[Self], spec: &ShardSpec) -> MergeScalars {
        assert_eq!(shards.len(), spec.cells(), "shard cell count mismatch");
        MergeScalars {
            // No leaf step: shard states already obey the single-node law.
            leaf_targets: Vec::new(),
            total_weight: 0.0,
            steps: shards
                .iter()
                .map(|s| s.batches_observed())
                .max()
                .unwrap_or(0),
        }
    }

    fn merge_leaf(self, _target: f64, _rng: &mut Xoshiro256PlusPlus) -> Self {
        self
    }

    fn merge_pair(
        left: Self,
        right: Self,
        spec: &ShardSpec,
        _rng: &mut Xoshiro256PlusPlus,
    ) -> Self {
        // Left-then-right concatenation: any tree shape over ordered
        // leaves reproduces the shard-order concatenation exactly.
        let mut items = Vec::with_capacity(left.len() + right.len());
        items.extend_from_slice(left.items());
        items.extend_from_slice(right.items());
        let mut merged = TTbs::with_initial(spec.lambda, spec.capacity, spec.mean_batch, items);
        merged.set_steps(left.batches_observed().max(right.batches_observed()));
        merged
    }

    fn merge_finalize(root: Self, scalars: &MergeScalars, spec: &ShardSpec) -> Self {
        let mut merged = TTbs::with_initial(
            spec.lambda,
            spec.capacity,
            spec.mean_batch,
            root.items().to_vec(),
        );
        merged.set_steps(scalars.steps);
        merged
    }

    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        self.observe_drain(batch, rng);
    }

    fn fork_for_merge(&self) -> Self {
        // The clone copies the current sample, whose size is held near the
        // per-shard equilibrium `n·b_k/b` by the T-TBS dynamics.
        self.clone()
    }

    fn total_stream_weight(&self) -> Option<f64> {
        None
    }

    fn realize_into<R: Rng + ?Sized>(&self, _rng: &mut R, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(self.items());
    }

    fn expected_size(&self) -> f64 {
        self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn partition_is_deterministic_and_exhaustive() {
        let mut a: Vec<u32> = (0..17).collect();
        let mut b: Vec<u32> = (0..17).collect();
        let mut out_a = vec![Vec::new(); 4];
        let mut out_b = vec![Vec::new(); 4];
        partition_batch(&mut a, 2, &mut out_a);
        partition_batch(&mut b, 2, &mut out_b);
        assert_eq!(out_a, out_b);
        let total: usize = out_a.iter().map(Vec::len).sum();
        assert_eq!(total, 17);
        let mut all: Vec<u32> = out_a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn partition_sizes_stay_within_one_of_even() {
        let mut out = vec![Vec::new(); 3];
        for (b, rotation) in [(10usize, 0usize), (11, 1), (12, 2), (0, 0), (2, 5)] {
            let mut batch: Vec<u32> = (0..b as u32).collect();
            partition_batch(&mut batch, rotation, &mut out);
            for part in &out {
                let diff = part.len() as f64 - b as f64 / 3.0;
                assert!(diff.abs() < 1.0, "b={b}: shard got {}", part.len());
            }
        }
    }

    #[test]
    fn partition_rotation_moves_the_remainder() {
        // 7 items over 3 shards: the shard receiving 3 items follows the
        // rotation.
        let mut heavy = Vec::new();
        for rotation in 0..3 {
            let mut batch: Vec<u32> = (0..7).collect();
            let mut out = vec![Vec::new(); 3];
            partition_batch(&mut batch, rotation, &mut out);
            heavy.push(out.iter().position(|p| p.len() == 3).unwrap());
        }
        assert_eq!(heavy.len(), 3);
        assert_ne!(heavy[0], heavy[1]);
    }

    #[test]
    fn shard_capacity_has_headroom() {
        // ⌈1000/4⌉ + 1: one spare slot, amortized across the merge by the
        // balanced split — not the old per-shard ⌈1/(1−e^{−λ})⌉.
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 4).shard_capacity(), 251);
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 8).shard_capacity(), 126);
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 16).shard_capacity(), 64);
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 32).shard_capacity(), 33);
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 1).shard_capacity(), 1000);
    }

    #[test]
    fn cells_halve_until_group_threshold_is_met() {
        // Grouping off (threshold 0): cells == shards.
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 64).cells(), 64);
        // ⌈1000/64⌉ = 16 < 24 → halve to 32; ⌈1000/32⌉ = 32 ≥ 24 → stop.
        let spec = ShardSpec::rtbs(0.1, 1000, 64).with_group_threshold(24);
        assert_eq!(spec.cells(), 32);
        assert_eq!(spec.shard_capacity(), 33);
        // K = 32 already meets the threshold: ungrouped.
        let spec = ShardSpec::rtbs(0.1, 1000, 32).with_group_threshold(24);
        assert_eq!(spec.cells(), 32);
        // Tiny reservoir: halving bottoms out at a single shared cell.
        let spec = ShardSpec::rtbs(0.1, 10, 64).with_group_threshold(24);
        assert_eq!(spec.cells(), 1);
        assert_eq!(spec.shard_capacity(), 10);
        // Threshold met exactly at K: no grouping.
        let spec = ShardSpec::rtbs(0.1, 96, 4).with_group_threshold(24);
        assert_eq!(spec.cells(), 4);
    }

    /// A latent sample tagged from `base`: ⌊w⌋ full items plus a partial
    /// (`base + 99`) when `w` is fractional.
    fn raw_with_weight(base: u32, w: f64) -> LatentSample<u32> {
        let full: Vec<u32> = (base..base + w.floor() as u32).collect();
        let partial = (w.fract() > 0.0).then_some(base + 99);
        LatentSample::from_raw_parts(full, partial, w)
    }

    #[test]
    fn absorb_matches_merge_latent_bit_for_bit() {
        // `LatentSample::absorb` (the deferred-downsample union) must be
        // draw-for-draw identical to the merge tree's `merge_latent` —
        // same RNG consumption, same structure — across every candidate
        // configuration: 0/1/2 partials, promotion and no-promotion.
        let weights = [2.0f64, 2.7, 2.2, 1.6, 1.3, 0.4, 0.9, 3.0, 1.0];
        for (i, &w1) in weights.iter().enumerate() {
            for (j, &w2) in weights.iter().enumerate() {
                for seed in 0..10u64 {
                    let seed = 1000 + seed + (i * weights.len() + j) as u64 * 100;
                    let mut rng_m = Xoshiro256PlusPlus::seed_from_u64(seed);
                    let mut rng_a = Xoshiro256PlusPlus::seed_from_u64(seed);

                    let mut acc_m = raw_with_weight(0, w1);
                    let inc_m = raw_with_weight(100, w2);
                    merge_latent(&mut acc_m, inc_m, &mut rng_m);

                    let mut acc_a = raw_with_weight(0, w1);
                    let mut inc_a = raw_with_weight(100, w2);
                    acc_a.absorb(&mut inc_a, &mut rng_a);

                    assert_eq!(
                        acc_m.full_items(),
                        acc_a.full_items(),
                        "({w1}, {w2}) seed {seed}: full items diverged"
                    );
                    assert_eq!(acc_m.partial_item(), acc_a.partial_item());
                    assert_eq!(acc_m.weight().to_bits(), acc_a.weight().to_bits());
                    // Same number of draws: the streams stay in lockstep.
                    assert_eq!(rng_m.gen::<u64>(), rng_a.gen::<u64>());
                }
            }
        }
    }

    #[test]
    fn balanced_split_is_deterministic_and_exhaustive() {
        let mut sa = BalancedSplitter::new(0.1, 4);
        let mut sb = BalancedSplitter::new(0.1, 4);
        let mut out_a = vec![Vec::new(); 4];
        let mut out_b = vec![Vec::new(); 4];
        for t in 0..20u32 {
            let b = [17u32, 0, 5, 100, 3][t as usize % 5];
            let mut batch_a: Vec<u32> = (0..b).collect();
            let mut batch_b = batch_a.clone();
            sa.split(&mut batch_a, &mut out_a);
            sb.split(&mut batch_b, &mut out_b);
            assert_eq!(out_a, out_b, "t={t}: split depends on something hidden");
            let mut all: Vec<u32> = out_a.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..b).collect::<Vec<_>>(), "t={t}: items lost");
            for part in &out_a {
                let diff = part.len() as f64 - b as f64 / 4.0;
                assert!(diff.abs() < 1.0, "t={t}: chunk {}", part.len());
            }
        }
        assert_eq!(sa.deviations(), sb.deviations());
    }

    #[test]
    fn balanced_split_bounds_every_deviation_by_one() {
        // |D_k| ≤ 1 for adversarial schedules at several K and λ — the
        // invariant that licenses the ⌈n/K⌉+1 capacity.
        for k in [2usize, 3, 7, 8, 16, 32] {
            for lambda in [0.01f64, 0.1, 0.5, 2.0] {
                let mut splitter = BalancedSplitter::new(lambda, k);
                let mut out = vec![Vec::new(); k];
                // Remainder-heavy sizes (b mod K ≠ 0 almost always).
                for t in 0..500usize {
                    let b = [1usize, k - 1, 3 * k + 1, 0, 2 * k + k / 2, 1000][t % 6];
                    let mut batch: Vec<u32> = (0..b as u32).collect();
                    splitter.split(&mut batch, &mut out);
                    let sum: f64 = splitter.deviations().iter().sum();
                    assert!(sum.abs() < 1e-6, "K={k} λ={lambda}: ΣD = {sum}");
                    for (i, d) in splitter.deviations().iter().enumerate() {
                        assert!(
                            d.abs() <= 1.0 + 1e-9,
                            "K={k} λ={lambda} t={t}: |D_{i}| = {}",
                            d.abs()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn balanced_split_state_round_trips() {
        let mut a = BalancedSplitter::new(0.2, 3);
        let mut out = vec![Vec::new(); 3];
        for t in 0..7u32 {
            let mut batch: Vec<u32> = (0..10 + t).collect();
            a.split(&mut batch, &mut out);
        }
        let mut b = BalancedSplitter::from_deviations(0.2, a.deviations().to_vec());
        for _ in 0..7 {
            let mut batch_a: Vec<u32> = (0..11).collect();
            let mut batch_b = batch_a.clone();
            let mut out_b = vec![Vec::new(); 3];
            a.split(&mut batch_a, &mut out);
            b.split(&mut batch_b, &mut out_b);
            assert_eq!(out, out_b, "restored splitter diverged");
        }
    }

    #[test]
    fn merge_plan_shapes_are_canonical() {
        for k in [1usize, 2, 3, 5, 8, 13, 16, 32] {
            let plan = MergePlan::new(k);
            assert_eq!(plan.leaves(), k);
            assert_eq!(plan.node_count(), 2 * k - 1);
            assert_eq!(plan.pairs().len(), k - 1);
            let expect_depth = (k as f64).log2().ceil() as usize;
            assert_eq!(plan.depth(), expect_depth, "K={k}");
            assert_eq!(plan.parent(plan.root()), None);
            // Children precede parents, every non-root has a parent, and
            // each node is referenced as a child exactly once.
            let mut seen = vec![0u32; plan.node_count()];
            for (i, &(l, r)) in plan.pairs().iter().enumerate() {
                let node = k + i;
                assert!(l < node && r < node, "K={k}: pair {i} not topo-sorted");
                assert_eq!(plan.parent(l), Some(node));
                assert_eq!(plan.parent(r), Some(node));
                seen[l] += 1;
                seen[r] += 1;
            }
            for (node, &count) in seen.iter().enumerate() {
                let expect = u32::from(node != plan.root());
                assert_eq!(count, expect, "K={k}: node {node} referenced {count}×");
            }
        }
    }

    #[test]
    fn merge_plan_pairs_preserve_leaf_order() {
        // In-order traversal of any plan must visit leaves 0..K in order:
        // the property that lets T-TBS concatenate pairwise.
        for k in [2usize, 3, 6, 7, 16] {
            let plan = MergePlan::new(k);
            fn visit(plan: &MergePlan, node: usize, out: &mut Vec<usize>) {
                if node < plan.leaves() {
                    out.push(node);
                } else {
                    let (l, r) = plan.pairs()[node - plan.leaves()];
                    visit(plan, l, out);
                    visit(plan, r, out);
                }
            }
            let mut order = Vec::new();
            visit(&plan, plan.root(), &mut order);
            assert_eq!(order, (0..k).collect::<Vec<_>>(), "K={k}");
        }
    }

    #[test]
    fn merge_replay_does_not_touch_node_substreams_afterwards() {
        // The caller's RNG must land exactly one long_jump past its entry
        // state, regardless of how much randomness the tree consumed.
        let spec = ShardSpec::rtbs(0.3, 40, 4);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut feed_rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut splitter = BalancedSplitter::new(spec.lambda, 4);
        let mut out = vec![Vec::new(); 4];
        for t in 0..50u64 {
            let mut batch: Vec<u64> = (0..33).map(|i| t * 100 + i).collect();
            splitter.split(&mut batch, &mut out);
            for (shard, sub) in shards.iter_mut().zip(out.iter_mut()) {
                shard.observe_drain(sub, &mut feed_rng);
            }
        }
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut expected = rng.clone();
        expected.long_jump();
        let _ = merge_replay(shards, &spec, &mut rng);
        assert_eq!(rng.state(), expected.state());
    }

    #[test]
    #[should_panic(expected = "requires λ > 0")]
    fn rejects_undecayed_sharding() {
        let spec = ShardSpec::rtbs(0.0, 100, 4);
        let _ = RTbs::<u64>::make_shards(&spec);
    }

    #[test]
    fn merge_latent_weight_and_counts_consistent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        // Fold several fractional latent samples and check invariants hold
        // after every fold.
        let mut acc = LatentSample::<u32>::empty();
        let mut expect_weight = 0.0;
        for (full, frac) in [(3usize, 0.25), (2, 0.5), (0, 0.9), (4, 0.0), (1, 0.75)] {
            let l = if frac > 0.0 {
                // Downsample from an integral state to produce a valid
                // fractional latent sample of weight full + frac.
                let mut x = LatentSample::from_full((0..=full as u32).collect());
                crate::downsample::downsample(&mut x, full as f64 + frac, &mut rng);
                x
            } else {
                LatentSample::from_full((0..full as u32).collect())
            };
            expect_weight += l.weight();
            merge_latent(&mut acc, l, &mut rng);
            acc.check_invariants().unwrap();
            assert!((acc.weight() - expect_weight).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_latent_partial_inclusion_probabilities_are_exact() {
        // Two latent samples with only partial items (weights α and β):
        // after merging, item A must realize with probability α and item B
        // with probability β, for α+β below and above one.
        let trials = 200_000u64;
        for (alpha, beta) in [(0.3f64, 0.4f64), (0.7, 0.6), (0.5, 0.5), (0.9, 0.2)] {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
            let mut hits_a = 0u64;
            let mut hits_b = 0u64;
            for _ in 0..trials {
                let a = LatentSample::from_raw_parts(vec![], Some(1u8), alpha);
                let b = LatentSample::from_raw_parts(vec![], Some(2u8), beta);
                let mut acc = LatentSample::empty();
                merge_latent(&mut acc, a, &mut rng);
                merge_latent(&mut acc, b, &mut rng);
                acc.check_invariants().unwrap();
                let mut out = Vec::new();
                acc.realize_into(&mut rng, &mut out);
                hits_a += u64::from(out.contains(&1));
                hits_b += u64::from(out.contains(&2));
            }
            let pa = hits_a as f64 / trials as f64;
            let pb = hits_b as f64 / trials as f64;
            assert!(
                (pa - alpha).abs() < 0.005,
                "α={alpha}, β={beta}: Pr[A]={pa}"
            );
            assert!((pb - beta).abs() < 0.005, "α={alpha}, β={beta}: Pr[B]={pb}");
        }
    }

    #[test]
    fn rtbs_merge_preserves_weights_exactly() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let spec = ShardSpec::rtbs(0.1, 50, 4);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut splitter = BalancedSplitter::new(spec.lambda, 4);
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for t in 0..200u64 {
            let b = [30u64, 0, 120, 5][t as usize % 4];
            let mut batch: Vec<u64> = (0..b).map(|i| t * 1000 + i).collect();
            splitter.split(&mut batch, &mut out);
            for (shard, sub) in shards.iter_mut().zip(out.iter_mut()) {
                shard.observe_drain(sub, &mut rng);
            }
        }
        let w: f64 = shards.iter().map(|s| s.total_weight()).sum();
        let merged = RTbs::merge_shards(shards, &spec, &mut rng);
        assert!((merged.total_weight() - w).abs() < 1e-9);
        assert!((merged.sample_weight() - w.min(50.0)).abs() < 1e-9);
        assert!(merged.latent().check_invariants().is_ok());
        let mut sample = Vec::new();
        merged.realize_into(&mut rng, &mut sample);
        assert!(sample.len() <= 50);
    }

    #[test]
    fn ttbs_merge_concatenates() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let spec = ShardSpec::ttbs(0.1, 100, 40.0, 2);
        let mut shards = TTbs::<u64>::make_shards(&spec);
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for t in 0..100u64 {
            let mut batch: Vec<u64> = (0..40).map(|i| t * 100 + i).collect();
            partition_batch(&mut batch, t as usize, &mut out);
            for (shard, sub) in shards.iter_mut().zip(out.iter_mut()) {
                shard.observe_drain(sub, &mut rng);
            }
        }
        let total: usize = shards.iter().map(TTbs::len).sum();
        let merged = TTbs::merge_shards(shards, &spec, &mut rng);
        assert_eq!(merged.len(), total);
    }
}
