//! Mergeable shard samples — the algebra behind multi-core ingest.
//!
//! §5 of the paper shows that temporally-biased samples can be maintained
//! over *partitioned* data: D-R-TBS keeps the scalar driver state `(W, C)`
//! on a master and the items on workers, and its `Dist,CP` strategy needs
//! no per-item coordination at all. This module pushes that observation to
//! its logical end: run **K fully independent samplers**, one per shard of
//! the stream, with *zero* coordination during ingest, and only combine
//! their states when a sample is actually requested.
//!
//! ## Why the merge is exact
//!
//! Shard `k` sees the sub-stream `B_1^k, B_2^k, …` of a deterministic
//! partitioning (`Σ_k |B_j^k| = |B_j|`), so its total weight obeys
//! `Σ_k W_t^k = W_t`. By Theorem 4.2 each shard-local R-TBS holds every
//! item `i` of its sub-stream with probability `(C^k/W^k)·w_t(i)` where
//! `C^k = min(n_k, W^k)`. The single-node target is `(C/W)·w_t(i)` with
//! `C = min(n, W)`. Downsampling shard `k`'s latent sample from `C^k` to
//!
//! ```text
//! c_k = C · W^k / W
//! ```
//!
//! rescales all of its inclusion probabilities uniformly (Theorem 4.1), so
//! every item lands at exactly `(C/W)·w_t(i)` — the single-node law — and
//! the union of the downsampled shard samples carries total weight
//! `Σ_k c_k = C`. The union of K latent samples has up to K fractional
//! partial items; the internal `merge_latent` fold combines them pairwise
//! with the stochastic rounding of §4.1, preserving each partial item's
//! exact inclusion probability while restoring the `⌊C⌋ + 1` footprint
//! bound.
//!
//! The downsample step requires `c_k ≤ C^k`, i.e. the shard must not have
//! discarded weight the merged sample still needs: `n_k ≥ n·W^k/W`. A
//! deterministic chunked split keeps every per-batch shard size within one
//! item of `|B_j|/K`, so `|W^k − W/K| < Σ_j e^{−λ·age} < 1/(1−e^{−λ})`,
//! and the shard capacity
//!
//! ```text
//! n_k = ⌈n/K⌉ + ⌈1/(1−e^{−λ})⌉        (headroom 0 for K = 1)
//! ```
//!
//! guarantees mergeability for **any** batch-size schedule. The headroom
//! also keeps each shard *saturated* whenever the merged sampler is, so
//! shards run the cheap in-place replacement transition, not the O(C)
//! downsample transition.
//!
//! T-TBS is simpler: its acceptance rate `q = n(1−e^{−λ})/b` is a constant
//! independent of the sub-stream, so identically-configured shards already
//! hold every item with the single-node probability `q·e^{−λ·age}` and the
//! merge is a plain union; the per-shard equilibrium sizes `n·b_k/b` sum
//! to `n`.

use crate::jumps::IngestMode;
use crate::latent::LatentSample;
use crate::rtbs::RTbs;
use crate::ttbs::TTbs;
use rand::Rng;

/// Configuration of a sharded sampler family: the single-node sampler the
/// merged state must be equivalent to, plus the shard count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Exponential decay rate λ (must be positive when `shards > 1`; the
    /// skew headroom `1/(1−e^{−λ})` diverges at λ = 0).
    pub lambda: f64,
    /// Single-node capacity `n` (R-TBS hard bound / T-TBS target size).
    pub capacity: usize,
    /// Number of shards K.
    pub shards: usize,
    /// Mean batch size `b` of the *whole* stream (T-TBS's assumed rate;
    /// ignored by R-TBS).
    pub mean_batch: f64,
    /// Ingest strategy every shard-local sampler runs (see
    /// [`crate::jumps::IngestMode`]). Jump mode composes with the merge
    /// algebra unchanged: it alters only *how* each shard spends
    /// randomness per batch, not the shard-state law the merge relies on.
    pub ingest: IngestMode,
}

impl ShardSpec {
    /// Spec for a single-node-equivalent R-TBS sharding.
    pub fn rtbs(lambda: f64, capacity: usize, shards: usize) -> Self {
        Self {
            lambda,
            capacity,
            shards,
            mean_batch: 0.0,
            ingest: IngestMode::PerItem,
        }
    }

    /// Spec for a single-node-equivalent T-TBS sharding.
    pub fn ttbs(lambda: f64, target: usize, mean_batch: f64, shards: usize) -> Self {
        Self {
            lambda,
            capacity: target,
            shards,
            mean_batch,
            ingest: IngestMode::PerItem,
        }
    }

    /// Run every shard in the given ingest mode (default
    /// [`IngestMode::PerItem`]).
    pub fn with_ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest = mode;
        self
    }

    /// Per-shard R-TBS capacity `n_k = ⌈n/K⌉ + ⌈1/(1−e^{−λ})⌉` (see the
    /// module docs; no headroom needed for K = 1).
    pub fn shard_capacity(&self) -> usize {
        if self.shards <= 1 {
            return self.capacity;
        }
        let headroom = (1.0 / (1.0 - (-self.lambda).exp())).ceil() as usize;
        self.capacity.div_ceil(self.shards) + headroom
    }

    fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(
            self.lambda.is_finite() && self.lambda >= 0.0,
            "decay rate must be finite and non-negative"
        );
        assert!(
            self.shards == 1 || self.lambda > 0.0,
            "sharded sampling requires λ > 0: the skew headroom 1/(1−e^{{−λ}}) \
             diverges at λ = 0 (use a single shard for undecayed sampling)"
        );
    }
}

/// A sampler whose state can be maintained shard-locally and merged into a
/// single-node-equivalent sample. Implemented by [`RTbs`] and [`TTbs`];
/// the parallel ingest engine in `tbs-distributed` is generic over this
/// trait.
pub trait MergeableSample: Sized {
    /// The stream item type.
    type Item;

    /// Build the K shard-local samplers for `spec`, in shard-id order.
    fn make_shards(spec: &ShardSpec) -> Vec<Self>;

    /// Merge shard states (in shard-id order) into one sampler whose
    /// realized sample is statistically equivalent to a single-node run
    /// over the interleaved stream. Consumes the shards.
    fn merge_shards<R: Rng + ?Sized>(shards: Vec<Self>, spec: &ShardSpec, rng: &mut R) -> Self;

    /// Shard-local ingest of one sub-batch (drain-based: the buffer's
    /// allocation survives for recycling). Monomorphized over the RNG.
    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<Self::Item>, rng: &mut R);

    /// A copy of the shard-local state, cheap enough to take *inline* on
    /// the ingest thread at a snapshot barrier so the expensive merge can
    /// run off to the side while the shard keeps ingesting. The cost must
    /// be bounded by the shard's sample footprint, never by the stream
    /// length — for R-TBS that is `O(n_k)` (the latent sample holds at
    /// most `n_k + 1` items), for T-TBS `O(|S_t^k|)`. Consumes no
    /// randomness: the fork is bit-identical to the live state.
    fn fork_for_merge(&self) -> Self;

    /// Total decayed stream weight `W_t` seen by this sampler, for
    /// schemes that track one (`None` for T-TBS, which needs no
    /// stream-level scalar state). On a merged sampler this is the
    /// single-node-equivalent `W_t = Σ_k W_t^k`.
    fn total_stream_weight(&self) -> Option<f64>;

    /// Realize the current sample into `out` (cleared first).
    fn realize_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<Self::Item>);

    /// Expected realized sample size (`C` for R-TBS, `|S|` for T-TBS).
    fn expected_size(&self) -> f64;
}

/// Deterministically split `batch` into `out.len()` shard sub-batches.
///
/// Shard `i` receives a contiguous chunk of `⌊b/K⌋` or `⌈b/K⌉` items; the
/// `b mod K` extra items go to the shards starting at `rotation % K`
/// (callers rotate per batch so remainders spread evenly). Each `out[i]`
/// is cleared and refilled — allocation-free once the buffers have reached
/// their high-water capacity. The split is a pure function of
/// `(b, K, rotation)`, which is what makes sharded runs reproducible.
pub fn partition_batch<T>(batch: &mut Vec<T>, rotation: usize, out: &mut [Vec<T>]) {
    let k = out.len();
    debug_assert!(k > 0, "cannot partition into zero shards");
    let b = batch.len();
    let base = b / k;
    let rem = b % k;
    // Walk shards from last to first so each chunk drains from the tail —
    // O(chunk) per shard instead of O(b) front-shifts.
    let mut end = b;
    for i in (0..k).rev() {
        let extra = usize::from((i + k - rotation % k) % k < rem);
        let len = base + extra;
        let buf = &mut out[i];
        buf.clear();
        buf.extend(batch.drain(end - len..));
        end -= len;
    }
    debug_assert_eq!(end, 0);
    debug_assert!(batch.is_empty());
}

/// Fold `incoming` into the accumulating latent union `(acc, acc_weight)`.
///
/// Full items concatenate; the two partial items are combined by the §4.1
/// stochastic-rounding algebra so that each keeps its exact inclusion
/// probability: with fractional parts α (accumulator) and β (incoming),
/// either the combined fraction stays below one — keep a single partial
/// item, the accumulator's with probability α/(α+β) — or it crosses one,
/// promoting one of the two to full (the accumulator's with probability
/// `(1−β)/(2−α−β)`, which solves `Pr[promoted or realized] = α`) while the
/// other remains partial with fraction α+β−1.
fn merge_latent<T, R: Rng + ?Sized>(
    acc: &mut LatentSample<T>,
    incoming: LatentSample<T>,
    rng: &mut R,
) {
    let (inc_full, inc_partial, inc_weight) = incoming.into_parts();
    let (mut full, acc_partial, acc_weight) = std::mem::take(acc).into_parts();
    let alpha = acc_weight - acc_weight.floor();
    let beta = inc_weight - inc_weight.floor();
    let new_weight = acc_weight + inc_weight;
    full.extend(inc_full);

    // Ground truth for the structure is the *computed* new weight: the
    // number of partial-item promotions is whatever reconciles the full
    // count with ⌊new_weight⌋ (0 or 1 in exact arithmetic; the clamp
    // guards the representability edge where α or β rounded to 1).
    let mut promotions = (new_weight.floor() as usize).saturating_sub(full.len());
    let mut candidates: Vec<(T, f64)> = acc_partial
        .map(|p| (p, alpha))
        .into_iter()
        .chain(inc_partial.map(|p| (p, beta)))
        .collect();
    promotions = promotions.min(candidates.len());

    if promotions == 1 && candidates.len() == 2 {
        // Promote one of the two partials; the other keeps fraction α+β−1.
        let (_, a) = candidates[0];
        let (_, b) = candidates[1];
        let p_first = (1.0 - b) / (2.0 - a - b);
        let keep = if rng.gen::<f64>() < p_first { 0 } else { 1 };
        full.push(candidates.swap_remove(keep).0);
    } else {
        for _ in 0..promotions {
            // 0 or 1 candidates: promotion is forced, not randomized.
            full.push(candidates.pop().expect("promotion needs a candidate").0);
        }
    }

    let frac = new_weight - new_weight.floor();
    let partial = if frac > 0.0 && !candidates.is_empty() {
        let item = if candidates.len() == 2 {
            // Both partials survived below the integer boundary: keep the
            // accumulator's with probability α/(α+β).
            let (_, a) = candidates[0];
            let (_, b) = candidates[1];
            let idx = usize::from(rng.gen::<f64>() >= a / (a + b));
            candidates.swap_remove(idx).0
        } else {
            candidates.pop().expect("candidate").0
        };
        Some(item)
    } else {
        None
    };

    *acc = LatentSample::from_raw_parts(full, partial, new_weight);
}

impl<T: Clone> MergeableSample for RTbs<T> {
    type Item = T;

    fn make_shards(spec: &ShardSpec) -> Vec<Self> {
        spec.validate();
        let n_k = spec.shard_capacity();
        (0..spec.shards)
            .map(|_| {
                let mut s = RTbs::new(spec.lambda, n_k);
                s.set_ingest_mode(spec.ingest);
                s
            })
            .collect()
    }

    fn merge_shards<R: Rng + ?Sized>(shards: Vec<Self>, spec: &ShardSpec, rng: &mut R) -> Self {
        assert_eq!(shards.len(), spec.shards, "shard count mismatch");
        let n = spec.capacity as f64;
        let w: f64 = shards.iter().map(|s| s.total_weight()).sum();
        let c = w.min(n);
        let mut merged = LatentSample::empty();
        let mut steps = 0;
        for mut shard in shards {
            steps = steps.max(shard.batches_observed());
            let w_k = shard.total_weight();
            let c_k = shard.sample_weight();
            if w_k <= 0.0 || c_k <= 0.0 {
                continue;
            }
            // Target weight for this shard's contribution; the min() guards
            // floating-point ulps at the c_k boundary (the capacity
            // headroom guarantees c·w_k/w ≤ c_k analytically).
            let target = (c * w_k / w).min(c_k);
            if target < c_k {
                crate::downsample::downsample(shard.latent_mut(), target, rng);
            }
            let (_, _, _, _, latent) = shard.into_merge_parts();
            merge_latent(&mut merged, latent, rng);
        }
        RTbs::from_merge_parts(spec.lambda, spec.capacity, w, steps, merged)
    }

    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        self.observe_drain(batch, rng);
    }

    fn fork_for_merge(&self) -> Self {
        // The clone copies the latent sample (≤ n_k + 1 items) and a few
        // scalars — bounded by the shard capacity, not the stream.
        self.clone()
    }

    fn total_stream_weight(&self) -> Option<f64> {
        Some(self.total_weight())
    }

    fn realize_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<T>) {
        self.sample_into(rng, out);
    }

    fn expected_size(&self) -> f64 {
        self.sample_weight()
    }
}

impl<T: Clone> MergeableSample for TTbs<T> {
    type Item = T;

    fn make_shards(spec: &ShardSpec) -> Vec<Self> {
        spec.validate();
        // Every shard runs the *global* configuration: the acceptance rate
        // q = n(1−e^{−λ})/b does not depend on the sub-stream, so shard
        // samples already obey the single-node inclusion law and sum to
        // the global equilibrium size n.
        (0..spec.shards)
            .map(|_| {
                let mut s = TTbs::new(spec.lambda, spec.capacity, spec.mean_batch);
                s.set_ingest_mode(spec.ingest);
                s
            })
            .collect()
    }

    fn merge_shards<R: Rng + ?Sized>(shards: Vec<Self>, spec: &ShardSpec, _rng: &mut R) -> Self {
        assert_eq!(shards.len(), spec.shards, "shard count mismatch");
        let mut items = Vec::with_capacity(shards.iter().map(TTbs::len).sum());
        let mut steps = 0;
        for shard in &shards {
            steps = steps.max(shard.batches_observed());
            items.extend_from_slice(shard.items());
        }
        let mut merged = TTbs::with_initial(spec.lambda, spec.capacity, spec.mean_batch, items);
        merged.set_steps(steps);
        merged
    }

    fn observe_shard<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        self.observe_drain(batch, rng);
    }

    fn fork_for_merge(&self) -> Self {
        // The clone copies the current sample, whose size is held near the
        // per-shard equilibrium `n·b_k/b` by the T-TBS dynamics.
        self.clone()
    }

    fn total_stream_weight(&self) -> Option<f64> {
        None
    }

    fn realize_into<R: Rng + ?Sized>(&self, _rng: &mut R, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(self.items());
    }

    fn expected_size(&self) -> f64 {
        self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn partition_is_deterministic_and_exhaustive() {
        let mut a: Vec<u32> = (0..17).collect();
        let mut b: Vec<u32> = (0..17).collect();
        let mut out_a = vec![Vec::new(); 4];
        let mut out_b = vec![Vec::new(); 4];
        partition_batch(&mut a, 2, &mut out_a);
        partition_batch(&mut b, 2, &mut out_b);
        assert_eq!(out_a, out_b);
        let total: usize = out_a.iter().map(Vec::len).sum();
        assert_eq!(total, 17);
        let mut all: Vec<u32> = out_a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn partition_sizes_stay_within_one_of_even() {
        let mut out = vec![Vec::new(); 3];
        for (b, rotation) in [(10usize, 0usize), (11, 1), (12, 2), (0, 0), (2, 5)] {
            let mut batch: Vec<u32> = (0..b as u32).collect();
            partition_batch(&mut batch, rotation, &mut out);
            for part in &out {
                let diff = part.len() as f64 - b as f64 / 3.0;
                assert!(diff.abs() < 1.0, "b={b}: shard got {}", part.len());
            }
        }
    }

    #[test]
    fn partition_rotation_moves_the_remainder() {
        // 7 items over 3 shards: the shard receiving 3 items follows the
        // rotation.
        let mut heavy = Vec::new();
        for rotation in 0..3 {
            let mut batch: Vec<u32> = (0..7).collect();
            let mut out = vec![Vec::new(); 3];
            partition_batch(&mut batch, rotation, &mut out);
            heavy.push(out.iter().position(|p| p.len() == 3).unwrap());
        }
        assert_eq!(heavy.len(), 3);
        assert_ne!(heavy[0], heavy[1]);
    }

    #[test]
    fn shard_capacity_has_headroom() {
        let spec = ShardSpec::rtbs(0.1, 1000, 4);
        // ⌈1000/4⌉ + ⌈1/(1−e^{−0.1})⌉ = 250 + 11.
        assert_eq!(spec.shard_capacity(), 261);
        assert_eq!(ShardSpec::rtbs(0.1, 1000, 1).shard_capacity(), 1000);
    }

    #[test]
    #[should_panic(expected = "requires λ > 0")]
    fn rejects_undecayed_sharding() {
        let spec = ShardSpec::rtbs(0.0, 100, 4);
        let _ = RTbs::<u64>::make_shards(&spec);
    }

    #[test]
    fn merge_latent_weight_and_counts_consistent() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        // Fold several fractional latent samples and check invariants hold
        // after every fold.
        let mut acc = LatentSample::<u32>::empty();
        let mut expect_weight = 0.0;
        for (full, frac) in [(3usize, 0.25), (2, 0.5), (0, 0.9), (4, 0.0), (1, 0.75)] {
            let l = if frac > 0.0 {
                // Downsample from an integral state to produce a valid
                // fractional latent sample of weight full + frac.
                let mut x = LatentSample::from_full((0..=full as u32).collect());
                crate::downsample::downsample(&mut x, full as f64 + frac, &mut rng);
                x
            } else {
                LatentSample::from_full((0..full as u32).collect())
            };
            expect_weight += l.weight();
            merge_latent(&mut acc, l, &mut rng);
            acc.check_invariants().unwrap();
            assert!((acc.weight() - expect_weight).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_latent_partial_inclusion_probabilities_are_exact() {
        // Two latent samples with only partial items (weights α and β):
        // after merging, item A must realize with probability α and item B
        // with probability β, for α+β below and above one.
        let trials = 200_000u64;
        for (alpha, beta) in [(0.3f64, 0.4f64), (0.7, 0.6), (0.5, 0.5), (0.9, 0.2)] {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
            let mut hits_a = 0u64;
            let mut hits_b = 0u64;
            for _ in 0..trials {
                let a = LatentSample::from_raw_parts(vec![], Some(1u8), alpha);
                let b = LatentSample::from_raw_parts(vec![], Some(2u8), beta);
                let mut acc = LatentSample::empty();
                merge_latent(&mut acc, a, &mut rng);
                merge_latent(&mut acc, b, &mut rng);
                acc.check_invariants().unwrap();
                let mut out = Vec::new();
                acc.realize_into(&mut rng, &mut out);
                hits_a += u64::from(out.contains(&1));
                hits_b += u64::from(out.contains(&2));
            }
            let pa = hits_a as f64 / trials as f64;
            let pb = hits_b as f64 / trials as f64;
            assert!(
                (pa - alpha).abs() < 0.005,
                "α={alpha}, β={beta}: Pr[A]={pa}"
            );
            assert!((pb - beta).abs() < 0.005, "α={alpha}, β={beta}: Pr[B]={pb}");
        }
    }

    #[test]
    fn rtbs_merge_preserves_weights_exactly() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let spec = ShardSpec::rtbs(0.1, 50, 4);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for t in 0..200u64 {
            let b = [30u64, 0, 120, 5][t as usize % 4];
            let mut batch: Vec<u64> = (0..b).map(|i| t * 1000 + i).collect();
            partition_batch(&mut batch, t as usize, &mut out);
            for (shard, sub) in shards.iter_mut().zip(out.iter_mut()) {
                shard.observe_drain(sub, &mut rng);
            }
        }
        let w: f64 = shards.iter().map(|s| s.total_weight()).sum();
        let merged = RTbs::merge_shards(shards, &spec, &mut rng);
        assert!((merged.total_weight() - w).abs() < 1e-9);
        assert!((merged.sample_weight() - w.min(50.0)).abs() < 1e-9);
        assert!(merged.latent().check_invariants().is_ok());
        let mut sample = Vec::new();
        merged.realize_into(&mut rng, &mut sample);
        assert!(sample.len() <= 50);
    }

    #[test]
    fn ttbs_merge_concatenates() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let spec = ShardSpec::ttbs(0.1, 100, 40.0, 2);
        let mut shards = TTbs::<u64>::make_shards(&spec);
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for t in 0..100u64 {
            let mut batch: Vec<u64> = (0..40).map(|i| t * 100 + i).collect();
            partition_batch(&mut batch, t as usize, &mut out);
            for (shard, sub) in shards.iter_mut().zip(out.iter_mut()) {
                shard.observe_drain(sub, &mut rng);
            }
        }
        let total: usize = shards.iter().map(TTbs::len).sum();
        let merged = TTbs::merge_shards(shards, &spec, &mut rng);
        assert_eq!(merged.len(), total);
    }
}
