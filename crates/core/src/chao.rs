//! B-Chao — batched, time-decayed Chao sampling (Appendix D, Algorithms 6–7).
//!
//! Chao's 1982 general-purpose unequal-probability reservoir scheme,
//! specialized to exponential decay and batch arrivals. This is the closest
//! prior-art competitor to R-TBS (it is what MacroBase uses), and it is
//! implemented here as the paper's foil: it keeps the sample size pinned at
//! `n`, but **violates the relative-inclusion property (1)**
//!
//! * during the initial fill-up (all items are accepted with probability 1
//!   regardless of arrival time), and
//! * whenever data arrives slowly relative to the decay rate, which makes
//!   recent items *overweight*: their nominal inclusion probability
//!   `n·w_i/W` exceeds 1, so they are retained with probability 1 and the
//!   relation (1) is enforced only among the non-overweight remainder.
//!
//! The bookkeeping for overweight items (set `V`, Algorithm 7's
//! normalization) is reproduced faithfully — including the cost it adds,
//! which the benchmarks compare against R-TBS's lighter state.

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use crate::util::DecayCache;
use rand::Rng;

/// Batched time-decayed Chao sampler with capacity `n` and decay rate λ.
///
/// The inherent `observe`/`observe_after` methods are the monomorphized
/// fast path; the [`crate::traits::BatchSampler`] impl is a thin
/// `dyn`-RNG adapter over them. In the well-fed steady state (no
/// overweight items) per-batch processing allocates nothing; the
/// overweight bookkeeping of Algorithm 7 allocates scratch vectors when it
/// actually triggers — that cost is part of what the benchmarks compare
/// against R-TBS's lighter state.
#[derive(Debug, Clone)]
pub struct BChao<T> {
    /// Non-overweight items currently in the sample (weights not tracked —
    /// Chao's scheme only needs them for overweight items).
    sample: Vec<T>,
    /// Overweight items with their individual weights, `V` in Algorithm 6.
    overweight: Vec<(T, f64)>,
    /// Aggregate weight `W` of all *non-overweight* items seen so far
    /// (in or out of the sample).
    agg_weight: f64,
    decay: DecayCache,
    capacity: usize,
    steps: u64,
}

impl<T> BChao<T> {
    /// Create an empty B-Chao sampler.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative/non-finite or `capacity` is zero.
    pub fn new(lambda: f64, capacity: usize) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        assert!(capacity > 0, "capacity must be positive");
        Self {
            sample: Vec::with_capacity(capacity),
            overweight: Vec::new(),
            agg_weight: 0.0,
            decay: DecayCache::new(lambda),
            capacity,
            steps: 0,
        }
    }

    /// Current number of stored items (`|S| + |V|`).
    pub fn len(&self) -> usize {
        self.sample.len() + self.overweight.len()
    }

    /// Whether no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of currently overweight items (`|V|`).
    pub fn overweight_count(&self) -> usize {
        self.overweight.len()
    }

    /// Aggregate weight of non-overweight items.
    pub fn aggregate_weight(&self) -> f64 {
        self.agg_weight
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, batch: Vec<T>, rng: &mut R) {
        let decay = self.decay.unit();
        self.step(batch, decay, rng);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, batch: Vec<T>, gap: f64, rng: &mut R) {
        check_gap(gap);
        let decay = self.decay.factor(gap);
        self.step(batch, decay, rng);
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.len() as f64
    }

    /// Hard upper bound on the sample size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// Exponential decay rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.decay.lambda()
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "B-Chao"
    }

    /// Process one arriving item against a full reservoir.
    fn accept_one<R: Rng + ?Sized>(&mut self, x: T, rng: &mut R) {
        // ——— Normalize (Algorithm 7). ———
        // Total weight including the new item and the overweight set.
        let total: f64 =
            self.agg_weight + 1.0 + self.overweight.iter().map(|(_, w)| w).sum::<f64>();
        let n = self.capacity as f64;

        // `newly_normal` is Algorithm 7's A: items leaving overweight status
        // this step (they carry their weights into victim selection).
        let mut newly_normal: Vec<(T, f64)> = Vec::new();
        let mut x_slot = Some(x);
        let pi_x: f64;
        let x_overweight: bool;

        if n / total <= 1.0 {
            // New item not overweight ⇒ nothing is (weights ≤ 1 = w_x).
            self.agg_weight = total;
            newly_normal.append(&mut self.overweight);
            pi_x = n / total;
            x_overweight = false;
        } else {
            // x is overweight: retained w.p. 1, tracked individually
            // (D ← {(x, 1)} in Algorithm 7).
            pi_x = 1.0;
            x_overweight = true;
            self.agg_weight = total - 1.0;
            let mut d_count = 1usize; // |D|, counting x itself
            let mut d: Vec<(T, f64)> = vec![(x_slot.take().expect("x present"), 1.0)];
            // Pull remaining overweight candidates in decreasing weight.
            while let Some(max_idx) = self
                .overweight
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
            {
                let (z, wz) = self.overweight.swap_remove(max_idx);
                if (n - d_count as f64) * wz / self.agg_weight > 1.0 {
                    // Still overweight relative to the shrinking pool.
                    self.agg_weight -= wz;
                    d.push((z, wz));
                    d_count += 1;
                } else {
                    // First non-overweight item ends the scan.
                    newly_normal.push((z, wz));
                    break;
                }
            }
            // Everything left in V has smaller weight ⇒ also normal now.
            newly_normal.append(&mut self.overweight);
            self.overweight = d;
        }

        // ——— Acceptance and victim selection (Algorithm 6 lines 13-20). ———
        if rng.gen::<f64>() <= pi_x {
            let n_normal_slots = (self.capacity - self.overweight.len()) as f64;
            let u: f64 = rng.gen();
            let mut alpha = 0.0;
            let mut victim_from_a: Option<usize> = None;
            for (i, (_, wz)) in newly_normal.iter().enumerate() {
                alpha += (1.0 - n_normal_slots * wz / self.agg_weight) / pi_x;
                if u <= alpha {
                    victim_from_a = Some(i);
                    break;
                }
            }
            match victim_from_a {
                Some(i) => {
                    newly_normal.remove(i);
                }
                None => {
                    if !self.sample.is_empty() {
                        let idx = rng.gen_range(0..self.sample.len());
                        self.sample.swap_remove(idx);
                    } else if let Some(min_idx) = self
                        .overweight
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                        .map(|(i, _)| i)
                    {
                        // Degenerate corner (everything overweight): evict
                        // the lightest overweight item so |S|+|V| stays ≤ n.
                        self.overweight.swap_remove(min_idx);
                    }
                }
            }
            if !x_overweight {
                self.sample.push(x_slot.take().expect("x present"));
            }
        }
        // Items that ceased to be overweight rejoin the plain sample
        // (Algorithm 6 line 21) whether or not x was accepted.
        self.sample.extend(newly_normal.into_iter().map(|(z, _)| z));
    }

    fn step<R: Rng + ?Sized>(&mut self, batch: Vec<T>, decay: f64, rng: &mut R) {
        self.agg_weight *= decay;
        for entry in &mut self.overweight {
            entry.1 *= decay;
        }
        for x in batch {
            if self.len() < self.capacity {
                // Fill-up phase: accept unconditionally — this is exactly
                // where property (1) is violated.
                self.sample.push(x);
                self.agg_weight += 1.0;
            } else {
                self.accept_one(x, rng);
            }
        }
        self.steps += 1;
        debug_assert!(self.len() <= self.capacity);
    }
}

impl<T: Clone> BChao<T> {
    /// Copy out the current sample, overweight items included
    /// (deterministic; `rng` is unused and accepted only for signature
    /// uniformity with the latent schemes).
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        let mut out = self.sample.clone();
        out.extend(self.overweight.iter().map(|(z, _)| z.clone()));
        out
    }
}

impl<T: Wire> BChao<T> {
    /// Serialize the complete sampler state — including the overweight
    /// set `V` with its per-item weights — into `w`; see
    /// [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.decay.lambda());
        w.put_u64(self.capacity as u64);
        w.put_f64(self.agg_weight);
        w.put_u64(self.steps);
        w.put_items(self.sample.iter());
        w.put_u32(self.overweight.len() as u32);
        for (item, weight) in &self.overweight {
            w.put_item(item);
            w.put_f64(*weight);
        }
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "B-Chao lambda")?;
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("B-Chao capacity"));
        }
        let agg_weight = check_non_negative(r.get_f64()?, "B-Chao aggregate weight")?;
        let steps = r.get_u64()?;
        let sample: Vec<T> = r.get_items()?;
        let n_over = r.get_u32()? as usize;
        // Each overweight entry costs ≥ 4 (item length prefix) + 8
        // (weight) bytes; bound the allocation before it happens.
        r.check_count(n_over, 12)?;
        let mut overweight = Vec::with_capacity(n_over);
        for _ in 0..n_over {
            let item = r.get_item()?;
            let weight = check_non_negative(r.get_f64()?, "B-Chao overweight weight")?;
            overweight.push((item, weight));
        }
        if sample.len() + overweight.len() > capacity {
            return Err(CheckpointError::Corrupt("B-Chao item count"));
        }
        Ok(Self {
            sample,
            overweight,
            agg_weight,
            decay: DecayCache::new(lambda),
            capacity,
            steps,
        })
    }
}

adapt_batch_sampler!(BChao);
adapt_timed_batch_sampler!(BChao);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn fills_to_capacity_and_stays() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = BChao::new(0.1, 50);
        for t in 0..40u64 {
            s.observe((0..10).map(|i| t * 10 + i).collect(), &mut rng);
            assert!(s.len() <= 50);
        }
        assert_eq!(s.len(), 50, "Chao's sample size is nondecreasing at n");
        // Unlike R-TBS, the size never shrinks even with no arrivals.
        for _ in 0..50 {
            s.observe(vec![], &mut rng);
            assert_eq!(s.len(), 50);
        }
    }

    #[test]
    fn fill_up_violates_relative_inclusion() {
        // During fill-up every item is accepted w.p. 1, so items from batches
        // 1 and 2 appear with the *same* probability even though (1) demands
        // a ratio of e^{-λ} — the paper's App. D criticism, reproduced.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let lambda = 0.5;
        let trials = 5_000;
        let mut hits = [0u64; 2];
        for _ in 0..trials {
            let mut s: BChao<u8> = BChao::new(lambda, 100);
            s.observe(vec![1; 10], &mut rng);
            s.observe(vec![2; 10], &mut rng);
            for item in s.sample(&mut rng) {
                hits[(item - 1) as usize] += 1;
            }
        }
        let ratio = hits[0] as f64 / hits[1] as f64;
        // Both batches fully retained → ratio 1, far from e^{-0.5} ≈ 0.61.
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn slow_arrivals_create_overweight_items() {
        // High decay + tiny batches after saturation ⇒ the aggregate weight
        // W collapses, so fresh items (weight 1) satisfy n·w/W > 1.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s = BChao::new(1.0, 20);
        s.observe((0..20u64).collect(), &mut rng);
        for t in 0..10u64 {
            s.observe(vec![100 + t], &mut rng);
        }
        assert!(
            s.overweight_count() > 0,
            "expected overweight items under fast decay, got none"
        );
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn fast_arrivals_keep_everything_normal() {
        // Plentiful data: W stays ≥ n, no item is overweight and Chao then
        // agrees with (1) in steady state.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut s = BChao::new(0.05, 100);
        for t in 0..100u64 {
            s.observe((0..200).map(|i| t * 200 + i).collect(), &mut rng);
        }
        assert_eq!(s.overweight_count(), 0);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn steady_state_inclusion_ratio_approximates_decay() {
        // With abundant arrivals (no overweight items, past fill-up), Chao
        // enforces (1): adjacent-batch inclusion ratio ≈ e^{-λ}.
        let lambda = 0.2f64;
        let trials = 8_000;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut old_hits = 0u64;
        let mut new_hits = 0u64;
        for _ in 0..trials {
            let mut s: BChao<u32> = BChao::new(lambda, 40);
            // Warm well past fill-up.
            for t in 0..30u32 {
                s.observe((0..20).map(|i| t * 100 + i).collect(), &mut rng);
            }
            // Tag two adjacent batches, then one more ordinary batch.
            s.observe(vec![1_000_001; 20], &mut rng);
            s.observe(vec![1_000_002; 20], &mut rng);
            s.observe((0..20).map(|i| 5_000 + i).collect(), &mut rng);
            for item in s.sample(&mut rng) {
                if item == 1_000_001 {
                    old_hits += 1;
                }
                if item == 1_000_002 {
                    new_hits += 1;
                }
            }
        }
        let ratio = old_hits as f64 / new_hits as f64;
        let expect = (-lambda).exp();
        assert!(
            (ratio - expect).abs() < 0.05,
            "ratio {ratio} vs e^-lambda {expect}"
        );
    }

    #[test]
    fn weight_decays_each_step() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut s = BChao::new(0.5, 10);
        s.observe((0..5u32).collect(), &mut rng);
        let w0 = s.aggregate_weight();
        s.observe(vec![], &mut rng);
        assert!((s.aggregate_weight() - w0 * (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        BChao::<u8>::new(0.1, 0);
    }
}
