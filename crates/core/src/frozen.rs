//! Immutable, epoch-stamped realized samples — the unit of the serving
//! layer.
//!
//! The paper's model-management loop (§6) wants two things at once: the
//! stream must keep flowing into the sampler, and consumers (retraining
//! jobs, dashboards, model-serving tiers à la Velox) must be able to read
//! a *consistent* sample at any moment. Handing consumers a reference
//! into live sampler state would couple the two — every read would have
//! to stop ingest. A [`FrozenSample`] decouples them: it is a fully
//! realized sample (the latent partial item already resolved), captured
//! at a known stream position and **never mutated afterwards**, so it can
//! be shared across threads behind an `Arc` with no locking at all.
//!
//! The metadata answers the staleness questions a serving tier asks:
//! which publication this is ([`FrozenSample::epoch`]), how much stream
//! it reflects ([`FrozenSample::batches_observed`]), and what the sampler
//! knew about its own weights at the freeze point
//! ([`FrozenSample::total_weight`], [`FrozenSample::expected_size`]).
//!
//! Snapshots are *produced* by the publication machinery — the sharded
//! engine's barrier protocol in `tbs_distributed::engine`, or the
//! single-node `temporal_sampling::api::Sampler::publish` — and
//! *consumed* through `temporal_sampling::api::SampleReader`.

/// An immutable realized sample frozen at a specific stream position.
///
/// Equality compares items and metadata; two frozen samples from the same
/// seed and stream prefix are bit-identical to what an exact synchronous
/// `sample()` would have returned at the same point (the engine's
/// snapshot tests pin this down).
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenSample<T> {
    items: Vec<T>,
    epoch: u64,
    batches: u64,
    total_weight: Option<f64>,
    expected_size: f64,
}

impl<T> FrozenSample<T> {
    /// Freeze `items` as publication `epoch`, reflecting the stream up to
    /// `batches` ingested batches. `total_weight` is the sampler's total
    /// decayed stream weight `W_t` where the scheme tracks one (R-TBS),
    /// `expected_size` its expected realized size at the freeze point
    /// (`C_t` for R-TBS, `|S_t|` for exact-size schemes).
    pub fn new(
        epoch: u64,
        batches: u64,
        total_weight: Option<f64>,
        expected_size: f64,
        items: Vec<T>,
    ) -> Self {
        Self {
            items,
            epoch,
            batches,
            total_weight,
            expected_size,
        }
    }

    /// The realized sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items in the sample.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Publication number, starting at 1; assigned monotonically by the
    /// publisher. 0 never appears on a published sample (readers use it
    /// as "nothing seen yet").
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches the producing sampler had ingested when this sample was
    /// frozen — compare against the live sampler's batch count to measure
    /// staleness in stream time.
    pub fn batches_observed(&self) -> u64 {
        self.batches
    }

    /// Total decayed stream weight `W_t` at the freeze point, for schemes
    /// that track it (`None` otherwise — e.g. T-TBS keeps no stream-level
    /// scalar state).
    pub fn total_weight(&self) -> Option<f64> {
        self.total_weight
    }

    /// Expected realized sample size at the freeze point (`C_t` for
    /// R-TBS); [`FrozenSample::len`] is the *actual* size after the
    /// fractional item was resolved.
    pub fn expected_size(&self) -> f64 {
        self.expected_size
    }

    /// Consume the snapshot and take ownership of its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> AsRef<[T]> for FrozenSample<T> {
    fn as_ref(&self) -> &[T] {
        self.items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_round_trips() {
        let f = FrozenSample::new(3, 120, Some(1051.2), 1000.0, vec![1u64, 2, 3]);
        assert_eq!(f.epoch(), 3);
        assert_eq!(f.batches_observed(), 120);
        assert_eq!(f.total_weight(), Some(1051.2));
        assert_eq!(f.expected_size(), 1000.0);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.items(), &[1, 2, 3]);
        assert_eq!(f.as_ref(), &[1, 2, 3]);
        assert_eq!(f.into_items(), vec![1, 2, 3]);
    }

    #[test]
    fn weightless_schemes_report_none() {
        let f: FrozenSample<u8> = FrozenSample::new(1, 0, None, 0.0, vec![]);
        assert!(f.total_weight().is_none());
        assert!(f.is_empty());
    }
}
