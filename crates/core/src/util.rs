//! Uniform sampling-without-replacement primitives.
//!
//! These implement the paper's `Sample(A, m)` subroutine: "a uniform random
//! sample, without replacement, containing `min(m, |A|)` elements of the set
//! `A`". All samplers treat their stored collections as *sets* — element
//! order inside the vectors carries no statistical meaning — so O(1)
//! `swap_remove` is used freely.

use rand::Rng;

/// Remove and return `min(m, items.len())` uniformly chosen elements.
///
/// The removed elements are a uniform without-replacement sample; the
/// elements left behind are likewise a uniform sample of the complement.
pub fn draw_without_replacement<T, R: Rng + ?Sized>(
    items: &mut Vec<T>,
    m: usize,
    rng: &mut R,
) -> Vec<T> {
    let m = m.min(items.len());
    let mut out = Vec::with_capacity(m);
    for _ in 0..m {
        let idx = rng.gen_range(0..items.len());
        out.push(items.swap_remove(idx));
    }
    out
}

/// Keep a uniform random subset of `min(m, items.len())` elements in place,
/// discarding the rest. This is the paper's `S ← Sample(S, m)` retention.
pub fn retain_random<T, R: Rng + ?Sized>(items: &mut Vec<T>, m: usize, rng: &mut R) {
    let m = m.min(items.len());
    // Partial Fisher–Yates: move a uniform m-subset into the prefix.
    for i in 0..m {
        let j = rng.gen_range(i..items.len());
        items.swap(i, j);
    }
    items.truncate(m);
}

/// Return a uniform random sample of `min(m, items.len())` *cloned* elements,
/// leaving `items` untouched.
pub fn sample_clone<T: Clone, R: Rng + ?Sized>(items: &[T], m: usize, rng: &mut R) -> Vec<T> {
    let m = m.min(items.len());
    let idx = sample_indices(items.len(), m, rng);
    idx.into_iter().map(|i| items[i].clone()).collect()
}

/// Floyd's algorithm: `m` distinct uniform indices from `0..n`.
///
/// O(m) expected time and memory regardless of `n`, which matters when
/// subsampling large incoming batches (Algorithm 1 line 9).
pub fn sample_indices<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    assert!(m <= n, "cannot draw {m} distinct indices from 0..{n}");
    // For dense draws a Fisher–Yates prefix is cheaper than set probing.
    if m * 4 >= n {
        let mut all: Vec<usize> = (0..n).collect();
        retain_random(&mut all, m, rng);
        return all;
    }
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut out = Vec::with_capacity(m);
    for j in (n - m)..n {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::chi2::chi2_statistic_exceeds;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn draw_returns_min_of_m_and_len() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut items: Vec<u32> = (0..10).collect();
        let drawn = draw_without_replacement(&mut items, 15, &mut rng);
        assert_eq!(drawn.len(), 10);
        assert!(items.is_empty());

        let mut items: Vec<u32> = (0..10).collect();
        let drawn = draw_without_replacement(&mut items, 3, &mut rng);
        assert_eq!(drawn.len(), 3);
        assert_eq!(items.len(), 7);
    }

    #[test]
    fn draw_partitions_the_set() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut items: Vec<u32> = (0..20).collect();
        let drawn = draw_without_replacement(&mut items, 8, &mut rng);
        let mut all: Vec<u32> = drawn.iter().chain(items.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn draw_zero_is_noop() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut items: Vec<u32> = (0..5).collect();
        let drawn = draw_without_replacement(&mut items, 0, &mut rng);
        assert!(drawn.is_empty());
        assert_eq!(items.len(), 5);
    }

    #[test]
    fn draw_from_empty_is_empty() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut items: Vec<u32> = Vec::new();
        assert!(draw_without_replacement(&mut items, 3, &mut rng).is_empty());
    }

    #[test]
    fn retain_keeps_subset() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut items: Vec<u32> = (0..100).collect();
        retain_random(&mut items, 30, &mut rng);
        assert_eq!(items.len(), 30);
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), 30, "duplicates introduced");
        assert!(items.iter().all(|&x| x < 100));
    }

    #[test]
    fn retain_is_uniform() {
        // Each of 10 elements should be retained equally often.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let trials = 60_000;
        let mut counts = [0u64; 10];
        for _ in 0..trials {
            let mut items: Vec<usize> = (0..10).collect();
            retain_random(&mut items, 4, &mut rng);
            for &i in &items {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 0.4; 10];
        assert!(!chi2_statistic_exceeds(&counts, &expected, 5.0, 1e-4));
    }

    #[test]
    fn draw_is_uniform() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = [0u64; 8];
        for _ in 0..trials {
            let mut items: Vec<usize> = (0..8).collect();
            for i in draw_without_replacement(&mut items, 3, &mut rng) {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 3.0 / 8.0; 8];
        assert!(!chi2_statistic_exceeds(&counts, &expected, 5.0, 1e-4));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        for (n, m) in [(100usize, 5usize), (100, 50), (100, 100), (10, 0), (1, 1)] {
            let idx = sample_indices(n, m, &mut rng);
            assert_eq!(idx.len(), m);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), m, "duplicate indices for n={n}, m={m}");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_sparse_path_uniform() {
        // m*4 < n forces the Floyd path.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let trials = 40_000;
        let mut counts = vec![0u64; 40];
        for _ in 0..trials {
            for i in sample_indices(40, 2, &mut rng) {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 2.0 / 40.0; 40];
        assert!(!chi2_statistic_exceeds(&counts, &expected, 5.0, 1e-4));
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sample_indices_rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        sample_indices(3, 4, &mut rng);
    }

    #[test]
    fn sample_clone_leaves_source_intact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let items: Vec<u32> = (0..10).collect();
        let s = sample_clone(&items, 4, &mut rng);
        assert_eq!(s.len(), 4);
        assert_eq!(items.len(), 10);
    }
}
