//! Uniform sampling-without-replacement primitives.
//!
//! These implement the paper's `Sample(A, m)` subroutine: "a uniform random
//! sample, without replacement, containing `min(m, |A|)` elements of the set
//! `A`". All samplers treat their stored collections as *sets* — element
//! order inside the vectors carries no statistical meaning — so O(1)
//! `swap_remove` is used freely.

use rand::Rng;

/// Exactly uniform index in `[0, n)` via 32-bit Lemire reduction
/// (widening multiply + rejection of the biased tail).
///
/// The hot subset-selection loops draw one bounded index per item; going
/// through `gen_range` costs a 64→128-bit widening multiply per draw.
/// Sample-vector lengths comfortably fit in `u32`, where the multiply is
/// 32→64-bit — measurably cheaper on the ingest path — so this helper
/// takes the narrow route when possible and falls back to `gen_range`
/// for astronomically large `n`. Rejection keeps it *exactly* uniform
/// (verified by the chi² tests on every consumer).
#[inline]
pub(crate) fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0, "empty index range");
    if n <= u32::MAX as usize {
        let n32 = n as u32;
        loop {
            let x = rng.next_u32();
            let m = x as u64 * n32 as u64;
            let low = m as u32;
            if low >= n32 {
                return (m >> 32) as usize;
            }
            let threshold = n32.wrapping_neg() % n32;
            if low >= threshold {
                return (m >> 32) as usize;
            }
        }
    } else {
        rng.gen_range(0..n)
    }
}

/// Remove and return `min(m, items.len())` uniformly chosen elements.
///
/// The removed elements are a uniform without-replacement sample; the
/// elements left behind are likewise a uniform sample of the complement.
pub fn draw_without_replacement<T, R: Rng + ?Sized>(
    items: &mut Vec<T>,
    m: usize,
    rng: &mut R,
) -> Vec<T> {
    let m = m.min(items.len());
    let mut out = Vec::with_capacity(m);
    for _ in 0..m {
        let idx = uniform_index(rng, items.len());
        out.push(items.swap_remove(idx));
    }
    out
}

/// Keep a uniform random subset of `min(m, items.len())` elements in place,
/// discarding the rest. This is the paper's `S ← Sample(S, m)` retention.
pub fn retain_random<T, R: Rng + ?Sized>(items: &mut Vec<T>, m: usize, rng: &mut R) {
    let m = m.min(items.len());
    let len = items.len();
    // Partial Fisher–Yates: move a uniform m-subset into the prefix.
    for i in 0..m {
        let j = i + uniform_index(rng, len - i);
        items.swap(i, j);
    }
    items.truncate(m);
}

/// [`retain_random`] drawing only `min(m, len − m)` random indices: when
/// the kept subset is the majority, it is the *discarded* complement that
/// is swept into the prefix and the kept subset is the suffix, which is
/// then shifted down in one bulk move. A uniform subset's complement is
/// itself uniform, so the retained set has exactly the same distribution
/// as [`retain_random`]'s — only the RNG stream differs (which is why
/// jump-mode ingest opts in explicitly rather than this replacing the
/// historical path). R-TBS's per-step decay retention keeps
/// `k ≈ e^{−λ}·len` of `len` items, so this turns ~`len` draws per batch
/// into ~`λ·len`.
pub fn retain_random_cheap<T, R: Rng + ?Sized>(items: &mut Vec<T>, m: usize, rng: &mut R) {
    let m = m.min(items.len());
    let len = items.len();
    if 2 * m <= len {
        retain_random(items, m, rng);
        return;
    }
    // Sweep the discarded minority into the prefix, keep the suffix.
    let discard = len - m;
    for i in 0..discard {
        let j = i + uniform_index(rng, len - i);
        items.swap(i, j);
    }
    items.drain(..discard);
}

/// Return a uniform random sample of `min(m, items.len())` *cloned* elements,
/// leaving `items` untouched.
pub fn sample_clone<T: Clone, R: Rng + ?Sized>(items: &[T], m: usize, rng: &mut R) -> Vec<T> {
    let m = m.min(items.len());
    let idx = sample_indices(items.len(), m, rng);
    idx.into_iter().map(|i| items[i].clone()).collect()
}

/// Floyd's algorithm: `m` distinct uniform indices from `0..n`.
///
/// O(m) expected time and memory regardless of `n` (hash-set
/// deduplication), which matters when subsampling large incoming batches
/// (Algorithm 1 line 9); dense draws (`m·4 ≥ n`) switch to a partial
/// Fisher–Yates prefix. Allocates fresh storage every call; hot paths
/// that run every batch should hold a scratch buffer and call
/// [`sample_indices_into`] instead.
pub fn sample_indices<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    assert!(m <= n, "cannot draw {m} distinct indices from 0..{n}");
    if m * 4 >= n {
        let mut out = Vec::with_capacity(n);
        sample_indices_into(n, m, rng, &mut out);
        return out;
    }
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut out = Vec::with_capacity(m);
    for j in (n - m)..n {
        let t = uniform_index(rng, j + 1);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

/// Largest draw count routed to the sorted-prefix Floyd path of
/// [`sample_indices_into`]; above this the ordered inserts' O(m²/2)
/// element moves outgrow the dense path's O(n) fill.
const SORTED_FLOYD_MAX: usize = 1024;

/// [`sample_indices`] into a caller-owned scratch buffer: `out` is cleared
/// and refilled with `m` distinct uniform indices from `0..n`, in
/// unspecified order. Once the buffer's capacity has reached its
/// high-water mark this performs **zero heap allocations**, which is what
/// the steady-state sampler hot paths need.
///
/// Strategy, justified by the `subset_sampling/indices_into_scratch`
/// micro-bench (`cargo bench -p tbs-bench --bench ablations`): for
/// *dense* draws (`m·4 ≥ n`) a partial Fisher–Yates over the scratch
/// buffer is cheapest — filling `0..n` costs O(n), but any duplicate
/// tracking pays more per draw at that density. For *sparse, small*
/// draws (`m ≤ 1024`) Floyd's algorithm runs O(m) RNG draws with the
/// sorted prefix of `out` itself serving as the duplicate set (binary
/// search + ordered insert, worst-case O(m²/2) element moves — bounded
/// by the cap), so no side table is ever allocated. Sparse draws with
/// large `m` fall back to the dense sweep: O(n) but allocation-free;
/// if you need `m ≫ 1024` indices out of an astronomically larger `n`,
/// use the allocating [`sample_indices`] instead, whose hash-based Floyd
/// path is O(m).
///
/// # Panics
///
/// Panics if `m > n`.
pub fn sample_indices_into<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R, out: &mut Vec<usize>) {
    assert!(m <= n, "cannot draw {m} distinct indices from 0..{n}");
    out.clear();
    if m * 4 >= n || m > SORTED_FLOYD_MAX {
        // Dense: partial Fisher–Yates prefix over the scratch buffer.
        out.extend(0..n);
        retain_random(out, m, rng);
    } else {
        // Sparse: Floyd's algorithm, deduplicating against the (kept
        // sorted) output prefix. All previously inserted values are < j,
        // so when the tentative draw `t` is taken, `j` itself is free.
        for j in (n - m)..n {
            let t = uniform_index(rng, j + 1);
            match out.binary_search(&t) {
                Err(pos) => out.insert(pos, t),
                Ok(_) => {
                    let pos = out.binary_search(&j).unwrap_err();
                    out.insert(pos, j);
                }
            }
        }
    }
}

/// Memoized exponential decay factors `e^{−λ·gap}`.
///
/// Streams overwhelmingly arrive with a constant inter-batch gap (the
/// paper's integer-time setting has `gap = 1` always), yet the naive hot
/// path pays a transcendental `exp` call per batch. This cache
/// precomputes the unit-gap factor at construction and remembers the last
/// non-unit gap, so steady-state `observe`/`observe_after` never call
/// `exp` at all; only a gap *change* does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayCache {
    lambda: f64,
    unit: f64,
    last_gap: f64,
    last_factor: f64,
}

impl DecayCache {
    /// Build a cache for decay rate `lambda` (not validated here — the
    /// samplers validate λ in their constructors).
    pub fn new(lambda: f64) -> Self {
        let unit = (-lambda).exp();
        Self {
            lambda,
            unit,
            last_gap: 1.0,
            last_factor: unit,
        }
    }

    /// The decay rate λ this cache was built for.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The unit-gap factor `e^{−λ}`.
    #[inline]
    pub fn unit(&self) -> f64 {
        self.unit
    }

    /// `e^{−λ·gap}`, served from the cache when `gap` repeats.
    #[inline]
    pub fn factor(&mut self, gap: f64) -> f64 {
        if gap == 1.0 {
            self.unit
        } else if gap == self.last_gap {
            self.last_factor
        } else {
            let f = (-self.lambda * gap).exp();
            self.last_gap = gap;
            self.last_factor = f;
            f
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::gof::chi2_rejects;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn draw_returns_min_of_m_and_len() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut items: Vec<u32> = (0..10).collect();
        let drawn = draw_without_replacement(&mut items, 15, &mut rng);
        assert_eq!(drawn.len(), 10);
        assert!(items.is_empty());

        let mut items: Vec<u32> = (0..10).collect();
        let drawn = draw_without_replacement(&mut items, 3, &mut rng);
        assert_eq!(drawn.len(), 3);
        assert_eq!(items.len(), 7);
    }

    #[test]
    fn draw_partitions_the_set() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut items: Vec<u32> = (0..20).collect();
        let drawn = draw_without_replacement(&mut items, 8, &mut rng);
        let mut all: Vec<u32> = drawn.iter().chain(items.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn draw_zero_is_noop() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut items: Vec<u32> = (0..5).collect();
        let drawn = draw_without_replacement(&mut items, 0, &mut rng);
        assert!(drawn.is_empty());
        assert_eq!(items.len(), 5);
    }

    #[test]
    fn draw_from_empty_is_empty() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut items: Vec<u32> = Vec::new();
        assert!(draw_without_replacement(&mut items, 3, &mut rng).is_empty());
    }

    #[test]
    fn retain_keeps_subset() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut items: Vec<u32> = (0..100).collect();
        retain_random(&mut items, 30, &mut rng);
        assert_eq!(items.len(), 30);
        let set: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(set.len(), 30, "duplicates introduced");
        assert!(items.iter().all(|&x| x < 100));
    }

    #[test]
    fn retain_is_uniform() {
        // Each of 10 elements should be retained equally often.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let trials = 60_000;
        let mut counts = [0u64; 10];
        for _ in 0..trials {
            let mut items: Vec<usize> = (0..10).collect();
            retain_random(&mut items, 4, &mut rng);
            for &i in &items {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 0.4; 10];
        assert!(!chi2_rejects(&counts, &expected));
    }

    #[test]
    fn retain_cheap_keeps_subset_on_both_paths() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(30);
        // m < len/2 delegates to retain_random; m > len/2 sweeps the
        // complement; plus the m = 0 / m = len / m > len edges.
        for (len, m) in [(100usize, 30usize), (100, 70), (10, 0), (10, 10), (10, 99)] {
            let mut items: Vec<u32> = (0..len as u32).collect();
            retain_random_cheap(&mut items, m, &mut rng);
            assert_eq!(items.len(), m.min(len));
            let set: std::collections::HashSet<_> = items.iter().collect();
            assert_eq!(set.len(), items.len(), "duplicates introduced");
            assert!(items.iter().all(|&x| x < len as u32));
        }
    }

    #[test]
    fn retain_cheap_majority_path_is_uniform() {
        // The complement-sweep path (keep 7 of 10) must retain each
        // element with the same probability as the direct sweep — a
        // uniform subset's complement is itself uniform.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
        let trials = 60_000;
        let mut counts = [0u64; 10];
        for _ in 0..trials {
            let mut items: Vec<usize> = (0..10).collect();
            retain_random_cheap(&mut items, 7, &mut rng);
            for &i in &items {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 0.7; 10];
        assert!(!chi2_rejects(&counts, &expected));
    }

    #[test]
    fn draw_is_uniform() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let trials = 60_000;
        let mut counts = [0u64; 8];
        for _ in 0..trials {
            let mut items: Vec<usize> = (0..8).collect();
            for i in draw_without_replacement(&mut items, 3, &mut rng) {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 3.0 / 8.0; 8];
        assert!(!chi2_rejects(&counts, &expected));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        for (n, m) in [(100usize, 5usize), (100, 50), (100, 100), (10, 0), (1, 1)] {
            let idx = sample_indices(n, m, &mut rng);
            assert_eq!(idx.len(), m);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), m, "duplicate indices for n={n}, m={m}");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_sparse_path_uniform() {
        // m*4 < n forces the Floyd path.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let trials = 40_000;
        let mut counts = vec![0u64; 40];
        for _ in 0..trials {
            for i in sample_indices(40, 2, &mut rng) {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 2.0 / 40.0; 40];
        assert!(!chi2_rejects(&counts, &expected));
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn sample_indices_rejects_overdraw() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        sample_indices(3, 4, &mut rng);
    }

    #[test]
    fn sample_indices_full_draw_is_permutation_prefix() {
        // m == n edge: both paths must return every index exactly once.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(12);
        for n in [1usize, 2, 7, 64] {
            let mut idx = sample_indices(n, n, &mut rng);
            idx.sort_unstable();
            assert_eq!(idx, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn sample_indices_zero_draw_is_empty() {
        // m == 0 edge, including the degenerate n == 0 case.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        assert!(sample_indices(0, 0, &mut rng).is_empty());
        assert!(sample_indices(50, 0, &mut rng).is_empty());
        let mut scratch = vec![9usize; 4];
        sample_indices_into(10, 0, &mut rng, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn sample_indices_into_reuses_buffer_without_allocating() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(14);
        let mut scratch: Vec<usize> = Vec::with_capacity(100);
        for round in 0..50 {
            // Alternate sparse and dense draws through the same buffer.
            let (n, m) = if round % 2 == 0 { (100, 5) } else { (100, 80) };
            sample_indices_into(n, m, &mut rng, &mut scratch);
            assert_eq!(scratch.len(), m);
            let set: std::collections::HashSet<_> = scratch.iter().collect();
            assert_eq!(set.len(), m, "duplicates in round {round}");
            assert!(scratch.capacity() <= 128, "buffer grew past high-water");
        }
    }

    #[test]
    fn sample_indices_into_sparse_path_uniform() {
        // The Floyd-with-sorted-prefix dedup must stay uniform.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(15);
        let trials = 40_000;
        let mut counts = vec![0u64; 40];
        let mut scratch = Vec::new();
        for _ in 0..trials {
            sample_indices_into(40, 3, &mut rng, &mut scratch);
            for &i in &scratch {
                counts[i] += 1;
            }
        }
        let expected = vec![trials as f64 * 3.0 / 40.0; 40];
        assert!(!chi2_rejects(&counts, &expected));
    }

    #[test]
    fn decay_cache_matches_exp() {
        let mut c = DecayCache::new(0.35);
        assert_eq!(c.lambda(), 0.35);
        assert!((c.unit() - (-0.35f64).exp()).abs() < 1e-15);
        assert_eq!(c.factor(1.0), c.unit());
        for gap in [0.5f64, 2.25, 0.5, 0.5, 7.0, 1.0] {
            let expect = (-0.35 * gap).exp();
            assert!(
                (c.factor(gap) - expect).abs() < 1e-15,
                "gap {gap}: cache diverged from exp"
            );
        }
    }

    #[test]
    fn decay_cache_zero_lambda_is_identity() {
        let mut c = DecayCache::new(0.0);
        assert_eq!(c.factor(1.0), 1.0);
        assert_eq!(c.factor(123.0), 1.0);
    }

    #[test]
    fn sample_clone_leaves_source_intact() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let items: Vec<u32> = (0..10).collect();
        let s = sample_clone(&items, 4, &mut rng);
        assert_eq!(s.len(), 4);
        assert_eq!(items.len(), 10);
    }
}
