//! The common interface every sampling scheme implements.
//!
//! The paper's setting (§2): items arrive in batches `B₁, B₂, …` at integer
//! times; the sampler maintains a sample `S_t` of everything seen so far.
//! All schemes — time-biased or not, bounded or not — share this interface so
//! the ML pipeline, the distributed substrate, and the benchmark harness can
//! swap them freely.
//!
//! The trait is object-safe (`&mut dyn RngCore` instead of a generic `R`),
//! because the evaluation harness holds heterogeneous collections of
//! samplers under comparison.

use rand::RngCore;

/// A streaming sampler fed with discrete-time batches.
pub trait BatchSampler<T> {
    /// Advance the clock by one time unit and absorb the arriving batch
    /// (which may be empty).
    fn observe(&mut self, batch: Vec<T>, rng: &mut dyn RngCore);

    /// Materialize the current sample `S_t`.
    ///
    /// For schemes with a latent fractional state (R-TBS) this *realizes* a
    /// random sample from the latent sample, so consecutive calls may differ
    /// in whether the partial item appears; for all other schemes it is a
    /// copy of the deterministic current sample.
    fn sample(&self, rng: &mut dyn RngCore) -> Vec<T>;

    /// Expected size of `S_t` (equals the exact size when the scheme is
    /// deterministic-sized; equals the sample weight `C_t` for R-TBS).
    fn expected_size(&self) -> f64;

    /// Hard upper bound on the sample size, if the scheme guarantees one.
    fn max_size(&self) -> Option<usize>;

    /// Exponential decay rate λ (0 for unbiased schemes).
    fn decay_rate(&self) -> f64;

    /// Number of batches observed so far.
    fn batches_observed(&self) -> u64;

    /// Short identifier used in experiment output ("R-TBS", "SW", …).
    fn name(&self) -> &'static str;
}

/// Samplers that additionally support *arbitrary real-valued* inter-arrival
/// gaps (§2: "to handle arbitrary successive batch arrival times t and t′,
/// we simply multiply instead by e^{−λ(t′−t)}").
pub trait TimedBatchSampler<T>: BatchSampler<T> {
    /// Absorb a batch arriving `gap` time units after the previous one.
    ///
    /// `observe(batch, rng)` is equivalent to `observe_after(batch, 1.0, rng)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `gap` is negative or non-finite.
    fn observe_after(&mut self, batch: Vec<T>, gap: f64, rng: &mut dyn RngCore);
}

/// Validate an inter-arrival gap; shared by the `TimedBatchSampler`
/// implementations.
pub(crate) fn check_gap(gap: f64) {
    assert!(
        gap.is_finite() && gap >= 0.0,
        "inter-arrival gap must be finite and non-negative, got {gap}"
    );
}
