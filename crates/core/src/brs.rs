//! B-RS — batched reservoir sampling (Algorithm 5, Appendix B).
//!
//! The classic bounded-size *uniform* scheme, extended to batch arrivals:
//! at each step the number of new-batch items entering the sample is drawn
//! from the appropriate hypergeometric distribution, which makes the batched
//! algorithm distributionally identical to running the sequential reservoir
//! algorithm item by item. Every item seen so far is equally likely to be in
//! the sample (decay rate λ = 0) — this is the `Unif` baseline of §6.

use crate::checkpoint::{CheckpointError, Reader, Wire, Writer};
use crate::traits::adapt_batch_sampler;
use crate::util::retain_random;
use rand::Rng;
use tbs_stats::hypergeometric::hypergeometric;

/// Uniform bounded reservoir over a batch stream.
///
/// The inherent `observe` method is the monomorphized, allocation-free
/// fast path; the [`crate::traits::BatchSampler`] impl is a thin
/// `dyn`-RNG adapter over it.
#[derive(Debug, Clone)]
pub struct BatchedReservoir<T> {
    items: Vec<T>,
    /// Number of items seen so far (the paper's `W`, which for λ = 0 is the
    /// total weight).
    seen: u64,
    capacity: usize,
    steps: u64,
}

impl<T> BatchedReservoir<T> {
    /// Create an empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            seen: 0,
            capacity,
            steps: 0,
        }
    }

    /// Create a reservoir pre-loaded with an initial sample `S₀`
    /// (`|S₀| ≤ capacity` required).
    pub fn with_initial(capacity: usize, initial: Vec<T>) -> Self {
        assert!(initial.len() <= capacity, "initial sample exceeds capacity");
        let mut r = Self::new(capacity);
        r.seen = initial.len() as u64;
        r.items = initial;
        r
    }

    /// Exact current sample size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items observed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Borrow the current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, rng: &mut R) {
        let b = batch.len() as u64;
        // New sample size C = min(n, W + |B_t|).
        let c = (self.capacity as u64).min(self.seen + b);
        // M = number of batch items in a uniform C-subset of the W + |B_t|
        // items seen so far: HyperGeo(C, |B_t|, W).
        let m = hypergeometric(rng, c, b, self.seen) as usize;
        // Keep min(n − M, |S|) old items, insert M new ones. Both subset
        // selections run in place on their own vectors — nothing is
        // allocated beyond the caller-provided batch.
        let keep = (self.capacity - m).min(self.items.len());
        retain_random(&mut self.items, keep, rng);
        retain_random(&mut batch, m, rng);
        self.items.append(&mut batch);
        self.seen += b;
        self.steps += 1;
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.items.len() as f64
    }

    /// Hard upper bound on the sample size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// Uniform scheme: decay rate 0.
    pub fn decay_rate(&self) -> f64 {
        0.0
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "Unif"
    }
}

impl<T: Clone> BatchedReservoir<T> {
    /// Copy out the current sample (deterministic; `rng` is unused and
    /// accepted only for signature uniformity with the latent schemes).
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.items.clone()
    }
}

impl<T: Wire> BatchedReservoir<T> {
    /// Serialize the complete sampler state into `w`; see
    /// [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_u64(self.capacity as u64);
        w.put_u64(self.seen);
        w.put_u64(self.steps);
        w.put_items(self.items.iter());
    }

    /// Rebuild a reservoir from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("reservoir capacity"));
        }
        let seen = r.get_u64()?;
        let steps = r.get_u64()?;
        let items: Vec<T> = r.get_items()?;
        if items.len() > capacity || items.len() as u64 > seen {
            return Err(CheckpointError::Corrupt("reservoir item count"));
        }
        Ok(Self {
            items,
            seen,
            capacity,
            steps,
        })
    }
}

adapt_batch_sampler!(BatchedReservoir);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::gof::chi2_rejects;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn fills_up_then_stays_at_capacity() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut r = BatchedReservoir::new(50);
        r.observe((0..20u32).collect(), &mut rng);
        assert_eq!(r.len(), 20);
        r.observe((20..40u32).collect(), &mut rng);
        assert_eq!(r.len(), 40);
        r.observe((40..80u32).collect(), &mut rng);
        assert_eq!(r.len(), 50);
        for t in 0..20u32 {
            r.observe((100 * t..100 * t + 60).collect(), &mut rng);
            assert_eq!(r.len(), 50);
        }
    }

    #[test]
    fn all_items_equally_likely() {
        // After many batches, each of the N items seen should appear in the
        // sample with probability n/N — uniformity across *batches*.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let trials = 4_000;
        let batches = 10usize;
        let per_batch = 20usize;
        let cap = 30usize;
        let mut batch_counts = vec![0u64; batches];
        for _ in 0..trials {
            let mut r = BatchedReservoir::new(cap);
            for t in 0..batches {
                let items: Vec<usize> = (0..per_batch).map(|i| t * per_batch + i).collect();
                r.observe(items, &mut rng);
            }
            for &it in r.items() {
                batch_counts[it / per_batch] += 1;
            }
        }
        // Expected count per batch = trials * cap / batches.
        let expected = vec![(trials * cap / batches) as f64; batches];
        assert!(
            !chi2_rejects(&batch_counts, &expected),
            "reservoir not uniform across batches: {batch_counts:?}"
        );
    }

    #[test]
    fn empty_batches_change_nothing() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut r = BatchedReservoir::new(10);
        r.observe((0..10u32).collect(), &mut rng);
        let before: std::collections::HashSet<u32> = r.items().iter().copied().collect();
        for _ in 0..5 {
            r.observe(vec![], &mut rng);
        }
        let after: std::collections::HashSet<u32> = r.items().iter().copied().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn giant_single_batch_is_uniform_subsample() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut r = BatchedReservoir::new(100);
        r.observe((0..10_000u32).collect(), &mut rng);
        assert_eq!(r.len(), 100);
        let distinct: std::collections::HashSet<u32> = r.items().iter().copied().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn seen_counter_accumulates() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut r = BatchedReservoir::new(5);
        r.observe((0..7u32).collect(), &mut rng);
        r.observe((0..3u32).collect(), &mut rng);
        assert_eq!(r.seen(), 10);
        assert_eq!(r.batches_observed(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        BatchedReservoir::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn rejects_oversized_initial() {
        BatchedReservoir::with_initial(2, vec![1, 2, 3]);
    }

    #[test]
    fn trait_metadata() {
        let r = BatchedReservoir::<u8>::new(10);
        assert_eq!(r.name(), "Unif");
        assert_eq!(r.decay_rate(), 0.0);
        assert_eq!(r.max_size(), Some(10));
    }
}
