//! Versioned binary checkpoint codec — the shared durable-state substrate.
//!
//! §5.1 of the paper: "Both D-T-TBS and D-R-TBS periodically checkpoint
//! the sample as well as other system state variables to ensure fault
//! tolerance." This module is the single home of that byte format, used by
//! every core sampler's `save_state`/`load_state` pair, by the sharded
//! parallel engine in `tbs-distributed`, and by the public
//! `temporal_sampling::api::Sampler::snapshot`/`restore` entry points. A
//! checkpoint is a self-contained blob: configuration, scalar weights,
//! RNG positions, and full reservoir contents — restoring yields a sampler
//! that continues the stream **bit-identically** to an uninterrupted run.
//!
//! Format: little-endian, length-prefixed, versioned (`MAGIC`, `VERSION`
//! leading). No external serialization framework — item payloads go
//! through the [`Wire`] trait, the same encoding the simulated key-value
//! store in `tbs-distributed` charges its network cost model for.
//!
//! The codec lives here (not in `tbs-distributed`, its pre-PR-4 home) so
//! the core samplers can serialize themselves without the core crate
//! depending on the distributed substrate. This module is the canonical
//! import path; the `tbs_distributed::checkpoint` re-export shim is
//! deprecated and hidden from the docs.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag identifying a TBS checkpoint blob.
pub const MAGIC: u32 = 0x5442_5343; // "TBSC"
/// Current checkpoint format version. Version history:
///
/// * 1 — PR 4: initial shared codec.
/// * 2 — PR 5: sharded-engine payloads carry the batches-ingested
///   staleness stamp (`EngineCheckpoint::batches`) between the rotation
///   counter and the driver RNG state. v1 blobs are rejected with
///   [`CheckpointError::UnsupportedVersion`] rather than misparsed.
/// * 3 — PR 7: the sharded-engine payload's single remainder-rotation
///   counter (`u64`) is replaced by the balanced splitter's K per-shard
///   deviation scalars (`f64` each, shard-id order), and shard samplers
///   carry the adaptive `⌈n/K⌉+1` capacity. v2 blobs are rejected with
///   [`CheckpointError::UnsupportedVersion`] rather than misparsed.
/// * 4 — PR 10: R-TBS payloads carry the batch-granular downsampling
///   state (defer threshold θ, accumulated lazy scale `P`, deferred
///   arrival segments) after the latent sample, so a snapshot taken
///   mid-deferral restores bit-identically without forcing a
///   materialization; the sharded-engine payload leads with the
///   shard-group ledger (logical cell count `G ≤ K`). v3 blobs are
///   rejected with [`CheckpointError::UnsupportedVersion`] rather than
///   misparsed.
pub const VERSION: u32 = 4;

/// Errors raised when decoding a checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The blob ended before all declared fields were read.
    Truncated,
    /// A field held an invalid value (tag or enum out of range).
    Corrupt(&'static str),
    /// A CRC-framed blob ([`frame`]) failed its integrity check: the
    /// payload was bit-flipped, overwritten, or torn mid-write.
    CrcMismatch {
        /// CRC32 recorded in the frame header.
        expected: u32,
        /// CRC32 of the payload as read back.
        actual: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a TBS checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
            CheckpointError::CrcMismatch { expected, actual } => write!(
                f,
                "checkpoint CRC mismatch: frame says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A value that can be encoded to / decoded from bytes.
///
/// Implemented for the item types the experiments stream; user item types
/// implement it to become checkpointable (and shippable across the
/// simulated network in `tbs-distributed`, whose cost model charges for
/// the encoded size).
pub trait Wire: Clone {
    /// Encode to a byte buffer.
    fn encode(&self) -> Bytes;
    /// Decode from a byte buffer; `None` on a malformed payload (e.g.
    /// too short). Must round-trip `encode`. This is the method the
    /// checkpoint reader calls, so untrusted blobs fail cleanly.
    fn try_decode(data: &[u8]) -> Option<Self>;
    /// Decode from a byte buffer the caller knows is well-formed.
    ///
    /// # Panics
    ///
    /// Panics on a malformed payload; use [`Wire::try_decode`] for
    /// untrusted input.
    fn decode(data: &[u8]) -> Self {
        Self::try_decode(data).expect("malformed wire payload")
    }
    /// Payload size on the wire.
    fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

impl Wire for u64 {
    fn encode(&self) -> Bytes {
        Bytes::copy_from_slice(&self.to_le_bytes())
    }
    fn try_decode(data: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(data.get(..8)?.try_into().ok()?))
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for (u32, u32) {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(self.0);
        b.put_u32_le(self.1);
        b.freeze()
    }
    fn try_decode(data: &[u8]) -> Option<Self> {
        Some((
            u32::from_le_bytes(data.get(..4)?.try_into().ok()?),
            u32::from_le_bytes(data.get(4..8)?.try_into().ok()?),
        ))
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for [f64; 2] {
    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_f64_le(self[0]);
        b.put_f64_le(self[1]);
        b.freeze()
    }
    fn try_decode(data: &[u8]) -> Option<Self> {
        Some([
            f64::from_le_bytes(data.get(..8)?.try_into().ok()?),
            f64::from_le_bytes(data.get(8..16)?.try_into().ok()?),
        ])
    }
    fn wire_size(&self) -> usize {
        16
    }
}

/// Little-endian writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Start a checkpoint blob with magic + version.
    pub fn new() -> Self {
        let mut w = Writer {
            buf: BytesMut::with_capacity(1024),
        };
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w
    }

    /// Append a u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Append a 256-bit RNG state.
    pub fn put_rng_state(&mut self, s: [u64; 4]) {
        for word in s {
            self.put_u64(word);
        }
    }

    /// Append one [`Wire`]-encoded item (length-prefixed).
    pub fn put_item<T: Wire>(&mut self, item: &T) {
        self.put_bytes(&item.encode());
    }

    /// Append a length-prefixed sequence of [`Wire`]-encoded items.
    pub fn put_items<'a, T: Wire + 'a>(&mut self, items: impl ExactSizeIterator<Item = &'a T>) {
        self.put_u32(items.len() as u32);
        for item in items {
            self.put_item(item);
        }
    }

    /// Finish and return the blob.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Little-endian reader with truncation checks.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Open a blob, validating magic and version.
    pub fn new(blob: Bytes) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: blob };
        if r.get_u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        Ok(r)
    }

    fn need(&self, n: usize) -> Result<(), CheckpointError> {
        if self.buf.remaining() < n {
            Err(CheckpointError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Read a u32.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an f64.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, CheckpointError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Read a 256-bit RNG state.
    pub fn get_rng_state(&mut self) -> Result<[u64; 4], CheckpointError> {
        Ok([
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
        ])
    }

    /// Read one [`Wire`]-encoded item (length-prefixed); a payload the
    /// item type cannot decode is [`CheckpointError::Corrupt`].
    pub fn get_item<T: Wire>(&mut self) -> Result<T, CheckpointError> {
        let bytes = self.get_bytes()?;
        T::try_decode(&bytes).ok_or(CheckpointError::Corrupt("item payload"))
    }

    /// Read a length-prefixed sequence of [`Wire`]-encoded items.
    pub fn get_items<T: Wire>(&mut self) -> Result<Vec<T>, CheckpointError> {
        let count = self.get_u32()? as usize;
        // Each item costs ≥ 4 bytes of length prefix; a corrupt count must
        // fail cleanly instead of attempting a huge allocation.
        self.check_count(count, 4)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_item()?);
        }
        Ok(out)
    }

    /// Whether every byte of the blob has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.remaining() == 0
    }

    /// Bytes left to read. `load_state` implementations use this to bound
    /// count-driven allocations *before* calling `Vec::with_capacity` —
    /// a corrupt count larger than the remaining bytes could possibly
    /// encode must fail as [`CheckpointError::Truncated`], not abort the
    /// process on a huge allocation.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Guard for count-driven allocations: error out unless the blob has
    /// at least `count * min_bytes_each` bytes left.
    pub fn check_count(&self, count: usize, min_bytes_each: usize) -> Result<(), CheckpointError> {
        if count.saturating_mul(min_bytes_each) > self.buf.remaining() {
            Err(CheckpointError::Truncated)
        } else {
            Ok(())
        }
    }
}

/// Magic tag identifying a CRC frame around a checkpoint blob ("TBSF").
pub const FRAME_MAGIC: u32 = 0x5442_5346;

/// CRC32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320),
/// computed at compile time so the framing layer needs no dependencies
/// and no runtime init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data` — the integrity check used by [`frame`].
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Wrap a checkpoint blob in a CRC frame for durable storage:
/// `[FRAME_MAGIC][payload len][crc32(payload)][payload]`, all u32s
/// little-endian. [`unframe`] rejects truncation (torn write) and any
/// bit flip inside the header or payload, so a durability layer can fall
/// back to an older generation instead of restoring garbage.
pub fn frame(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + blob.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(blob).to_le_bytes());
    out.extend_from_slice(blob);
    out
}

/// Validate and strip a [`frame`], returning the inner checkpoint blob.
pub fn unframe(framed: &[u8]) -> Result<Bytes, CheckpointError> {
    let word = |at: usize| -> Result<u32, CheckpointError> {
        let raw: [u8; 4] = framed
            .get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .ok_or(CheckpointError::Truncated)?;
        Ok(u32::from_le_bytes(raw))
    };
    if word(0)? != FRAME_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let len = word(4)? as usize;
    let expected = word(8)?;
    let payload = framed.get(12..12 + len).ok_or(CheckpointError::Truncated)?;
    if framed.len() != 12 + len {
        // Trailing garbage means the file is not the frame we wrote.
        return Err(CheckpointError::Corrupt("frame length"));
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(CheckpointError::CrcMismatch { expected, actual });
    }
    Ok(Bytes::copy_from_slice(payload))
}

/// Validate an f64 read back from a blob: finite and non-negative (all
/// persisted weights/widths satisfy this; anything else is corruption).
pub fn check_non_negative(v: f64, what: &'static str) -> Result<f64, CheckpointError> {
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(CheckpointError::Corrupt(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_bytes() {
        let mut w = Writer::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_f64(3.25);
        w.put_u8(1);
        w.put_bytes(b"hello");
        w.put_rng_state([1, 2, 3, 4]);
        let blob = w.finish();

        let mut r = Reader::new(blob).unwrap();
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(&r.get_bytes().unwrap()[..], b"hello");
        assert_eq!(r.get_rng_state().unwrap(), [1, 2, 3, 4]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_items() {
        let mut w = Writer::new();
        let items: Vec<u64> = vec![1, u64::MAX, 42];
        w.put_items(items.iter());
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(r.get_items::<u64>().unwrap(), items);
    }

    #[test]
    fn rejects_bad_magic() {
        let blob = Bytes::from_static(&[0u8; 16]);
        assert_eq!(Reader::new(blob).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_future_version() {
        let mut w = BytesMut::new();
        w.put_u32_le(MAGIC);
        w.put_u32_le(99);
        assert_eq!(
            Reader::new(w.freeze()).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn detects_truncation() {
        let mut w = Writer::new();
        w.put_u64(5);
        let blob = w.finish();
        let truncated = blob.slice(0..blob.len() - 2);
        let mut r = Reader::new(truncated).unwrap();
        assert_eq!(r.get_u64().unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn oversized_item_count_fails_cleanly() {
        // A corrupt count must not trigger a huge Vec::with_capacity.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(
            r.get_items::<u64>().unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn error_messages_render() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::Corrupt("store tag")
            .to_string()
            .contains("store tag"));
    }

    #[test]
    fn wire_u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::decode(&v.encode()), v);
            assert_eq!(v.wire_size(), 8);
        }
    }

    #[test]
    fn wire_pair_roundtrip() {
        let v = (7u32, 99u32);
        assert_eq!(<(u32, u32)>::decode(&v.encode()), v);
        assert_eq!(v.wire_size(), 8);
    }

    #[test]
    fn wire_f64_pair_roundtrip() {
        let v = [1.5f64, -2.25];
        assert_eq!(<[f64; 2]>::decode(&v.encode()), v);
        assert_eq!(v.wire_size(), 16);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let blob = b"some checkpoint payload".to_vec();
        let framed = frame(&blob);
        assert_eq!(&unframe(&framed).unwrap()[..], &blob[..]);
    }

    #[test]
    fn frame_rejects_bit_flips_everywhere() {
        let blob: Vec<u8> = (0..64u8).collect();
        let framed = frame(&blob);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut evil = framed.clone();
                evil[byte] ^= 1 << bit;
                assert!(
                    unframe(&evil).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn frame_rejects_truncation_at_every_length() {
        let blob: Vec<u8> = (0..32u8).collect();
        let framed = frame(&blob);
        for keep in 0..framed.len() {
            assert!(
                unframe(&framed[..keep]).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn frame_rejects_trailing_garbage() {
        let mut framed = frame(b"payload");
        framed.push(0);
        assert_eq!(
            unframe(&framed).unwrap_err(),
            CheckpointError::Corrupt("frame length")
        );
    }

    #[test]
    fn check_non_negative_guards() {
        assert!(check_non_negative(0.0, "w").is_ok());
        assert!(check_non_negative(5.5, "w").is_ok());
        assert!(check_non_negative(-1.0, "w").is_err());
        assert!(check_non_negative(f64::NAN, "w").is_err());
        assert!(check_non_negative(f64::INFINITY, "w").is_err());
    }
}
