//! T-TBS — Targeted-size time-biased sampling (§3, Algorithm 1).
//!
//! T-TBS augments B-TBS with *down-sampling of the incoming batch* at rate
//! `q = n(1 − e^{−λ})/b`, which makes the target `n` the equilibrium sample
//! size: at size `n`, the expected decay loss `n(1 − e^{−λ})` equals the
//! expected inflow `q·b`. The relative-inclusion property (1) holds exactly
//! — `Pr[x ∈ S_{t′}] = q·e^{−λ(t′−t)}` for `x ∈ B_t` — but the size is
//! controlled only *probabilistically* (Theorem 3.1): the mean converges to
//! `n`, deviations are exponentially rare, yet every size level is exceeded
//! infinitely often, and the scheme silently breaks when the true mean batch
//! size drifts away from the assumed `b` (Figure 1).

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::jumps::{IngestMode, JumpCursor, JUMP_GEOMETRIC_MAX_Q};
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use crate::util::{retain_random, retain_random_cheap, DecayCache};
use rand::Rng;
use tbs_stats::binomial::{binomial, CachedBinomial};
use tbs_stats::geometric::geometric;

/// Targeted-size time-biased sampler.
///
/// The inherent `observe`/`observe_after` methods are the monomorphized,
/// allocation-free fast path; the [`crate::traits::BatchSampler`] impl is
/// a thin `dyn`-RNG adapter over them.
#[derive(Debug, Clone)]
pub struct TTbs<T> {
    items: Vec<T>,
    decay: DecayCache,
    target: usize,
    assumed_mean_batch: f64,
    /// Batch down-sampling rate `q = n(1 − e^{−λ})/b`.
    q: f64,
    steps: u64,
    mode: IngestMode,
    /// Jump-mode acceptance cursor: the part of the current geometric
    /// inter-acceptance gap not yet consumed by previous batches. Always
    /// zero in per-item mode and whenever `q ≥` [`JUMP_GEOMETRIC_MAX_Q`]
    /// (the binomial side of the crossover).
    cursor: JumpCursor,
    /// Memoized BINV setup for the jump path's dense acceptance draw
    /// (`q` is constant, so constant-size batches reuse the setup); pure
    /// acceleration state, never persisted.
    binom_accept: CachedBinomial,
}

impl<T> TTbs<T> {
    /// Create a T-TBS sampler targeting sample size `target`, with decay
    /// rate `lambda` and assumed mean batch size `assumed_mean_batch`.
    ///
    /// # Panics
    ///
    /// Panics unless `b ≥ n(1 − e^{−λ})` (the paper's feasibility condition:
    /// items must on average arrive at least as fast as they decay at the
    /// target size), `lambda ≥ 0`, and `target ≥ 1`.
    pub fn new(lambda: f64, target: usize, assumed_mean_batch: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        assert!(target >= 1, "target sample size must be positive");
        let min_b = target as f64 * (1.0 - (-lambda).exp());
        assert!(
            assumed_mean_batch >= min_b,
            "mean batch size {assumed_mean_batch} below feasibility bound \
             n(1-e^-lambda) = {min_b}"
        );
        let q = if assumed_mean_batch > 0.0 {
            (min_b / assumed_mean_batch).min(1.0)
        } else {
            1.0
        };
        Self {
            items: Vec::new(),
            decay: DecayCache::new(lambda),
            target,
            assumed_mean_batch,
            q,
            steps: 0,
            mode: IngestMode::PerItem,
            cursor: JumpCursor::zero(),
            binom_accept: CachedBinomial::new(),
        }
    }

    /// The active [`IngestMode`].
    pub fn ingest_mode(&self) -> IngestMode {
        self.mode
    }

    /// Switch between per-item and jump-ahead ingest. Like
    /// [`crate::RTbs::set_ingest_mode`], the mode is a strategy, not
    /// sampler identity: both modes realize iid `Bernoulli(q)` batch
    /// acceptance and independent `e^{−λ}` retention — jump mode just
    /// spends one geometric or binomial draw where per-item mode spends
    /// many uniforms. Switching away from jump mode mid-stream simply
    /// abandons any pending acceptance gap (statistically immaterial:
    /// the gap is memoryless).
    pub fn set_ingest_mode(&mut self, mode: IngestMode) {
        self.mode = mode;
    }

    /// The jump-mode acceptance cursor (zero unless a geometric gap is
    /// mid-flight across a batch boundary).
    pub fn jump_cursor(&self) -> JumpCursor {
        self.cursor
    }

    /// Pre-load an initial sample `S₀`.
    pub fn with_initial(lambda: f64, target: usize, assumed_mean_batch: f64, s0: Vec<T>) -> Self {
        let mut s = Self::new(lambda, target, assumed_mean_batch);
        s.items = s0;
        s
    }

    /// Exact current sample size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample is currently empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The batch acceptance probability `q`.
    pub fn batch_acceptance(&self) -> f64 {
        self.q
    }

    /// The configured target sample size `n`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The assumed mean batch size `b`.
    pub fn assumed_mean_batch(&self) -> f64 {
        self.assumed_mean_batch
    }

    /// Borrow the current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path.
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, rng: &mut R) {
        let p = self.decay.unit();
        self.step(&mut batch, p, rng);
    }

    /// [`Self::observe`] from a caller-owned buffer: accepted items are
    /// drained into the sample, the rest discarded, and the buffer's
    /// allocation survives for reuse (see `RTbs::observe_drain` for the
    /// rationale). Statistically and RNG-stream-wise identical to
    /// [`Self::observe`].
    #[inline]
    pub fn observe_drain<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        let p = self.decay.unit();
        self.step(batch, p, rng);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, gap: f64, rng: &mut R) {
        check_gap(gap);
        let p = self.decay.factor(gap);
        self.step(&mut batch, p, rng);
    }

    /// Expected size of `S_t` (the current exact size).
    pub fn expected_size(&self) -> f64 {
        self.items.len() as f64
    }

    /// No hard bound: size is targeted, not bounded (Theorem 3.1(i)).
    pub fn max_size(&self) -> Option<usize> {
        None
    }

    /// Exponential decay rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.decay.lambda()
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Overwrite the batch counter — used by [`crate::merge`] so a merged
    /// sampler reports the stream position of its shards.
    pub(crate) fn set_steps(&mut self, steps: u64) {
        self.steps = steps;
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "T-TBS"
    }

    fn step<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, p: f64, rng: &mut R) {
        if self.mode == IngestMode::Jump {
            // Decay: same Binomial(|S|, p) survivor count, but sweep out
            // the smaller complement (p ≈ e^{−λ} is near 1, so killing
            // the ~λ·|S| casualties is far cheaper than re-drawing the
            // survivors). Distribution-identical to the per-item sweep.
            let keep = binomial(rng, self.items.len() as u64, p) as usize;
            retain_random_cheap(&mut self.items, keep, rng);
            if self.q >= JUMP_GEOMETRIC_MAX_Q {
                // Dense acceptance: one binomial count + complement sweep.
                let accept = self.binom_accept.draw(rng, batch.len() as u64, self.q) as usize;
                retain_random_cheap(batch, accept, rng);
                self.items.append(batch);
            } else if self.q == 0.0 {
                // λ = 0 feasibility corner: nothing is ever accepted.
                batch.clear();
            } else {
                self.accept_by_jumps(batch, rng);
            }
        } else {
            // Decay current sample: keep Binomial(|S|, p) random survivors.
            let keep = binomial(rng, self.items.len() as u64, p) as usize;
            retain_random(&mut self.items, keep, rng);
            // Down-sample the incoming batch at rate q, in place.
            let accept = binomial(rng, batch.len() as u64, self.q) as usize;
            retain_random(batch, accept, rng);
            self.items.append(batch);
        }
        self.steps += 1;
    }

    /// Sparse acceptance by geometric jumps (A-ExpJ style): instead of a
    /// coin per item, draw the gap to the next accepted item and skip the
    /// run in between. The accepted subset is *exactly* the iid
    /// `Bernoulli(q)` outcome — geometric gaps are the inter-success
    /// distances of the trial sequence — and the partially consumed final
    /// gap carries to the next batch in `self.cursor` (memorylessness
    /// makes the resumed process identical to an uninterrupted one).
    /// Empty batches consume no randomness and leave the cursor intact.
    fn accept_by_jumps<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        let b = batch.len() as u64;
        // The first gap of the process is itself geometric — the position
        // of the first success in a Bernoulli sequence. Prime it lazily
        // (there is no RNG at construction/mode-switch time).
        if !self.cursor.primed {
            self.cursor.primed = true;
            self.cursor.pending_skip = geometric(rng, self.q);
        }
        let mut skip = self.cursor.pending_skip;
        let mut i = 0u64; // trials consumed within this batch
        let mut w = 0usize; // accepted prefix length
        loop {
            let remaining = b - i;
            if skip >= remaining {
                self.cursor.pending_skip = skip - remaining;
                break;
            }
            i += skip;
            batch.swap(w, i as usize);
            w += 1;
            i += 1;
            skip = geometric(rng, self.q);
        }
        batch.truncate(w);
        self.items.append(batch);
    }
}

impl<T: Clone> TTbs<T> {
    /// Copy out the current sample (deterministic; `rng` is unused and
    /// accepted only for signature uniformity with the latent schemes).
    pub fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Vec<T> {
        self.items.clone()
    }
}

impl<T: Wire> TTbs<T> {
    /// Serialize the complete sampler state into `w`; see
    /// [`crate::RTbs::save_state`] for the contract.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.decay.lambda());
        w.put_u64(self.target as u64);
        w.put_f64(self.assumed_mean_batch);
        w.put_u64(self.steps);
        w.put_items(self.items.iter());
        // The jump cursor is the one piece of jump-mode state that must
        // survive a restart: a geometric gap mid-flight across the cut,
        // plus whether the initial gap has been drawn at all.
        w.put_u8(self.cursor.primed as u8);
        w.put_u64(self.cursor.pending_skip);
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field — including the feasibility bound `b ≥ n(1 − e^{−λ})`
    /// — without panicking on corrupt input.
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "T-TBS lambda")?;
        let target = r.get_u64()? as usize;
        if target == 0 {
            return Err(CheckpointError::Corrupt("T-TBS target"));
        }
        let assumed_mean_batch = check_non_negative(r.get_f64()?, "T-TBS mean batch")?;
        let min_b = target as f64 * (1.0 - (-lambda).exp());
        if assumed_mean_batch < min_b {
            return Err(CheckpointError::Corrupt("T-TBS infeasible mean batch"));
        }
        let steps = r.get_u64()?;
        let items = r.get_items()?;
        let primed = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Corrupt("T-TBS cursor primed flag")),
        };
        let pending_skip = r.get_u64()?;
        let mut s = Self::new(lambda, target, assumed_mean_batch);
        // A pending gap can only arise on the geometric side of the
        // crossover, and only after the initial gap was drawn; anything
        // else is a state no execution can produce.
        if pending_skip > 0 && (!primed || s.q >= JUMP_GEOMETRIC_MAX_Q) {
            return Err(CheckpointError::Corrupt("T-TBS jump cursor"));
        }
        s.items = items;
        s.steps = steps;
        s.cursor = JumpCursor {
            pending_skip,
            primed,
        };
        Ok(s)
    }
}

adapt_batch_sampler!(TTbs);
adapt_timed_batch_sampler!(TTbs);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn feed_constant(s: &mut TTbs<u64>, batches: u64, b: u64, rng: &mut Xoshiro256PlusPlus) {
        for t in 0..batches {
            s.observe((0..b).map(|i| t * b + i).collect(), rng);
        }
    }

    #[test]
    fn equilibrium_mean_is_target() {
        // Theorem 3.1(ii)/(iii): time-average sample size converges to n.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = TTbs::new(0.1, 1000, 100.0);
        feed_constant(&mut s, 300, 100, &mut rng);
        let mut acc = 0.0;
        let rounds = 500;
        for t in 0..rounds {
            s.observe((0..100).map(|i| t * 100 + i).collect(), &mut rng);
            acc += s.len() as f64;
        }
        let mean = acc / rounds as f64;
        assert!((mean / 1000.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn expected_size_transient_matches_theorem() {
        // Theorem 3.1(ii): E[C_t] = n + p^t (C0 − n). Start from C0 = 0 and
        // verify at a small t by Monte Carlo.
        let (lambda, n, b) = (0.2f64, 50usize, 20.0);
        let t = 5u64;
        let p = (-lambda).exp();
        let expect = n as f64 + p.powi(t as i32) * (0.0 - n as f64);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let trials = 3_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut s = TTbs::new(lambda, n, b);
            feed_constant(&mut s, t, 20, &mut rng);
            acc += s.len() as f64;
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - expect).abs() < 1.0,
            "mean {mean} vs theory {expect}"
        );
    }

    #[test]
    fn inclusion_ratio_between_batches_is_exponential() {
        // Property (1): items one batch apart appear with ratio e^{-λ}.
        let lambda = 0.5;
        let trials = 30_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut count_old = 0u64; // item from batch 1 present at t=3
        let mut count_new = 0u64; // item from batch 2 present at t=3
        for _ in 0..trials {
            let mut s = TTbs::new(lambda, 10, 10.0);
            s.observe(vec![1u64], &mut rng); // batch 1: tagged item 1
            s.observe(vec![2u64], &mut rng); // batch 2: tagged item 2
            s.observe(vec![], &mut rng); // batch 3: empty
            if s.items().contains(&1) {
                count_old += 1;
            }
            if s.items().contains(&2) {
                count_new += 1;
            }
        }
        let ratio = count_old as f64 / count_new as f64;
        let expect = (-lambda).exp();
        assert!(
            (ratio - expect).abs() < 0.05,
            "ratio {ratio} vs e^-lambda {expect}"
        );
    }

    #[test]
    fn growing_batches_overflow_the_target() {
        // Figure 1(a): batch sizes growing 0.2% per step blow up the sample.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut s = TTbs::new(0.05, 1000, 100.0);
        let mut b = 100.0f64;
        feed_constant(&mut s, 200, 100, &mut rng);
        for _ in 0..800 {
            b *= 1.004;
            let size = b.round() as u64;
            s.observe((0..size).collect(), &mut rng);
        }
        assert!(
            s.len() as f64 > 1500.0,
            "sample failed to overflow: {}",
            s.len()
        );
    }

    #[test]
    fn q_equals_one_recovers_btbs_equilibrium() {
        // With b = n(1-e^-λ) exactly, q = 1 and T-TBS is B-TBS (Remark 1).
        let lambda = 0.1f64;
        let n = 1000usize;
        let b = n as f64 * (1.0 - (-lambda).exp());
        let s = TTbs::<u64>::new(lambda, n, b);
        assert!((s.batch_acceptance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feasibility")]
    fn rejects_infeasible_batch_size() {
        // b < n(1 − e^{-λ}) can never sustain the target.
        TTbs::<u8>::new(0.5, 1000, 10.0);
    }

    #[test]
    fn empty_stream_decays_to_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut s = TTbs::with_initial(0.5, 100, 100.0, (0..100u64).collect());
        for _ in 0..60 {
            s.observe(vec![], &mut rng);
        }
        assert_eq!(s.len(), 0, "sample should decay away with no arrivals");
    }

    #[test]
    fn trait_metadata() {
        let s = TTbs::<u8>::new(0.07, 20, 10.0);
        assert_eq!(s.name(), "T-TBS");
        assert_eq!(s.max_size(), None);
        assert_eq!(s.target(), 20);
    }
}
