//! R-TBS — reservoir-based time-biased sampling (§4, Algorithm 2).
//!
//! The paper's headline contribution: the first sampling scheme that
//! simultaneously
//!
//! 1. enforces the exponential relative-inclusion property (1) **at all
//!    times** — `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` for every item (Thm 4.2);
//! 2. guarantees the hard bound `|S_t| ≤ n`;
//! 3. handles **unknown, arbitrarily varying** arrival rates, including
//!    real-valued inter-arrival gaps.
//!
//! Among all decay-correct schemes it *maximizes* the expected sample size
//! whenever the total weight is below `n` (Thm 4.3) and *minimizes*
//! sample-size variance (Thm 4.4, via stochastic rounding).
//!
//! The state is a latent fractional sample (see [`crate::latent`]) plus the
//! total weight `W_t = Σ_j |B_j|·e^{−λ(t−j)}`; the sample weight is always
//! `C_t = min(n, W_t)`. Four transitions arise per batch, depending on
//! whether the reservoir is *saturated* (`W ≥ n`) before and after.

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::downsample::downsample_with;
use crate::jumps::IngestMode;
use crate::latent::LatentSample;
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use crate::util::{uniform_index, DecayCache};
use rand::Rng;
use tbs_stats::binomial::CachedBinomial;
use tbs_stats::rounding::stochastic_round;

/// Reservoir-based time-biased sampler with decay rate λ and capacity `n`.
///
/// # Performance
///
/// The inherent `observe`/`observe_after`/`sample` methods are generic
/// over the RNG — call them with a concrete generator (e.g.
/// `Xoshiro256PlusPlus`) and the whole per-batch transition is
/// monomorphized with the RNG inlined into the inner loops. Steady-state
/// ingest performs **zero heap allocations** beyond the caller-provided
/// batch: victims are overwritten by in-place swaps, the unit-gap decay
/// factor is memoized, and the latent sample's buffers persist at their
/// high-water capacity. The [`crate::traits::BatchSampler`] impl is a thin
/// `dyn`-RNG adapter over the same methods for heterogeneous harnesses.
#[derive(Debug, Clone)]
pub struct RTbs<T> {
    latent: LatentSample<T>,
    /// Total decayed weight `W_t` of all items seen so far.
    total_weight: f64,
    decay: DecayCache,
    capacity: usize,
    steps: u64,
    mode: IngestMode,
    /// Memoized BINV setup for the jump path's per-batch accept-count
    /// draw; pure acceleration state (never persisted, draw-for-draw
    /// identical to the one-shot sampler).
    binom: CachedBinomial,
}

impl<T> RTbs<T> {
    /// Create an empty R-TBS sampler.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative/non-finite or `capacity` is zero.
    pub fn new(lambda: f64, capacity: usize) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        assert!(capacity > 0, "capacity must be positive");
        Self {
            latent: LatentSample::empty(),
            total_weight: 0.0,
            decay: DecayCache::new(lambda),
            capacity,
            steps: 0,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
        }
    }

    /// The active [`IngestMode`].
    pub fn ingest_mode(&self) -> IngestMode {
        self.mode
    }

    /// Switch between per-item and jump-ahead ingest. The mode is a
    /// *strategy*, not sampler identity: it may be flipped at any batch
    /// boundary (including after a checkpoint restore) and both modes
    /// realize the same Theorem 4.2 inclusion probabilities — they just
    /// spend the RNG stream differently. Not persisted by
    /// [`Self::save_state`]; restore paths re-apply the caller's config.
    pub fn set_ingest_mode(&mut self, mode: IngestMode) {
        self.mode = mode;
    }

    /// Create a sampler pre-loaded with an initial sample `A₀`
    /// (`|A₀| ≤ n` required); its items carry weight 1 each.
    pub fn with_initial(lambda: f64, capacity: usize, initial: Vec<T>) -> Self {
        assert!(initial.len() <= capacity, "initial sample exceeds capacity");
        let mut s = Self::new(lambda, capacity);
        s.total_weight = initial.len() as f64;
        s.latent = LatentSample::from_full(initial);
        s
    }

    /// Total decayed weight `W_t`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Sample weight `C_t = min(n, W_t)` — the expected realized size.
    pub fn sample_weight(&self) -> f64 {
        self.latent.weight()
    }

    /// Whether the reservoir is saturated (`W_t ≥ n`, so `|S_t| = n`).
    pub fn is_saturated(&self) -> bool {
        self.total_weight >= self.capacity as f64
    }

    /// Access the underlying latent sample (full items + optional partial).
    pub fn latent(&self) -> &LatentSample<T> {
        &self.latent
    }

    /// Mutable access for the shard-merge algebra, which downsamples a
    /// shard's latent state to its merged target weight.
    pub(crate) fn latent_mut(&mut self) -> &mut LatentSample<T> {
        &mut self.latent
    }

    /// The capacity bound `n`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path (see the type-level docs).
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, rng: &mut R) {
        let decay = self.decay.unit();
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// [`Self::observe`] from a caller-owned buffer: the batch items are
    /// drained out of `batch` (accepted ones move into the sample; rejected
    /// ones and any evicted victims are left behind for the caller to
    /// `clear`), and the buffer's allocation survives the call. This is the
    /// ingest entry point for pipelines that recycle batch buffers — e.g.
    /// the sharded parallel engine in `tbs-distributed` — where dropping a
    /// `Vec` per batch would force a fresh allocation per batch upstream.
    ///
    /// Statistically and RNG-stream-wise identical to [`Self::observe`].
    #[inline]
    pub fn observe_drain<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        let decay = self.decay.unit();
        self.step_with_decay(batch, decay, rng);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    /// Repeated gaps reuse the memoized decay factor instead of calling
    /// `exp`.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, gap: f64, rng: &mut R) {
        check_gap(gap);
        let decay = self.decay.factor(gap);
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// Advance one step with an explicit per-step decay factor in `(0, 1]`.
    ///
    /// This is the arbitrary-decay extension point the paper's §8 points
    /// toward: any decay law whose *relative* item weights shrink by a
    /// common per-step factor (e.g. forward decay with a monotone gauge
    /// `g`, see [`crate::forward`]) reduces to R-TBS with time-varying
    /// factors. The invariant `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` is
    /// maintained for the induced weights.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn observe_with_decay<R: Rng + ?Sized>(
        &mut self,
        mut batch: Vec<T>,
        decay: f64,
        rng: &mut R,
    ) {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "per-step decay factor must lie in (0, 1], got {decay}"
        );
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// Expected size of `S_t` — the sample weight `C_t`.
    pub fn expected_size(&self) -> f64 {
        self.latent.weight()
    }

    /// Hard upper bound on the sample size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// Exponential decay rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.decay.lambda()
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "R-TBS"
    }

    /// One batch transition. Items are *drained* out of `batch` (its
    /// allocation is never dropped here), so both the owned `observe` entry
    /// points and the buffer-recycling `observe_drain` share this body.
    fn step_with_decay<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, decay: f64, rng: &mut R) {
        let n = self.capacity as f64;
        let batch_size = batch.len();

        // Jump mode spends randomness per batch instead of per item; the
        // retention sweeps inside `downsample` switch to complement-side
        // draws, and the saturated→saturated transition below replaces the
        // per-victim Fisher–Yates loop with a binomial count plus windowed
        // segment swaps (see `crate::jumps` for the equivalence argument).
        let cheap = self.mode == IngestMode::Jump;

        if self.total_weight < n {
            // ——— Previously unsaturated: C = W. ———
            self.total_weight *= decay; // line 6: decay current items
            if self.total_weight > 0.0 && !self.latent.is_empty() {
                // line 8: downsample to the decayed weight
                downsample_with(&mut self.latent, self.total_weight, rng, cheap);
            } else if self.total_weight == 0.0 {
                self.latent.clear();
            }
            // line 9-10: accept all arriving items as full
            self.latent.push_full(batch.drain(..));
            self.total_weight += batch_size as f64;
            if self.total_weight > n {
                // line 12: overshoot — downsample to n; now saturated.
                downsample_with(&mut self.latent, n, rng, cheap);
            }
        } else {
            // ——— Previously saturated: C = n, no partial item. ———
            let new_weight = self.total_weight * decay + batch_size as f64; // line 14
            if new_weight >= n {
                if cheap && batch_size <= self.capacity && self.latent.frac() == 0.0 {
                    // Jump path: each batch item is accepted independently
                    // w.p. p = n/W, so draw the accept *count* exactly as
                    // M ~ Binomial(|B|, p) and exchange a random donor
                    // window against a random victim window — three RNG
                    // draws and a couple of `memcpy`-grade segment swaps
                    // for the whole batch. Guarded on |B| ≤ n so M can
                    // never exceed the victim pool (when it could, the
                    // per-item path below handles the batch instead).
                    let p = (n / new_weight).min(1.0);
                    let m = self.binom.draw(rng, batch_size as u64, p) as usize;
                    if m > 0 {
                        let c = uniform_index(rng, self.latent.full_items().len());
                        let r = uniform_index(rng, batch_size);
                        self.latent.replace_window_from(batch, m, c, r);
                    }
                } else {
                    // Per-item path: accept each batch item w.p. n/W via a
                    // single stochastically rounded count (lines 16-17),
                    // then swap the accepted items over uniformly chosen
                    // victims in place — no intermediate vectors. The
                    // evicted victims are swapped back into `batch`, whose
                    // leftover contents the caller discards.
                    let m_exact = batch_size as f64 * n / new_weight;
                    let m = (stochastic_round(rng, m_exact) as usize)
                        .min(batch_size)
                        .min(self.capacity);
                    self.latent.replace_random_full_from(batch, m, rng);
                }
            } else {
                // Undershoot: shrink the old sample to the decayed weight
                // W' = W_new − |B_t|, then accept the batch as full items
                // (lines 19-20); now unsaturated with C = W again.
                let decayed_old = new_weight - batch_size as f64;
                downsample_with(&mut self.latent, decayed_old, rng, cheap);
                self.latent.push_full(batch.drain(..));
            }
            self.total_weight = new_weight;
        }
        self.steps += 1;
        debug_assert!(self.latent.check_invariants().is_ok());
        debug_assert!(self.latent.weight() <= n + 1e-9);
    }

    /// Decompose into the merge-relevant parts `(λ, n, W, steps, latent)` —
    /// consumed by [`crate::merge`]'s shard-union algebra.
    pub(crate) fn into_merge_parts(self) -> (f64, usize, f64, u64, LatentSample<T>) {
        (
            self.decay.lambda(),
            self.capacity,
            self.total_weight,
            self.steps,
            self.latent,
        )
    }

    /// Reassemble a sampler from merged parts. The caller (the shard-merge
    /// algebra) must supply a latent sample whose weight equals
    /// `min(capacity, total_weight)` up to rounding.
    pub(crate) fn from_merge_parts(
        lambda: f64,
        capacity: usize,
        total_weight: f64,
        steps: u64,
        latent: LatentSample<T>,
    ) -> Self {
        let s = Self {
            latent,
            total_weight,
            decay: DecayCache::new(lambda),
            capacity,
            steps,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
        };
        debug_assert!(s.latent.check_invariants().is_ok());
        s
    }
}

impl<T: Wire> RTbs<T> {
    /// Serialize the complete sampler state — configuration, weights, the
    /// latent sample — into `w`. [`Self::load_state`] rebuilds a sampler
    /// that continues the stream **bit-identically** to an uninterrupted
    /// run (given the caller also persists its RNG position).
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.decay.lambda());
        w.put_u64(self.capacity as u64);
        w.put_f64(self.total_weight);
        w.put_u64(self.steps);
        w.put_f64(self.latent.weight());
        w.put_items(self.latent.full_items().iter());
        match self.latent.partial_item() {
            Some(p) => {
                w.put_u8(1);
                w.put_item(p);
            }
            None => w.put_u8(0),
        }
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "R-TBS lambda")?;
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("R-TBS capacity"));
        }
        let total_weight = check_non_negative(r.get_f64()?, "R-TBS total weight")?;
        let steps = r.get_u64()?;
        let weight = check_non_negative(r.get_f64()?, "R-TBS sample weight")?;
        if weight > capacity as f64 + 1e-6 {
            return Err(CheckpointError::Corrupt("R-TBS sample weight > capacity"));
        }
        let full = r.get_items()?;
        let partial = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_item()?),
            _ => return Err(CheckpointError::Corrupt("R-TBS partial tag")),
        };
        let latent = LatentSample::try_from_raw_parts(full, partial, weight)
            .map_err(|_| CheckpointError::Corrupt("R-TBS latent sample"))?;
        Ok(Self {
            latent,
            total_weight,
            decay: DecayCache::new(lambda),
            capacity,
            steps,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
        })
    }
}

impl<T: Clone> RTbs<T> {
    /// Realize the current sample `S_t` — the monomorphized fast path.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<T> {
        self.latent.realize(rng)
    }

    /// Realize `S_t` into a caller-owned buffer; allocation-free once the
    /// buffer capacity covers the sample footprint.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<T>) {
        self.latent.realize_into(rng, out);
    }
}

adapt_batch_sampler!(RTbs);
adapt_timed_batch_sampler!(RTbs);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn feed_constant(s: &mut RTbs<u64>, batches: u64, b: u64, rng: &mut Xoshiro256PlusPlus) {
        for t in 0..batches {
            s.observe((0..b).map(|i| t * b + i).collect(), rng);
        }
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = RTbs::new(0.05, 100);
        for t in 0..200u64 {
            // Erratic batch sizes, including empty and huge.
            let b = [0u64, 1, 250, 7, 90, 1000][t as usize % 6];
            s.observe((0..b).collect(), &mut rng);
            let sample = s.sample(&mut rng);
            assert!(sample.len() <= 100, "overflow at t={t}: {}", sample.len());
            assert!(s.sample_weight() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn saturated_with_fast_stream_holds_exactly_n() {
        // Fig 1(b): constant b=100, λ=0.1 → W* = 100/(1−e^{-0.1}) ≈ 1051 > n
        // for n = 1000, so after fill-up the sample is pinned at n.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut s = RTbs::new(0.1, 1000);
        feed_constant(&mut s, 100, 100, &mut rng);
        for t in 0..100u64 {
            s.observe((0..100).map(|i| t * 100 + i).collect(), &mut rng);
            assert!(s.is_saturated());
            assert_eq!(s.sample(&mut rng).len(), 1000);
        }
    }

    #[test]
    fn unsaturated_equilibrium_matches_paper_1479() {
        // §6.3: n=1600, b=100, λ=0.07 → reservoir never fills, stabilizing
        // at b/(1−e^{-λ}) ≈ 1479 items.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s = RTbs::new(0.07, 1600);
        feed_constant(&mut s, 400, 100, &mut rng);
        assert!(!s.is_saturated());
        let c = s.sample_weight();
        assert!(
            (c - 1479.0).abs() < 2.0,
            "equilibrium sample weight {c}, expected ≈1479"
        );
    }

    #[test]
    fn total_weight_recursion_is_exact() {
        // W_t = e^{-λ} W_{t-1} + |B_t| regardless of saturation state.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let lambda = 0.3;
        let mut s = RTbs::new(lambda, 50);
        let mut w = 0.0f64;
        for t in 0..100u64 {
            let b = [30u64, 0, 120, 5][t as usize % 4];
            w = w * (-lambda).exp() + b as f64;
            s.observe((0..b).collect(), &mut rng);
            assert!(
                (s.total_weight() - w).abs() < 1e-6 * w.max(1.0),
                "t={t}: tracked {} vs exact {w}",
                s.total_weight()
            );
        }
    }

    #[test]
    fn inclusion_probability_matches_theorem_4_2() {
        // Monte-Carlo check of Pr[i ∈ S_t] = (C_t/W_t)·w_t(i) on a stream
        // that exercises unsaturated → saturated → unsaturated transitions.
        let lambda = 0.4f64;
        let n = 6usize;
        let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3];
        let trials = 120_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);

        // Count appearances keyed by (batch index, item) — all items of one
        // batch are exchangeable, so aggregate per batch.
        let mut appear: Vec<u64> = vec![0; schedule.len()];
        let mut w_final = 0.0;
        let mut c_final = 0.0;
        for _ in 0..trials {
            let mut s: RTbs<(usize, u64)> = RTbs::new(lambda, n);
            for (bi, &b) in schedule.iter().enumerate() {
                s.observe((0..b).map(|i| (bi, i)).collect(), &mut rng);
            }
            w_final = s.total_weight();
            c_final = s.sample_weight();
            for (bi, _) in s.sample(&mut rng) {
                appear[bi] += 1;
            }
        }
        let t_final = schedule.len() as f64 - 1.0;
        for (bi, &b) in schedule.iter().enumerate() {
            if b == 0 {
                continue;
            }
            // w_t(i) for an item of batch bi (arrival time bi, 0-indexed).
            let age = t_final - bi as f64;
            let w_item = (-lambda * age).exp();
            let expect = (c_final / w_final) * w_item;
            let phat = appear[bi] as f64 / (trials as f64 * b as f64);
            let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.003;
            assert!(
                (phat - expect).abs() < tol,
                "batch {bi}: phat {phat} vs expect {expect}"
            );
        }
    }

    #[test]
    fn relative_inclusion_property_eq_1() {
        // Items two batches apart must appear with probability ratio e^{-2λ}.
        let lambda = 0.35f64;
        let trials = 100_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut old_hits = 0u64;
        let mut new_hits = 0u64;
        for _ in 0..trials {
            let mut s: RTbs<u8> = RTbs::new(lambda, 4);
            s.observe(vec![1, 1], &mut rng); // t=1 items tagged 1
            s.observe(vec![2, 2], &mut rng); // t=2
            s.observe(vec![3, 3], &mut rng); // t=3
            for item in s.sample(&mut rng) {
                match item {
                    1 => old_hits += 1,
                    3 => new_hits += 1,
                    _ => {}
                }
            }
        }
        let ratio = old_hits as f64 / new_hits as f64;
        let expect = (-2.0 * lambda).exp();
        assert!(
            (ratio - expect).abs() < 0.02,
            "ratio {ratio} vs e^(-2λ) {expect}"
        );
    }

    #[test]
    fn empty_stream_decays_weight_to_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut s = RTbs::with_initial(1.0, 10, (0..10u64).collect());
        for _ in 0..50 {
            s.observe(vec![], &mut rng);
        }
        assert!(s.total_weight() < 1e-6);
        assert!(s.sample(&mut rng).len() <= 1);
    }

    #[test]
    fn zero_decay_behaves_like_uniform_reservoir_size() {
        // λ = 0: weight equals item count; sample size = min(n, count).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut s = RTbs::new(0.0, 25);
        feed_constant(&mut s, 10, 10, &mut rng);
        assert_eq!(s.total_weight(), 100.0);
        assert_eq!(s.sample(&mut rng).len(), 25);
    }

    #[test]
    fn real_valued_gaps_decay_correctly() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let lambda = 0.5;
        let mut s = RTbs::new(lambda, 100);
        s.observe_after(vec![0u8; 10], 1.0, &mut rng);
        s.observe_after(vec![], 2.5, &mut rng);
        let expect = 10.0 * (-lambda * 2.5f64).exp();
        assert!((s.total_weight() - expect).abs() < 1e-9);
    }

    #[test]
    fn single_giant_batch_saturates_immediately() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut s = RTbs::new(0.1, 10);
        s.observe((0..1000u64).collect(), &mut rng);
        assert!(s.is_saturated());
        assert_eq!(s.sample(&mut rng).len(), 10);
        assert_eq!(s.total_weight(), 1000.0);
    }

    #[test]
    fn saturation_boundary_exact_n() {
        // Arrivals summing exactly to n: saturated with full integral sample.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut s = RTbs::new(0.0, 20);
        s.observe((0..20u64).collect(), &mut rng);
        assert!(s.is_saturated());
        assert_eq!(s.sample(&mut rng).len(), 20);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        RTbs::<u8>::new(0.1, 0);
    }

    #[test]
    fn trait_metadata() {
        let s = RTbs::<u8>::new(0.07, 11);
        assert_eq!(s.name(), "R-TBS");
        assert_eq!(s.max_size(), Some(11));
        assert_eq!(s.decay_rate(), 0.07);
    }
}
