//! R-TBS — reservoir-based time-biased sampling (§4, Algorithm 2).
//!
//! The paper's headline contribution: the first sampling scheme that
//! simultaneously
//!
//! 1. enforces the exponential relative-inclusion property (1) **at all
//!    times** — `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` for every item (Thm 4.2);
//! 2. guarantees the hard bound `|S_t| ≤ n`;
//! 3. handles **unknown, arbitrarily varying** arrival rates, including
//!    real-valued inter-arrival gaps.
//!
//! Among all decay-correct schemes it *maximizes* the expected sample size
//! whenever the total weight is below `n` (Thm 4.3) and *minimizes*
//! sample-size variance (Thm 4.4, via stochastic rounding).
//!
//! The state is a latent fractional sample (see [`crate::latent`]) plus the
//! total weight `W_t = Σ_j |B_j|·e^{−λ(t−j)}`; the sample weight is always
//! `C_t = min(n, W_t)`. Four transitions arise per batch, depending on
//! whether the reservoir is *saturated* (`W ≥ n`) before and after.

use crate::checkpoint::{check_non_negative, CheckpointError, Reader, Wire, Writer};
use crate::downsample::downsample_with;
use crate::jumps::IngestMode;
use crate::latent::LatentSample;
use crate::traits::{adapt_batch_sampler, adapt_timed_batch_sampler, check_gap};
use crate::util::{uniform_index, DecayCache};
use rand::Rng;
use tbs_stats::binomial::CachedBinomial;
use tbs_stats::rounding::stochastic_round;

/// Reservoir-based time-biased sampler with decay rate λ and capacity `n`.
///
/// # Performance
///
/// The inherent `observe`/`observe_after`/`sample` methods are generic
/// over the RNG — call them with a concrete generator (e.g.
/// `Xoshiro256PlusPlus`) and the whole per-batch transition is
/// monomorphized with the RNG inlined into the inner loops. Steady-state
/// ingest performs **zero heap allocations** beyond the caller-provided
/// batch: victims are overwritten by in-place swaps, the unit-gap decay
/// factor is memoized, and the latent sample's buffers persist at their
/// high-water capacity. The [`crate::traits::BatchSampler`] impl is a thin
/// `dyn`-RNG adapter over the same methods for heterogeneous harnesses.
#[derive(Debug, Clone)]
pub struct RTbs<T> {
    latent: LatentSample<T>,
    /// Total decayed weight `W_t` of all items seen so far.
    total_weight: f64,
    decay: DecayCache,
    capacity: usize,
    steps: u64,
    mode: IngestMode,
    /// Memoized BINV setup for the jump path's per-batch accept-count
    /// draw; pure acceleration state (never persisted, draw-for-draw
    /// identical to the one-shot sampler).
    binom: CachedBinomial,
    /// Deferred-downsample drift threshold θ ∈ (0, 1]. At 1.0 (the
    /// default) every unsaturated step physically downsamples, exactly as
    /// Algorithm 2 writes it. Below 1.0 the unsaturated transition instead
    /// accumulates the decay factor into [`Self::pending_scale`] (one
    /// multiply per batch) and parks arrivals in [`Self::pending`]; the
    /// physical sweep runs only when the accumulated scale drifts below θ
    /// or a merge/realize/saturation forces materialization. Theorem 4.1's
    /// uniform scaling composes multiplicatively, so the deferred sweep
    /// realizes exactly the same inclusion probabilities (see
    /// [`Self::materialize_deferred`]).
    defer_threshold: f64,
    /// Accumulated lazy decay scale `P = Π e^{−λ·gap}` since the last
    /// materialization; 1.0 when nothing is deferred.
    pending_scale: f64,
    /// Arrival segments deferred since the last materialization:
    /// `(item count, P at arrival)` in arrival order. An item that arrived
    /// when the scale was `P_j` must, at materialization scale `P`, be
    /// included with probability `P/P_j` — the product of every per-step
    /// decay factor since its arrival.
    segments: Vec<(usize, f64)>,
    /// The deferred arrivals themselves, concatenated in segment order.
    pending: Vec<T>,
    /// Scratch latent sample for the per-segment downsample during
    /// materialization; retained so the fold allocates nothing at its
    /// high-water footprint.
    scratch: LatentSample<T>,
}

impl<T> RTbs<T> {
    /// Create an empty R-TBS sampler.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative/non-finite or `capacity` is zero.
    pub fn new(lambda: f64, capacity: usize) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "decay rate must be finite and non-negative, got {lambda}"
        );
        assert!(capacity > 0, "capacity must be positive");
        Self {
            latent: LatentSample::empty(),
            total_weight: 0.0,
            decay: DecayCache::new(lambda),
            capacity,
            steps: 0,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
            defer_threshold: 1.0,
            pending_scale: 1.0,
            segments: Vec::new(),
            pending: Vec::new(),
            scratch: LatentSample::empty(),
        }
    }

    /// The active [`IngestMode`].
    pub fn ingest_mode(&self) -> IngestMode {
        self.mode
    }

    /// Switch between per-item and jump-ahead ingest. The mode is a
    /// *strategy*, not sampler identity: it may be flipped at any batch
    /// boundary (including after a checkpoint restore) and both modes
    /// realize the same Theorem 4.2 inclusion probabilities — they just
    /// spend the RNG stream differently. Not persisted by
    /// [`Self::save_state`]; restore paths re-apply the caller's config.
    pub fn set_ingest_mode(&mut self, mode: IngestMode) {
        self.mode = mode;
    }

    /// Create a sampler pre-loaded with an initial sample `A₀`
    /// (`|A₀| ≤ n` required); its items carry weight 1 each.
    pub fn with_initial(lambda: f64, capacity: usize, initial: Vec<T>) -> Self {
        assert!(initial.len() <= capacity, "initial sample exceeds capacity");
        let mut s = Self::new(lambda, capacity);
        s.total_weight = initial.len() as f64;
        s.latent = LatentSample::from_full(initial);
        s
    }

    /// Total decayed weight `W_t`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The deferred-downsample drift threshold θ (see
    /// [`Self::set_defer_threshold`]); 1.0 means eager downsampling.
    pub fn defer_threshold(&self) -> f64 {
        self.defer_threshold
    }

    /// Enable batch-granular (deferred) downsampling with drift threshold
    /// `theta ∈ (0, 1]`. At 1.0 (the default) the sampler runs Algorithm 2
    /// eagerly; below 1.0 unsaturated steps accumulate the decay factor as
    /// a lazy scalar and the physical downsample sweep is deferred until
    /// the scale drifts below θ (or a merge/realize/saturation forces it),
    /// turning the per-batch `O(n_k)` bookkeeping into `O(1)` amortized.
    /// The realized inclusion probabilities are exactly those of the eager
    /// path (Theorem 4.1 scaling composes multiplicatively); only the RNG
    /// spend schedule differs. For `theta > e^{−λ}` materialization fires
    /// every step and the run is bit-identical to the eager path.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `(0, 1]`, or if a deferral is already
    /// pending (the threshold is configuration, set before ingest).
    pub fn set_defer_threshold(&mut self, theta: f64) {
        assert!(
            theta.is_finite() && theta > 0.0 && theta <= 1.0,
            "defer threshold must lie in (0, 1], got {theta}"
        );
        assert!(
            !self.has_deferred(),
            "cannot change the defer threshold mid-deferral"
        );
        self.defer_threshold = theta;
    }

    /// Whether a deferred downsample is pending (the latent sample lags
    /// the true weight by the accumulated scale `P < 1`).
    pub fn has_deferred(&self) -> bool {
        self.pending_scale < 1.0
    }

    /// Sample weight `C_t = min(n, W_t)` — the expected realized size.
    pub fn sample_weight(&self) -> f64 {
        if self.has_deferred() {
            // Deferral only happens while unsaturated, where C = W; the
            // physical latent weight is stale until materialization.
            self.total_weight.min(self.capacity as f64)
        } else {
            self.latent.weight()
        }
    }

    /// Whether the reservoir is saturated (`W_t ≥ n`, so `|S_t| = n`).
    pub fn is_saturated(&self) -> bool {
        self.total_weight >= self.capacity as f64
    }

    /// Access the underlying latent sample (full items + optional partial).
    ///
    /// While a deferral is pending ([`Self::has_deferred`]) this is the
    /// *stale* physical state — its weight lags `C_t` by the accumulated
    /// scale and the deferred arrivals are not yet folded in. Realization
    /// and merging materialize first; use [`Self::sample_weight`] for the
    /// true `C_t`.
    pub fn latent(&self) -> &LatentSample<T> {
        &self.latent
    }

    /// Mutable access for the shard-merge algebra, which downsamples a
    /// shard's latent state to its merged target weight.
    pub(crate) fn latent_mut(&mut self) -> &mut LatentSample<T> {
        &mut self.latent
    }

    /// The capacity bound `n`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advance the clock by one time unit and absorb the arriving batch —
    /// the monomorphized fast path (see the type-level docs).
    #[inline]
    pub fn observe<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, rng: &mut R) {
        let decay = self.decay.unit();
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// [`Self::observe`] from a caller-owned buffer: the batch items are
    /// drained out of `batch` (accepted ones move into the sample; rejected
    /// ones and any evicted victims are left behind for the caller to
    /// `clear`), and the buffer's allocation survives the call. This is the
    /// ingest entry point for pipelines that recycle batch buffers — e.g.
    /// the sharded parallel engine in `tbs-distributed` — where dropping a
    /// `Vec` per batch would force a fresh allocation per batch upstream.
    ///
    /// Statistically and RNG-stream-wise identical to [`Self::observe`].
    #[inline]
    pub fn observe_drain<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, rng: &mut R) {
        let decay = self.decay.unit();
        self.step_with_decay(batch, decay, rng);
    }

    /// Absorb a batch arriving `gap` time units after the previous one.
    /// Repeated gaps reuse the memoized decay factor instead of calling
    /// `exp`.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is negative or non-finite.
    pub fn observe_after<R: Rng + ?Sized>(&mut self, mut batch: Vec<T>, gap: f64, rng: &mut R) {
        check_gap(gap);
        let decay = self.decay.factor(gap);
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// Advance one step with an explicit per-step decay factor in `(0, 1]`.
    ///
    /// This is the arbitrary-decay extension point the paper's §8 points
    /// toward: any decay law whose *relative* item weights shrink by a
    /// common per-step factor (e.g. forward decay with a monotone gauge
    /// `g`, see [`crate::forward`]) reduces to R-TBS with time-varying
    /// factors. The invariant `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` is
    /// maintained for the induced weights.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    pub fn observe_with_decay<R: Rng + ?Sized>(
        &mut self,
        mut batch: Vec<T>,
        decay: f64,
        rng: &mut R,
    ) {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "per-step decay factor must lie in (0, 1], got {decay}"
        );
        self.step_with_decay(&mut batch, decay, rng);
    }

    /// Expected size of `S_t` — the sample weight `C_t`.
    pub fn expected_size(&self) -> f64 {
        self.sample_weight()
    }

    /// Hard upper bound on the sample size: `Some(n)`.
    pub fn max_size(&self) -> Option<usize> {
        Some(self.capacity)
    }

    /// Exponential decay rate λ.
    pub fn decay_rate(&self) -> f64 {
        self.decay.lambda()
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.steps
    }

    /// Short identifier used in experiment output.
    pub fn name(&self) -> &'static str {
        "R-TBS"
    }

    /// One batch transition. Items are *drained* out of `batch` (its
    /// allocation is never dropped here), so both the owned `observe` entry
    /// points and the buffer-recycling `observe_drain` share this body.
    fn step_with_decay<R: Rng + ?Sized>(&mut self, batch: &mut Vec<T>, decay: f64, rng: &mut R) {
        let n = self.capacity as f64;
        let batch_size = batch.len();

        // Jump mode spends randomness per batch instead of per item; the
        // retention sweeps inside `downsample` switch to complement-side
        // draws, and the saturated→saturated transition below replaces the
        // per-victim Fisher–Yates loop with a binomial count plus windowed
        // segment swaps (see `crate::jumps` for the equivalence argument).
        let cheap = self.mode == IngestMode::Jump;

        if self.total_weight < n {
            // ——— Previously unsaturated: C = W. ———
            if self.defer_threshold < 1.0 {
                self.step_unsaturated_deferred(batch, batch_size, decay, n, cheap, rng);
            } else {
                self.total_weight *= decay; // line 6: decay current items
                if self.total_weight > 0.0 && !self.latent.is_empty() {
                    // line 8: downsample to the decayed weight
                    downsample_with(&mut self.latent, self.total_weight, rng, cheap);
                } else if self.total_weight == 0.0 {
                    self.latent.clear();
                }
                // line 9-10: accept all arriving items as full
                self.latent.push_full(batch.drain(..));
                self.total_weight += batch_size as f64;
                if self.total_weight > n {
                    // line 12: overshoot — downsample to n; now saturated.
                    downsample_with(&mut self.latent, n, rng, cheap);
                }
            }
        } else {
            // ——— Previously saturated: C = n, no partial item. ———
            let new_weight = self.total_weight * decay + batch_size as f64; // line 14
            if new_weight >= n {
                if cheap && batch_size <= self.capacity && self.latent.frac() == 0.0 {
                    // Jump path: each batch item is accepted independently
                    // w.p. p = n/W, so draw the accept *count* exactly as
                    // M ~ Binomial(|B|, p) and exchange a random donor
                    // window against a random victim window — three RNG
                    // draws and a couple of `memcpy`-grade segment swaps
                    // for the whole batch. Guarded on |B| ≤ n so M can
                    // never exceed the victim pool (when it could, the
                    // per-item path below handles the batch instead).
                    let p = (n / new_weight).min(1.0);
                    let m = self.binom.draw(rng, batch_size as u64, p) as usize;
                    if m > 0 {
                        let c = uniform_index(rng, self.latent.full_items().len());
                        let r = uniform_index(rng, batch_size);
                        self.latent.replace_window_from(batch, m, c, r);
                    }
                } else {
                    // Per-item path: accept each batch item w.p. n/W via a
                    // single stochastically rounded count (lines 16-17),
                    // then swap the accepted items over uniformly chosen
                    // victims in place — no intermediate vectors. The
                    // evicted victims are swapped back into `batch`, whose
                    // leftover contents the caller discards.
                    let m_exact = batch_size as f64 * n / new_weight;
                    let m = (stochastic_round(rng, m_exact) as usize)
                        .min(batch_size)
                        .min(self.capacity);
                    self.latent.replace_random_full_from(batch, m, rng);
                }
            } else {
                // Undershoot: shrink the old sample to the decayed weight
                // W' = W_new − |B_t|, then accept the batch as full items
                // (lines 19-20); now unsaturated with C = W again.
                let decayed_old = new_weight - batch_size as f64;
                downsample_with(&mut self.latent, decayed_old, rng, cheap);
                self.latent.push_full(batch.drain(..));
            }
            self.total_weight = new_weight;
        }
        self.steps += 1;
        debug_assert!(self.latent.check_invariants().is_ok());
        debug_assert!(self.latent.weight() <= n + 1e-9);
    }

    /// The unsaturated transition with batch-granular downsampling
    /// (`defer_threshold < 1`). Instead of physically downsampling every
    /// step (lines 6–8 of Algorithm 2), the decay factor accumulates into
    /// the lazy scale `P` and arrivals park in [`Self::pending`] stamped
    /// with the scale at arrival. The physical sweep runs when `P` drifts
    /// below θ, when the pending buffer exceeds its high-water bound, or
    /// when saturation forces it.
    ///
    /// **Exactness (Theorem 4.1).** Downsampling scales every item's
    /// inclusion probability by the same factor, so consecutive
    /// downsamples compose multiplicatively: an item resident since scale
    /// `P_j` owes a total factor `P/P_j` at materialization scale `P` —
    /// exactly the product of the per-step factors the eager path would
    /// have applied. The weight recursion `W_t = d·W_{t−1} + |B_t|` is
    /// maintained eagerly either way, so `C = W` stays bit-identical to
    /// the eager path and the overshoot/saturation boundary fires on the
    /// same step.
    fn step_unsaturated_deferred<R: Rng + ?Sized>(
        &mut self,
        batch: &mut Vec<T>,
        batch_size: usize,
        decay: f64,
        n: f64,
        cheap: bool,
        rng: &mut R,
    ) {
        self.total_weight *= decay;
        self.pending_scale *= decay;
        if self.total_weight == 0.0 {
            self.latent.clear();
            self.pending.clear();
            self.segments.clear();
            self.pending_scale = 1.0;
        } else if self.pending_scale < self.defer_threshold
            || self.pending.len() >= self.capacity.saturating_mul(4)
        {
            self.materialize_deferred(rng);
        }
        if self.pending_scale < 1.0 {
            // Park the arrivals; they are certain acceptances (C = W), so
            // only their count and arrival scale matter until the sweep.
            if batch_size > 0 {
                self.segments.push((batch_size, self.pending_scale));
                self.pending.append(batch);
            }
        } else {
            self.latent.push_full(batch.drain(..));
        }
        self.total_weight += batch_size as f64;
        if self.total_weight > n {
            // Overshoot — materialize (the current batch folds in at
            // scale 1, spending no randomness, exactly like the eager
            // accept) and downsample to n; now saturated.
            self.materialize_deferred(rng);
            // The materialized weight equals the eagerly tracked W up to
            // float ulps; clamp so the target never exceeds the physical C.
            let target = n.min(self.latent.weight());
            downsample_with(&mut self.latent, target, rng, cheap);
        }
    }

    /// Run the deferred physical downsample: bring the resident latent
    /// sample to scale, then fold every pending arrival segment in at its
    /// composed scale `P/P_j` (a segment-local downsample + the §4.1
    /// stochastic-rounding union, [`LatentSample::absorb`]). Consumes no
    /// randomness when nothing is deferred; resets `P` to 1. The pending
    /// buffers keep their allocations for reuse.
    pub(crate) fn materialize_deferred<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.pending_scale >= 1.0 {
            return;
        }
        let cheap = self.mode == IngestMode::Jump;
        if !self.latent.is_empty() {
            let target = self.pending_scale * self.latent.weight();
            if target > 0.0 {
                downsample_with(&mut self.latent, target, rng, cheap);
            } else {
                // The scale underflowed (e.g. one enormous gap): the
                // resident items' inclusion probability is ≈ 0.
                self.latent.clear();
            }
        }
        let mut items = self.pending.drain(..);
        for &(count, stamp) in &self.segments {
            let scale = self.pending_scale / stamp;
            if scale >= 1.0 {
                // Arrived at the current scale (the segment pushed this
                // very step): certain acceptance, no randomness — the
                // eager path's line 9-10.
                self.latent.push_full(items.by_ref().take(count));
            } else {
                let seg_target = scale * count as f64;
                if seg_target > 0.0 {
                    self.scratch.clear();
                    self.scratch.push_full(items.by_ref().take(count));
                    downsample_with(&mut self.scratch, seg_target, rng, cheap);
                    self.latent.absorb(&mut self.scratch, rng);
                } else {
                    items.by_ref().take(count).for_each(drop);
                }
            }
        }
        debug_assert!(items.next().is_none(), "segment counts cover pending");
        drop(items);
        self.segments.clear();
        self.pending_scale = 1.0;
        debug_assert!(self.latent.check_invariants().is_ok());
    }

    /// Decompose into the merge-relevant parts `(λ, n, W, steps, latent)` —
    /// consumed by [`crate::merge`]'s shard-union algebra. The caller must
    /// have materialized any deferred downsample first (the merge's leaf
    /// step does).
    pub(crate) fn into_merge_parts(self) -> (f64, usize, f64, u64, LatentSample<T>) {
        debug_assert!(!self.has_deferred(), "merge parts require materialization");
        (
            self.decay.lambda(),
            self.capacity,
            self.total_weight,
            self.steps,
            self.latent,
        )
    }

    /// Reassemble a sampler from merged parts. The caller (the shard-merge
    /// algebra) must supply a latent sample whose weight equals
    /// `min(capacity, total_weight)` up to rounding.
    pub(crate) fn from_merge_parts(
        lambda: f64,
        capacity: usize,
        total_weight: f64,
        steps: u64,
        latent: LatentSample<T>,
    ) -> Self {
        let s = Self {
            latent,
            total_weight,
            decay: DecayCache::new(lambda),
            capacity,
            steps,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
            defer_threshold: 1.0,
            pending_scale: 1.0,
            segments: Vec::new(),
            pending: Vec::new(),
            scratch: LatentSample::empty(),
        };
        debug_assert!(s.latent.check_invariants().is_ok());
        s
    }
}

impl<T: Wire> RTbs<T> {
    /// Serialize the complete sampler state — configuration, weights, the
    /// latent sample — into `w`. [`Self::load_state`] rebuilds a sampler
    /// that continues the stream **bit-identically** to an uninterrupted
    /// run (given the caller also persists its RNG position).
    pub fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.decay.lambda());
        w.put_u64(self.capacity as u64);
        w.put_f64(self.total_weight);
        w.put_u64(self.steps);
        w.put_f64(self.latent.weight());
        w.put_items(self.latent.full_items().iter());
        match self.latent.partial_item() {
            Some(p) => {
                w.put_u8(1);
                w.put_item(p);
            }
            None => w.put_u8(0),
        }
        // Batch-granular downsampling state (format v4). A mid-deferral
        // snapshot persists the lazy scale and the parked segments
        // *verbatim* — materializing here would consume randomness and
        // break the bit-identical-resume contract.
        w.put_f64(self.defer_threshold);
        w.put_f64(self.pending_scale);
        w.put_u64(self.segments.len() as u64);
        for &(count, stamp) in &self.segments {
            w.put_u64(count as u64);
            w.put_f64(stamp);
        }
        w.put_items(self.pending.iter());
    }

    /// Rebuild a sampler from a [`Self::save_state`] payload, validating
    /// every field (no panics on corrupt input).
    pub fn load_state(r: &mut Reader) -> Result<Self, CheckpointError> {
        let lambda = check_non_negative(r.get_f64()?, "R-TBS lambda")?;
        let capacity = r.get_u64()? as usize;
        if capacity == 0 {
            return Err(CheckpointError::Corrupt("R-TBS capacity"));
        }
        let total_weight = check_non_negative(r.get_f64()?, "R-TBS total weight")?;
        let steps = r.get_u64()?;
        let weight = check_non_negative(r.get_f64()?, "R-TBS sample weight")?;
        if weight > capacity as f64 + 1e-6 {
            return Err(CheckpointError::Corrupt("R-TBS sample weight > capacity"));
        }
        let full = r.get_items()?;
        let partial = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_item()?),
            _ => return Err(CheckpointError::Corrupt("R-TBS partial tag")),
        };
        let latent = LatentSample::try_from_raw_parts(full, partial, weight)
            .map_err(|_| CheckpointError::Corrupt("R-TBS latent sample"))?;
        let defer_threshold = r.get_f64()?;
        if !defer_threshold.is_finite() || defer_threshold <= 0.0 || defer_threshold > 1.0 {
            return Err(CheckpointError::Corrupt("R-TBS defer threshold"));
        }
        let pending_scale = r.get_f64()?;
        // The step invariant keeps P in [θ, 1]: P only leaves 1 by decay
        // multiplication and materializes back to 1 the moment it drifts
        // below θ. Anything else (NaN, > 1, below θ, ≤ 0) is corruption.
        if !pending_scale.is_finite() || pending_scale > 1.0 || pending_scale < defer_threshold {
            return Err(CheckpointError::Corrupt("R-TBS lazy scale"));
        }
        let seg_count = r.get_u64()? as usize;
        r.check_count(seg_count, 16)?;
        let mut segments = Vec::with_capacity(seg_count);
        let mut total_pending = 0usize;
        let mut prev_stamp = 1.0f64;
        for _ in 0..seg_count {
            let count = r.get_u64()? as usize;
            let stamp = r.get_f64()?;
            // Segments are stamped with P at arrival: positive counts,
            // stamps non-increasing in arrival order, all within
            // [pending_scale, 1].
            if count == 0
                || !stamp.is_finite()
                || stamp > prev_stamp
                || stamp < pending_scale
                || stamp <= 0.0
            {
                return Err(CheckpointError::Corrupt("R-TBS deferred segment"));
            }
            total_pending = total_pending.saturating_add(count);
            prev_stamp = stamp;
            segments.push((count, stamp));
        }
        let pending: Vec<T> = r.get_items()?;
        if pending.len() != total_pending || (pending_scale >= 1.0 && !pending.is_empty()) {
            return Err(CheckpointError::Corrupt("R-TBS deferred arrivals"));
        }
        Ok(Self {
            latent,
            total_weight,
            decay: DecayCache::new(lambda),
            capacity,
            steps,
            mode: IngestMode::PerItem,
            binom: CachedBinomial::new(),
            defer_threshold,
            pending_scale,
            segments,
            pending,
            scratch: LatentSample::empty(),
        })
    }
}

impl<T: Clone> RTbs<T> {
    /// Realize the current sample `S_t` — the monomorphized fast path.
    ///
    /// With batch-granular downsampling enabled a pending deferral is
    /// materialized on a clone first (the live ingest state is never
    /// disturbed by realization), so `S_t` carries exactly the Theorem 4.2
    /// inclusion probabilities at every `t`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<T> {
        if self.has_deferred() {
            let mut snap = self.clone();
            snap.materialize_deferred(rng);
            return snap.latent.realize(rng);
        }
        self.latent.realize(rng)
    }

    /// Realize `S_t` into a caller-owned buffer; allocation-free once the
    /// buffer capacity covers the sample footprint (a pending deferral is
    /// materialized on a clone first, as in [`Self::sample`]).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<T>) {
        if self.has_deferred() {
            let mut snap = self.clone();
            snap.materialize_deferred(rng);
            snap.latent.realize_into(rng, out);
            return;
        }
        self.latent.realize_into(rng, out);
    }
}

adapt_batch_sampler!(RTbs);
adapt_timed_batch_sampler!(RTbs);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn feed_constant(s: &mut RTbs<u64>, batches: u64, b: u64, rng: &mut Xoshiro256PlusPlus) {
        for t in 0..batches {
            s.observe((0..b).map(|i| t * b + i).collect(), rng);
        }
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = RTbs::new(0.05, 100);
        for t in 0..200u64 {
            // Erratic batch sizes, including empty and huge.
            let b = [0u64, 1, 250, 7, 90, 1000][t as usize % 6];
            s.observe((0..b).collect(), &mut rng);
            let sample = s.sample(&mut rng);
            assert!(sample.len() <= 100, "overflow at t={t}: {}", sample.len());
            assert!(s.sample_weight() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn saturated_with_fast_stream_holds_exactly_n() {
        // Fig 1(b): constant b=100, λ=0.1 → W* = 100/(1−e^{-0.1}) ≈ 1051 > n
        // for n = 1000, so after fill-up the sample is pinned at n.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut s = RTbs::new(0.1, 1000);
        feed_constant(&mut s, 100, 100, &mut rng);
        for t in 0..100u64 {
            s.observe((0..100).map(|i| t * 100 + i).collect(), &mut rng);
            assert!(s.is_saturated());
            assert_eq!(s.sample(&mut rng).len(), 1000);
        }
    }

    #[test]
    fn unsaturated_equilibrium_matches_paper_1479() {
        // §6.3: n=1600, b=100, λ=0.07 → reservoir never fills, stabilizing
        // at b/(1−e^{-λ}) ≈ 1479 items.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut s = RTbs::new(0.07, 1600);
        feed_constant(&mut s, 400, 100, &mut rng);
        assert!(!s.is_saturated());
        let c = s.sample_weight();
        assert!(
            (c - 1479.0).abs() < 2.0,
            "equilibrium sample weight {c}, expected ≈1479"
        );
    }

    #[test]
    fn total_weight_recursion_is_exact() {
        // W_t = e^{-λ} W_{t-1} + |B_t| regardless of saturation state.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let lambda = 0.3;
        let mut s = RTbs::new(lambda, 50);
        let mut w = 0.0f64;
        for t in 0..100u64 {
            let b = [30u64, 0, 120, 5][t as usize % 4];
            w = w * (-lambda).exp() + b as f64;
            s.observe((0..b).collect(), &mut rng);
            assert!(
                (s.total_weight() - w).abs() < 1e-6 * w.max(1.0),
                "t={t}: tracked {} vs exact {w}",
                s.total_weight()
            );
        }
    }

    #[test]
    fn inclusion_probability_matches_theorem_4_2() {
        // Monte-Carlo check of Pr[i ∈ S_t] = (C_t/W_t)·w_t(i) on a stream
        // that exercises unsaturated → saturated → unsaturated transitions.
        let lambda = 0.4f64;
        let n = 6usize;
        let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3];
        let trials = 120_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);

        // Count appearances keyed by (batch index, item) — all items of one
        // batch are exchangeable, so aggregate per batch.
        let mut appear: Vec<u64> = vec![0; schedule.len()];
        let mut w_final = 0.0;
        let mut c_final = 0.0;
        for _ in 0..trials {
            let mut s: RTbs<(usize, u64)> = RTbs::new(lambda, n);
            for (bi, &b) in schedule.iter().enumerate() {
                s.observe((0..b).map(|i| (bi, i)).collect(), &mut rng);
            }
            w_final = s.total_weight();
            c_final = s.sample_weight();
            for (bi, _) in s.sample(&mut rng) {
                appear[bi] += 1;
            }
        }
        let t_final = schedule.len() as f64 - 1.0;
        for (bi, &b) in schedule.iter().enumerate() {
            if b == 0 {
                continue;
            }
            // w_t(i) for an item of batch bi (arrival time bi, 0-indexed).
            let age = t_final - bi as f64;
            let w_item = (-lambda * age).exp();
            let expect = (c_final / w_final) * w_item;
            let phat = appear[bi] as f64 / (trials as f64 * b as f64);
            let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.003;
            assert!(
                (phat - expect).abs() < tol,
                "batch {bi}: phat {phat} vs expect {expect}"
            );
        }
    }

    #[test]
    fn relative_inclusion_property_eq_1() {
        // Items two batches apart must appear with probability ratio e^{-2λ}.
        let lambda = 0.35f64;
        let trials = 100_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut old_hits = 0u64;
        let mut new_hits = 0u64;
        for _ in 0..trials {
            let mut s: RTbs<u8> = RTbs::new(lambda, 4);
            s.observe(vec![1, 1], &mut rng); // t=1 items tagged 1
            s.observe(vec![2, 2], &mut rng); // t=2
            s.observe(vec![3, 3], &mut rng); // t=3
            for item in s.sample(&mut rng) {
                match item {
                    1 => old_hits += 1,
                    3 => new_hits += 1,
                    _ => {}
                }
            }
        }
        let ratio = old_hits as f64 / new_hits as f64;
        let expect = (-2.0 * lambda).exp();
        assert!(
            (ratio - expect).abs() < 0.02,
            "ratio {ratio} vs e^(-2λ) {expect}"
        );
    }

    #[test]
    fn empty_stream_decays_weight_to_zero() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut s = RTbs::with_initial(1.0, 10, (0..10u64).collect());
        for _ in 0..50 {
            s.observe(vec![], &mut rng);
        }
        assert!(s.total_weight() < 1e-6);
        assert!(s.sample(&mut rng).len() <= 1);
    }

    #[test]
    fn zero_decay_behaves_like_uniform_reservoir_size() {
        // λ = 0: weight equals item count; sample size = min(n, count).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mut s = RTbs::new(0.0, 25);
        feed_constant(&mut s, 10, 10, &mut rng);
        assert_eq!(s.total_weight(), 100.0);
        assert_eq!(s.sample(&mut rng).len(), 25);
    }

    #[test]
    fn real_valued_gaps_decay_correctly() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let lambda = 0.5;
        let mut s = RTbs::new(lambda, 100);
        s.observe_after(vec![0u8; 10], 1.0, &mut rng);
        s.observe_after(vec![], 2.5, &mut rng);
        let expect = 10.0 * (-lambda * 2.5f64).exp();
        assert!((s.total_weight() - expect).abs() < 1e-9);
    }

    #[test]
    fn single_giant_batch_saturates_immediately() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut s = RTbs::new(0.1, 10);
        s.observe((0..1000u64).collect(), &mut rng);
        assert!(s.is_saturated());
        assert_eq!(s.sample(&mut rng).len(), 10);
        assert_eq!(s.total_weight(), 1000.0);
    }

    #[test]
    fn saturation_boundary_exact_n() {
        // Arrivals summing exactly to n: saturated with full integral sample.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut s = RTbs::new(0.0, 20);
        s.observe((0..20u64).collect(), &mut rng);
        assert!(s.is_saturated());
        assert_eq!(s.sample(&mut rng).len(), 20);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        RTbs::<u8>::new(0.1, 0);
    }

    #[test]
    fn trait_metadata() {
        let s = RTbs::<u8>::new(0.07, 11);
        assert_eq!(s.name(), "R-TBS");
        assert_eq!(s.max_size(), Some(11));
        assert_eq!(s.decay_rate(), 0.07);
    }

    #[test]
    fn deferral_with_high_threshold_is_bit_identical_to_eager() {
        // θ > e^{-λ} forces materialization every unsaturated step, which
        // must replay the eager path draw-for-draw: same RNG consumption,
        // same latent bits, same saturation boundary. This pins the lazy
        // machinery to Algorithm 2 exactly in the degenerate regime.
        let lambda = 0.2f64; // e^{-0.2} ≈ 0.819 < θ = 0.9
        let mut rng_e = Xoshiro256PlusPlus::seed_from_u64(40);
        let mut rng_l = Xoshiro256PlusPlus::seed_from_u64(40);
        let mut eager: RTbs<u64> = RTbs::new(lambda, 64);
        let mut lazy: RTbs<u64> = RTbs::new(lambda, 64);
        lazy.set_defer_threshold(0.9);
        for t in 0..300u64 {
            // Erratic sizes crossing the saturation boundary both ways.
            let b = [9u64, 0, 31, 2, 0, 80, 1, 200][t as usize % 8];
            let items: Vec<u64> = (0..b).map(|i| t * 1000 + i).collect();
            eager.observe(items.clone(), &mut rng_e);
            lazy.observe(items, &mut rng_l);
            assert!(!lazy.has_deferred());
            assert_eq!(
                eager.total_weight().to_bits(),
                lazy.total_weight().to_bits(),
                "weight diverged at t={t}"
            );
            assert_eq!(
                eager.latent().weight().to_bits(),
                lazy.latent().weight().to_bits()
            );
            assert_eq!(
                eager.latent().full_items(),
                lazy.latent().full_items(),
                "full items diverged at t={t}"
            );
            assert_eq!(eager.latent().partial_item(), lazy.latent().partial_item());
        }
    }

    #[test]
    fn deferred_weight_recursion_and_capacity_hold() {
        // Deep deferral must not perturb the exact W recursion or let the
        // realized sample exceed n.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let lambda = 0.3;
        let mut s: RTbs<u64> = RTbs::new(lambda, 50);
        s.set_defer_threshold(1e-9);
        let mut w = 0.0f64;
        for t in 0..200u64 {
            let b = [30u64, 0, 120, 5, 0, 0, 2][t as usize % 7];
            w = w * (-lambda).exp() + b as f64;
            s.observe((0..b).collect(), &mut rng);
            assert!(
                (s.total_weight() - w).abs() < 1e-6 * w.max(1.0),
                "t={t}: tracked {} vs exact {w}",
                s.total_weight()
            );
            assert!(s.sample_weight() <= 50.0 + 1e-9);
            assert!(s.sample(&mut rng).len() <= 50);
        }
    }

    #[test]
    fn deferred_inclusion_probability_matches_theorem_4_2() {
        // The eager Theorem 4.2 Monte-Carlo, re-run with θ small enough
        // that deferral windows span multiple steps and materialization
        // composes scales P/P_j across parked segments (λ=0.4 ⇒ per-step
        // decay 0.67 ≫ θ). Tiny n keeps the unsaturated↔saturated churn.
        let lambda = 0.4f64;
        let n = 6usize;
        let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3];
        let trials = 120_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(43);

        let mut appear: Vec<u64> = vec![0; schedule.len()];
        let mut w_final = 0.0;
        let mut c_final = 0.0;
        for _ in 0..trials {
            let mut s: RTbs<(usize, u64)> = RTbs::new(lambda, n);
            s.set_defer_threshold(0.01);
            for (bi, &b) in schedule.iter().enumerate() {
                s.observe((0..b).map(|i| (bi, i)).collect(), &mut rng);
            }
            w_final = s.total_weight();
            c_final = s.sample_weight();
            for (bi, _) in s.sample(&mut rng) {
                appear[bi] += 1;
            }
        }
        let t_final = schedule.len() as f64 - 1.0;
        for (bi, &b) in schedule.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let age = t_final - bi as f64;
            let w_item = (-lambda * age).exp();
            let expect = (c_final / w_final) * w_item;
            let phat = appear[bi] as f64 / (trials as f64 * b as f64);
            let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.003;
            assert!(
                (phat - expect).abs() < tol,
                "batch {bi}: phat {phat} vs expect {expect}"
            );
        }
    }

    #[test]
    fn deferred_unsaturated_window_matches_exponential_weights() {
        // A purely unsaturated stream inside one long deferral window:
        // C = W throughout, so Pr[i ∈ S] = w_t(i) = e^{-λ·age} exactly.
        let lambda = 0.4f64;
        let schedule: &[u64] = &[3, 2, 0, 1, 2, 0, 1];
        let trials = 60_000usize;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(44);
        let mut appear: Vec<u64> = vec![0; schedule.len()];
        for _ in 0..trials {
            let mut s: RTbs<(usize, u64)> = RTbs::new(lambda, 20);
            s.set_defer_threshold(1e-4);
            for (bi, &b) in schedule.iter().enumerate() {
                s.observe((0..b).map(|i| (bi, i)).collect(), &mut rng);
            }
            assert!(s.has_deferred(), "window must span the whole stream");
            for (bi, _) in s.sample(&mut rng) {
                appear[bi] += 1;
            }
        }
        let t_final = schedule.len() as f64 - 1.0;
        for (bi, &b) in schedule.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let expect = (-lambda * (t_final - bi as f64)).exp();
            let phat = appear[bi] as f64 / (trials as f64 * b as f64);
            let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.003;
            assert!(
                (phat - expect).abs() < tol,
                "batch {bi}: phat {phat} vs expect {expect}"
            );
        }
    }

    #[test]
    fn mid_deferral_checkpoint_resumes_bit_identically() {
        // Snapshot while a downsample is pending, restore, and continue:
        // the restored run must track the uninterrupted one bit-for-bit.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(45);
        let batch = |t: u64| -> Vec<u64> {
            let b = [7u64, 0, 12, 3][t as usize % 4];
            (0..b).map(|i| t * 100 + i).collect()
        };
        let mut s: RTbs<u64> = RTbs::new(0.1, 500);
        s.set_defer_threshold(1e-6);
        for t in 0..10 {
            s.observe(batch(t), &mut rng);
        }
        assert!(s.has_deferred(), "the cut must land mid-deferral");

        let mut w = Writer::new();
        s.save_state(&mut w);
        let mut r = Reader::new(w.finish()).unwrap();
        let mut restored = RTbs::<u64>::load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert!(restored.has_deferred());
        assert_eq!(restored.defer_threshold(), s.defer_threshold());

        let mut rng2 = rng.clone();
        for t in 10..40 {
            s.observe(batch(t), &mut rng);
            restored.observe(batch(t), &mut rng2);
            assert_eq!(
                s.total_weight().to_bits(),
                restored.total_weight().to_bits()
            );
            assert_eq!(s.latent().full_items(), restored.latent().full_items());
            assert_eq!(s.latent().partial_item(), restored.latent().partial_item());
        }
        let mut rc1 = rng.clone();
        let mut rc2 = rng2.clone();
        assert_eq!(s.sample(&mut rc1), restored.sample(&mut rc2));
    }

    fn header_through_empty_latent(w: &mut Writer) {
        w.put_f64(0.1); // lambda
        w.put_u64(8); // capacity
        w.put_f64(4.0); // total weight
        w.put_u64(3); // steps
        w.put_f64(0.0); // latent weight
        w.put_items(std::iter::empty::<&u64>()); // full items
        w.put_u8(0); // no partial
    }

    #[test]
    fn load_state_rejects_impossible_lazy_scale() {
        // P must live in [θ, 1]; a scale above 1 (or below θ) is corrupt.
        let mut w = Writer::new();
        header_through_empty_latent(&mut w);
        w.put_f64(0.5); // θ
        w.put_f64(1.5); // P > 1 — impossible
        w.put_u64(0); // no segments
        w.put_items(std::iter::empty::<&u64>()); // no pending
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(
            RTbs::<u64>::load_state(&mut r).unwrap_err(),
            CheckpointError::Corrupt("R-TBS lazy scale")
        );

        let mut w = Writer::new();
        header_through_empty_latent(&mut w);
        w.put_f64(0.5); // θ
        w.put_f64(0.25); // P < θ — the step invariant forbids this
        w.put_u64(0);
        w.put_items(std::iter::empty::<&u64>());
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(
            RTbs::<u64>::load_state(&mut r).unwrap_err(),
            CheckpointError::Corrupt("R-TBS lazy scale")
        );
    }

    #[test]
    fn load_state_rejects_malformed_deferred_segments() {
        // Segment stamps must be non-increasing within [P, 1].
        let mut w = Writer::new();
        header_through_empty_latent(&mut w);
        w.put_f64(0.5); // θ
        w.put_f64(0.6); // P
        w.put_u64(1);
        w.put_u64(2); // count
        w.put_f64(0.4); // stamp below P — impossible
        w.put_items([1u64, 2].iter());
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(
            RTbs::<u64>::load_state(&mut r).unwrap_err(),
            CheckpointError::Corrupt("R-TBS deferred segment")
        );

        // Segment counts must cover the pending arrivals exactly.
        let mut w = Writer::new();
        header_through_empty_latent(&mut w);
        w.put_f64(0.5);
        w.put_f64(0.6);
        w.put_u64(1);
        w.put_u64(2); // claims two arrivals…
        w.put_f64(0.8);
        w.put_items([1u64].iter()); // …but carries one
        let mut r = Reader::new(w.finish()).unwrap();
        assert_eq!(
            RTbs::<u64>::load_state(&mut r).unwrap_err(),
            CheckpointError::Corrupt("R-TBS deferred arrivals")
        );
    }

    #[test]
    #[should_panic(expected = "cannot change the defer threshold mid-deferral")]
    fn defer_threshold_is_fixed_while_deferred() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(46);
        let mut s: RTbs<u8> = RTbs::new(0.2, 100);
        s.set_defer_threshold(0.001);
        s.observe(vec![1, 2, 3], &mut rng);
        s.observe(vec![4], &mut rng);
        assert!(s.has_deferred());
        s.set_defer_threshold(0.5);
    }
}
