//! Property-based tests of the sampling invariants (proptest).
//!
//! These exercise the algorithms on arbitrary batch schedules, decay rates
//! and capacities, checking the structural guarantees the paper proves:
//! hard size bounds, exact weight bookkeeping, latent-sample invariants,
//! and realization-size support.

use proptest::prelude::*;
use rand::SeedableRng;
use tbs_core::downsample::downsample;
use tbs_core::latent::LatentSample;
use tbs_core::{BChao, BTbs, BatchedReservoir, CountWindow, RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Strategy: a schedule of batch sizes including empty and bursty batches.
fn schedules() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..60, 1..40)
}

fn lambdas() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 0.001f64..2.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtbs_never_exceeds_capacity(
        schedule in schedules(),
        lambda in lambdas(),
        capacity in 1usize..50,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: RTbs<u64> = RTbs::new(lambda, capacity);
        for (t, &b) in schedule.iter().enumerate() {
            s.observe((0..b).map(|i| t as u64 * 1000 + i).collect(), &mut rng);
            let realized = s.sample(&mut rng);
            prop_assert!(realized.len() <= capacity);
            prop_assert!(s.sample_weight() <= capacity as f64 + 1e-9);
            prop_assert!(s.latent().check_invariants().is_ok());
        }
    }

    #[test]
    fn rtbs_weight_recursion_is_exact(
        schedule in schedules(),
        lambda in lambdas(),
        capacity in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: RTbs<u64> = RTbs::new(lambda, capacity);
        let mut w = 0.0f64;
        for &b in &schedule {
            w = w * (-lambda).exp() + b as f64;
            s.observe((0..b).collect(), &mut rng);
            prop_assert!((s.total_weight() - w).abs() <= 1e-6 * w.max(1.0));
            // Sample weight is min(n, W) by construction.
            let expect_c = w.min(capacity as f64);
            prop_assert!((s.sample_weight() - expect_c).abs() <= 1e-6 * expect_c.max(1.0));
        }
    }

    #[test]
    fn rtbs_realization_size_is_floor_or_ceil(
        schedule in schedules(),
        lambda in 0.01f64..1.5,
        capacity in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: RTbs<u64> = RTbs::new(lambda, capacity);
        for &b in &schedule {
            s.observe((0..b).collect(), &mut rng);
            let c = s.sample_weight();
            let len = s.sample(&mut rng).len();
            prop_assert!(
                len == c.floor() as usize || len == c.ceil() as usize,
                "realized {} items from weight {}", len, c
            );
        }
    }

    #[test]
    fn downsample_preserves_invariants_and_footprint(
        full in 1usize..30,
        frac_thousandths in 0u32..1000,
        shrink_pct in 1u32..100,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let frac = frac_thousandths as f64 / 1000.0;
        let mut l = if frac > 0.0 {
            let mut l = LatentSample::from_full((0..=full as u64).collect());
            // Demote one item to partial, weight = full + frac.
            tbs_core::downsample::downsample(&mut l, full as f64 + frac, &mut rng);
            l
        } else {
            LatentSample::from_full((0..full as u64).collect())
        };
        prop_assume!(l.weight() > 0.0);
        let target = l.weight() * shrink_pct as f64 / 100.0;
        prop_assume!(target > 0.0);
        downsample(&mut l, target, &mut rng);
        prop_assert!(l.check_invariants().is_ok(), "{:?}", l.check_invariants());
        prop_assert!(l.footprint() <= target.floor() as usize + 1);
        prop_assert!((l.weight() - target).abs() < 1e-12);
    }

    #[test]
    fn brs_size_is_min_of_capacity_and_seen(
        schedule in schedules(),
        capacity in 1usize..50,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: BatchedReservoir<u64> = BatchedReservoir::new(capacity);
        let mut seen = 0u64;
        for &b in &schedule {
            seen += b;
            s.observe((0..b).collect(), &mut rng);
            prop_assert_eq!(s.len() as u64, seen.min(capacity as u64));
        }
    }

    #[test]
    fn count_window_matches_naive_suffix(
        schedule in schedules(),
        capacity in 1usize..50,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut w: CountWindow<u64> = CountWindow::new(capacity);
        let mut all: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for &b in &schedule {
            let batch: Vec<u64> = (0..b).map(|_| { next_id += 1; next_id }).collect();
            all.extend(&batch);
            w.observe(batch, &mut rng);
            let expect: Vec<u64> =
                all[all.len().saturating_sub(capacity)..].to_vec();
            prop_assert_eq!(w.sample(&mut rng), expect);
        }
    }

    #[test]
    fn chao_never_exceeds_capacity_and_never_shrinks_after_fill(
        schedule in schedules(),
        lambda in lambdas(),
        capacity in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: BChao<u64> = BChao::new(lambda, capacity);
        let mut filled = false;
        for &b in &schedule {
            s.observe((0..b).collect(), &mut rng);
            prop_assert!(s.len() <= capacity);
            if filled {
                prop_assert_eq!(s.len(), capacity, "Chao's sample shrank");
            }
            if s.len() == capacity {
                filled = true;
            }
        }
    }

    #[test]
    fn ttbs_sample_is_subset_of_arrivals(
        schedule in prop::collection::vec(5u64..40, 1..20),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let lambda = 0.1;
        let mut s: TTbs<u64> = TTbs::new(lambda, 20, 5.0);
        let mut next_id = 0u64;
        let mut arrived = std::collections::HashSet::new();
        for &b in &schedule {
            let batch: Vec<u64> = (0..b).map(|_| { next_id += 1; next_id }).collect();
            arrived.extend(batch.iter().copied());
            s.observe(batch, &mut rng);
            for item in s.sample(&mut rng) {
                prop_assert!(arrived.contains(&item));
            }
        }
    }

    #[test]
    fn btbs_zero_lambda_accumulates_everything(
        schedule in schedules(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: BTbs<u64> = BTbs::new(0.0);
        let total: u64 = schedule.iter().sum();
        for &b in &schedule {
            s.observe((0..b).collect(), &mut rng);
        }
        prop_assert_eq!(s.len() as u64, total);
    }

    #[test]
    fn rtbs_sample_items_come_from_the_stream(
        schedule in schedules(),
        lambda in lambdas(),
        capacity in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s: RTbs<(usize, u64)> = RTbs::new(lambda, capacity);
        for (t, &b) in schedule.iter().enumerate() {
            s.observe((0..b).map(|i| (t, i)).collect(), &mut rng);
        }
        for (t, i) in s.sample(&mut rng) {
            prop_assert!(t < schedule.len());
            prop_assert!(i < schedule[t]);
        }
    }
}
