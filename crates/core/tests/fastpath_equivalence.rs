//! Regression tests proving the optimized, monomorphized R-TBS hot path is
//! statistically (and, with a shared seed, *bitwise*) equivalent to the
//! object-safe `dyn` adapter, and that both still satisfy the paper's
//! distributional guarantees.
//!
//! The two paths run the same code — the adapter merely instantiates the
//! generic methods at `R = dyn RngCore` — so with identical seeds they must
//! consume the RNG stream identically and produce identical trajectories.
//! On top of that exact check, seeded Monte-Carlo runs re-verify Theorem
//! 4.2 inclusion probabilities and the §6.3 equilibrium-size prediction
//! through each path independently, using the same tolerance machinery as
//! the `rtbs` unit tests (4.5σ binomial bands plus a small absolute
//! floor).

use rand::{RngCore, SeedableRng};
use tbs_core::traits::{BatchSampler, TimedBatchSampler};
use tbs_core::RTbs;
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Items tagged with (batch index, item index) for inclusion accounting.
type Tagged = (usize, u64);

/// Drive `sampler` through `schedule` and realize the final sample, either
/// through the inherent generic API (`fast = true`) or through
/// `&mut dyn BatchSampler` + `&mut dyn RngCore` (`fast = false`).
fn run_schedule(
    lambda: f64,
    capacity: usize,
    schedule: &[u64],
    fast: bool,
    rng: &mut Xoshiro256PlusPlus,
) -> (RTbs<Tagged>, Vec<Tagged>) {
    let mut s: RTbs<Tagged> = RTbs::new(lambda, capacity);
    if fast {
        for (bi, &b) in schedule.iter().enumerate() {
            s.observe((0..b).map(|i| (bi, i)).collect(), rng);
        }
        let sample = s.sample(rng);
        (s, sample)
    } else {
        let dyn_rng: &mut dyn RngCore = rng;
        {
            let dyn_sampler: &mut dyn BatchSampler<Tagged> = &mut s;
            for (bi, &b) in schedule.iter().enumerate() {
                dyn_sampler.observe((0..b).map(|i| (bi, i)).collect(), dyn_rng);
            }
        }
        let sample = BatchSampler::sample(&s, dyn_rng);
        (s, sample)
    }
}

#[test]
fn same_seed_trajectories_are_bitwise_identical() {
    // The adapter may not change how the RNG stream is consumed: with a
    // shared seed, weights AND realized samples must match exactly at
    // every step, across all four transition kinds.
    let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3, 12, 1, 0, 5];
    for seed in 0..20u64 {
        let mut rng_fast = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut rng_dyn = Xoshiro256PlusPlus::seed_from_u64(seed);
        let (s_fast, sample_fast) = run_schedule(0.4, 6, schedule, true, &mut rng_fast);
        let (s_dyn, sample_dyn) = run_schedule(0.4, 6, schedule, false, &mut rng_dyn);
        assert_eq!(s_fast.total_weight(), s_dyn.total_weight(), "seed {seed}");
        assert_eq!(s_fast.sample_weight(), s_dyn.sample_weight(), "seed {seed}");
        assert_eq!(
            sample_fast, sample_dyn,
            "seed {seed}: realized samples diverged"
        );
        assert_eq!(
            rng_fast.state(),
            rng_dyn.state(),
            "seed {seed}: RNG streams consumed differently"
        );
    }
}

#[test]
fn timed_gaps_agree_across_paths() {
    // observe_after must route through the same memoized decay factors on
    // both paths.
    let gaps = [1.0, 0.5, 0.5, 2.5, 1.0, 0.25];
    for seed in 0..10u64 {
        let mut rng_fast = Xoshiro256PlusPlus::seed_from_u64(1000 + seed);
        let mut rng_dyn = Xoshiro256PlusPlus::seed_from_u64(1000 + seed);
        let mut s_fast: RTbs<u64> = RTbs::new(0.3, 50);
        let mut s_dyn: RTbs<u64> = RTbs::new(0.3, 50);
        for (t, &gap) in gaps.iter().enumerate() {
            let batch: Vec<u64> = (0..30).map(|i| t as u64 * 100 + i).collect();
            s_fast.observe_after(batch.clone(), gap, &mut rng_fast);
            let d: &mut dyn TimedBatchSampler<u64> = &mut s_dyn;
            d.observe_after(batch, gap, &mut rng_dyn);
            assert_eq!(s_fast.total_weight(), s_dyn.total_weight(), "gap step {t}");
            assert_eq!(
                s_fast.sample_weight(),
                s_dyn.sample_weight(),
                "gap step {t}"
            );
        }
    }
}

/// Monte-Carlo Theorem 4.2 check through one path: for every batch,
/// `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` within a 4.5σ band.
fn check_theorem_4_2(fast: bool, seed: u64) {
    let lambda = 0.4f64;
    let n = 6usize;
    let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3];
    let trials = 60_000usize;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);

    let mut appear: Vec<u64> = vec![0; schedule.len()];
    let mut w_final = 0.0;
    let mut c_final = 0.0;
    for _ in 0..trials {
        let (s, sample) = run_schedule(lambda, n, schedule, fast, &mut rng);
        w_final = s.total_weight();
        c_final = s.sample_weight();
        for (bi, _) in sample {
            appear[bi] += 1;
        }
    }
    let t_final = schedule.len() as f64 - 1.0;
    for (bi, &b) in schedule.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let age = t_final - bi as f64;
        let w_item = (-lambda * age).exp();
        let expect = (c_final / w_final) * w_item;
        let phat = appear[bi] as f64 / (trials as f64 * b as f64);
        let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.004;
        assert!(
            (phat - expect).abs() < tol,
            "path {}: batch {bi}: phat {phat} vs expect {expect}",
            if fast { "fast" } else { "dyn" }
        );
    }
}

#[test]
fn theorem_4_2_holds_on_fast_path() {
    check_theorem_4_2(true, 42);
}

#[test]
fn theorem_4_2_holds_on_dyn_path() {
    check_theorem_4_2(false, 43);
}

/// §6.3 equilibrium: n = 1600, b = 100, λ = 0.07 ⇒ C* = b/(1−e^{−λ}) ≈ 1479.
fn check_equilibrium(fast: bool, seed: u64) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut s: RTbs<u64> = RTbs::new(0.07, 1600);
    for t in 0..400u64 {
        let batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
        if fast {
            s.observe(batch, &mut rng);
        } else {
            let d: &mut dyn BatchSampler<u64> = &mut s;
            d.observe(batch, &mut rng);
        }
    }
    assert!(!s.is_saturated());
    let c = s.sample_weight();
    assert!(
        (c - 1479.0).abs() < 2.0,
        "path {}: equilibrium sample weight {c}, expected ≈1479",
        if fast { "fast" } else { "dyn" }
    );
}

#[test]
fn equilibrium_size_holds_on_fast_path() {
    check_equilibrium(true, 7);
}

#[test]
fn equilibrium_size_holds_on_dyn_path() {
    check_equilibrium(false, 8);
}
