//! Proof that steady-state `observe` performs **zero heap allocations**
//! beyond the caller-provided batch.
//!
//! A counting global allocator tallies every `alloc`/`realloc`/
//! `alloc_zeroed`. Each sampler is warmed past its steady state (so every
//! internal `Vec` reaches its high-water capacity), the measured batches
//! are pre-generated, and then the allocation counter must not move while
//! the batches are fed. Deallocation of the consumed batch vectors is
//! intentionally not counted — handing over the batch is the caller's
//! cost by contract.
//!
//! Everything runs inside a single `#[test]` because the counter is
//! process-global and the libtest harness runs tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::SeedableRng;
use tbs_core::{BChao, BTbs, BatchedReservoir, CountWindow, RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Batch sizes at step `t` for the schedule used in one scenario.
fn gen(schedule: impl Fn(usize) -> usize, from: usize, count: usize) -> Vec<Vec<u64>> {
    (from..from + count)
        .map(|t| {
            (0..schedule(t) as u64)
                .map(|i| t as u64 * 10_000 + i)
                .collect()
        })
        .collect()
}

/// Warm `feed` with `warmup` batches, then assert that feeding `measured`
/// further pre-generated batches allocates nothing.
fn assert_steady_state_alloc_free(
    label: &str,
    schedule: impl Fn(usize) -> usize + Copy,
    warmup: usize,
    measured: usize,
    mut feed: impl FnMut(Vec<u64>, &mut Xoshiro256PlusPlus),
) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xA110C);
    for batch in gen(schedule, 0, warmup) {
        feed(batch, &mut rng);
    }
    let batches = gen(schedule, warmup, measured);
    let before = ALLOCS.load(Ordering::SeqCst);
    for batch in batches {
        feed(batch, &mut rng);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations in {measured} steady-state observe calls",
        after - before
    );
}

#[test]
fn steady_state_observe_allocates_nothing() {
    // ——— R-TBS across all three stream regimes. ———
    // Saturated: n = 1000, λ = 0.1, b = 100 ⇒ W* ≈ 1051 > n; every step is
    // the saturated→saturated in-place batch replacement.
    let mut rtbs_sat: RTbs<u64> = RTbs::new(0.1, 1000);
    assert_steady_state_alloc_free(
        "R-TBS saturated",
        |_| 100,
        500,
        500,
        |b, rng| rtbs_sat.observe(b, rng),
    );

    // Unsaturated: n = 1600, λ = 0.07 ⇒ C* ≈ 1479 < n; every step is
    // decay + in-place downsample + push into the retained buffer.
    let mut rtbs_unsat: RTbs<u64> = RTbs::new(0.07, 1600);
    assert_steady_state_alloc_free(
        "R-TBS unsaturated",
        |_| 100,
        500,
        500,
        |b, rng| rtbs_unsat.observe(b, rng),
    );

    // Bursty: erratic sizes exercise all four transitions. The warmup
    // covers a full cycle so every transition's buffers hit high water.
    let bursty = |t: usize| [0usize, 1, 250, 7, 90, 1000][t % 6];
    let mut rtbs_bursty: RTbs<u64> = RTbs::new(0.1, 1000);
    assert_steady_state_alloc_free("R-TBS bursty", bursty, 600, 600, |b, rng| {
        rtbs_bursty.observe(b, rng)
    });

    // Real-valued gaps through the memoized decay cache.
    let mut rtbs_gap: RTbs<u64> = RTbs::new(0.1, 1000);
    assert_steady_state_alloc_free(
        "R-TBS observe_after",
        |_| 100,
        500,
        500,
        |b, rng| rtbs_gap.observe_after(b, 0.5, rng),
    );

    // ——— The other bounded/targeted samplers. ———
    let mut ttbs: TTbs<u64> = TTbs::new(0.1, 1000, 100.0);
    assert_steady_state_alloc_free("T-TBS", |_| 100, 2000, 300, |b, rng| ttbs.observe(b, rng));

    let mut btbs: BTbs<u64> = BTbs::new(0.1);
    assert_steady_state_alloc_free("B-TBS", |_| 100, 2000, 300, |b, rng| btbs.observe(b, rng));

    let mut unif: BatchedReservoir<u64> = BatchedReservoir::new(1000);
    assert_steady_state_alloc_free("Unif", |_| 100, 500, 500, |b, rng| unif.observe(b, rng));

    // B-Chao in the well-fed regime (no overweight bookkeeping).
    let mut chao: BChao<u64> = BChao::new(0.05, 500);
    assert_steady_state_alloc_free("B-Chao", |_| 200, 300, 300, |b, rng| chao.observe(b, rng));

    let mut sw: CountWindow<u64> = CountWindow::new(1000);
    assert_steady_state_alloc_free("SW", |_| 100, 200, 500, |b, rng| sw.observe(b, rng));

    // ——— sample_into with a warm caller buffer. ———
    // Same single-test rule: any concurrently running test would perturb
    // the global counter, so this check lives here too.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xB0FFE2);
    let mut s: RTbs<u64> = RTbs::new(0.1, 1000);
    for batch in gen(|_| 100, 0, 500) {
        s.observe(batch, &mut rng);
    }
    // Capacity n + 1 covers the worst-case latent footprint ⌊C⌋ + 1.
    let mut out: Vec<u64> = Vec::with_capacity(1001);
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..200 {
        s.sample_into(&mut rng, &mut out);
        assert!(out.len() <= 1000);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sample_into allocated despite warm buffer"
    );
}
