//! Statistical equivalence of K-shard merged samples to single-node
//! samplers.
//!
//! The shard-merge algebra (`tbs_core::merge`) claims that K independently
//! maintained shard samplers, fed a deterministic partition of the stream
//! and merged on demand, realize samples from the *same distribution* as
//! one single-node sampler over the interleaved stream. These tests verify
//! that claim with the same machinery the single-node fast-path tests use
//! (`fastpath_equivalence.rs`): seeded Monte-Carlo checks of Theorem 4.2
//! inclusion probabilities (4.5σ binomial bands plus a small absolute
//! floor) and the §6.3 equilibrium-size prediction, for K up to 32 —
//! plus exact checks of the deterministic scalar state (W, C) against the
//! single-node recursion.
//!
//! Every drive partitions batches with the engine's [`BalancedSplitter`],
//! whose ±1 per-shard weight deviation is exactly what the `⌈n/K⌉+1`
//! adaptive shard capacity absorbs; the Theorem 4.2 checks at K = 16 and
//! 32 are the high-shard-count regression the 8-shard cliff fix demands.

use rand::SeedableRng;
use tbs_core::merge::{BalancedSplitter, MergeableSample, ShardSpec};
use tbs_core::{RTbs, TTbs};
use tbs_stats::rng::Xoshiro256PlusPlus;

/// Items tagged with (batch index, item index) for inclusion accounting.
type Tagged = (usize, u64);

/// Feed `schedule` through K shard R-TBS samplers (balanced deterministic
/// chunk partitioning, as the engine does) and return the merged sampler.
fn run_sharded_rtbs(
    spec: &ShardSpec,
    schedule: &[u64],
    rng: &mut Xoshiro256PlusPlus,
) -> RTbs<Tagged> {
    let mut shards = RTbs::<Tagged>::make_shards(spec);
    let mut splitter = BalancedSplitter::new(spec.lambda, spec.shards);
    let mut parts: Vec<Vec<Tagged>> = vec![Vec::new(); spec.shards];
    for (bi, &b) in schedule.iter().enumerate() {
        let mut batch: Vec<Tagged> = (0..b).map(|i| (bi, i)).collect();
        splitter.split(&mut batch, &mut parts);
        for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
            shard.observe_shard(sub, rng);
        }
    }
    RTbs::merge_shards(shards, spec, rng)
}

/// Monte-Carlo Theorem 4.2 check for the merged K-shard sampler: for every
/// batch, `Pr[i ∈ S_t] = (C_t/W_t)·w_t(i)` within a 4.5σ band.
fn check_merged_theorem_4_2(k: usize, seed: u64) {
    let lambda = 0.4f64;
    let n = 6usize;
    let spec = ShardSpec::rtbs(lambda, n, k);
    let schedule: &[u64] = &[4, 4, 0, 8, 0, 0, 3];
    let trials = 60_000usize;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);

    let mut appear: Vec<u64> = vec![0; schedule.len()];
    let mut w_final = 0.0;
    let mut c_final = 0.0;
    let mut sample = Vec::new();
    for _ in 0..trials {
        let merged = run_sharded_rtbs(&spec, schedule, &mut rng);
        w_final = merged.total_weight();
        c_final = merged.sample_weight();
        merged.realize_into(&mut rng, &mut sample);
        for &(bi, _) in &sample {
            appear[bi] += 1;
        }
    }
    let t_final = schedule.len() as f64 - 1.0;
    for (bi, &b) in schedule.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let age = t_final - bi as f64;
        let w_item = (-lambda * age).exp();
        let expect = (c_final / w_final) * w_item;
        let phat = appear[bi] as f64 / (trials as f64 * b as f64);
        let tol = 4.5 * (expect * (1.0 - expect) / (trials as f64 * b as f64)).sqrt() + 0.004;
        assert!(
            (phat - expect).abs() < tol,
            "K={k}: batch {bi}: phat {phat} vs expect {expect}"
        );
    }
}

#[test]
fn merged_2_shards_satisfy_theorem_4_2() {
    check_merged_theorem_4_2(2, 101);
}

#[test]
fn merged_4_shards_satisfy_theorem_4_2() {
    check_merged_theorem_4_2(4, 102);
}

#[test]
fn merged_8_shards_satisfy_theorem_4_2() {
    check_merged_theorem_4_2(8, 103);
}

#[test]
fn merged_16_shards_satisfy_theorem_4_2() {
    check_merged_theorem_4_2(16, 104);
}

#[test]
fn merged_32_shards_satisfy_theorem_4_2() {
    check_merged_theorem_4_2(32, 105);
}

#[test]
fn merged_weights_match_single_node_recursion_exactly() {
    // (W, C) are deterministic functions of the batch-size schedule; the
    // merged state must reproduce the single-node trajectory at every
    // merge point, for every K and across all four transition kinds.
    let schedule: &[u64] = &[20, 20, 0, 0, 100, 0, 5, 5, 5, 0, 0, 0, 0, 40];
    for k in [2usize, 4, 8] {
        let spec = ShardSpec::rtbs(0.1, 50, k);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut single: RTbs<u64> = RTbs::new(0.1, 50);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut splitter = BalancedSplitter::new(spec.lambda, k);
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
        for (t, &b) in schedule.iter().enumerate() {
            let batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
            single.observe(batch.clone(), &mut rng);
            let mut batch = batch;
            splitter.split(&mut batch, &mut parts);
            for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                shard.observe_shard(sub, &mut rng);
            }
            // Merge a snapshot (clones) every step so every transition is
            // checked; keep the live shards running.
            let merged = RTbs::merge_shards(shards.clone(), &spec, &mut rng);
            assert!(
                (merged.total_weight() - single.total_weight()).abs() < 1e-9,
                "K={k}, t={t}: W diverged"
            );
            assert!(
                (merged.sample_weight() - single.sample_weight()).abs() < 1e-9,
                "K={k}, t={t}: C diverged"
            );
            assert!(merged.latent().check_invariants().is_ok());
        }
    }
}

#[test]
fn merged_equilibrium_matches_paper_1479() {
    // §6.3: n = 1600, b = 100, λ = 0.07 ⇒ C* = b/(1−e^{−λ}) ≈ 1479, no
    // matter how many shards maintained the sample.
    for k in [2usize, 4, 8] {
        let spec = ShardSpec::rtbs(0.07, 1600, k);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(200 + k as u64);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut splitter = BalancedSplitter::new(spec.lambda, k);
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
        for t in 0..400u64 {
            let mut batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
            splitter.split(&mut batch, &mut parts);
            for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                shard.observe_shard(sub, &mut rng);
            }
        }
        let merged = RTbs::merge_shards(shards, &spec, &mut rng);
        assert!(!merged.is_saturated());
        let c = merged.sample_weight();
        assert!(
            (c - 1479.0).abs() < 2.0,
            "K={k}: equilibrium sample weight {c}, expected ≈1479"
        );
    }
}

#[test]
fn merged_saturated_sample_is_pinned_at_n() {
    // Fig 1(b): n = 1000, b = 100, λ = 0.1 ⇒ W* ≈ 1051 > n. The merged
    // sample must hold exactly n items while each shard stays within its
    // (headroomed) capacity.
    for k in [2usize, 4, 8] {
        let spec = ShardSpec::rtbs(0.1, 1000, k);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(300 + k as u64);
        let mut shards = RTbs::<u64>::make_shards(&spec);
        let mut splitter = BalancedSplitter::new(spec.lambda, k);
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
        for t in 0..300u64 {
            let mut batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
            splitter.split(&mut batch, &mut parts);
            for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                shard.observe_shard(sub, &mut rng);
            }
        }
        let merged = RTbs::merge_shards(shards, &spec, &mut rng);
        assert!(merged.is_saturated(), "K={k}");
        let mut sample = Vec::new();
        merged.realize_into(&mut rng, &mut sample);
        assert_eq!(sample.len(), 1000, "K={k}");
    }
}

#[test]
fn sharding_is_deterministic_given_seed_and_shard_count() {
    // Same seed + same K ⇒ bit-identical merged realization, because the
    // balanced partitioning is a pure function of the batch-size history
    // and every shard consumes its own RNG stream in batch order.
    let schedule: &[u64] = &[40, 0, 7, 90, 3, 0, 250, 11];
    for k in [2usize, 4, 8] {
        let spec = ShardSpec::rtbs(0.2, 64, k);
        let run = |seed: u64| -> (f64, Vec<u64>) {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            let mut shards = RTbs::<u64>::make_shards(&spec);
            let mut splitter = BalancedSplitter::new(spec.lambda, k);
            let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
            for (t, &b) in schedule.iter().enumerate() {
                let mut batch: Vec<u64> = (0..b).map(|i| t as u64 * 1000 + i).collect();
                splitter.split(&mut batch, &mut parts);
                for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                    shard.observe_shard(sub, &mut rng);
                }
            }
            let merged = RTbs::merge_shards(shards, &spec, &mut rng);
            let mut sample = Vec::new();
            merged.realize_into(&mut rng, &mut sample);
            (merged.total_weight(), sample)
        };
        let (w1, s1) = run(77);
        let (w2, s2) = run(77);
        assert_eq!(w1, w2, "K={k}");
        assert_eq!(s1, s2, "K={k}: merged samples diverged across runs");
        let (_, s3) = run(78);
        assert_ne!(s1, s3, "K={k}: different seeds produced identical runs");
    }
}

// ——— T-TBS ———

/// Feed a constant-rate stream through K shard T-TBS samplers and return
/// the merged sampler.
fn run_sharded_ttbs(
    spec: &ShardSpec,
    batches: u64,
    b: u64,
    rng: &mut Xoshiro256PlusPlus,
) -> TTbs<u64> {
    let mut shards = TTbs::<u64>::make_shards(spec);
    let mut splitter = BalancedSplitter::new(spec.lambda, spec.shards);
    let mut parts: Vec<Vec<u64>> = vec![Vec::new(); spec.shards];
    for t in 0..batches {
        let mut batch: Vec<u64> = (0..b).map(|i| t * b + i).collect();
        splitter.split(&mut batch, &mut parts);
        for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
            shard.observe_shard(sub, rng);
        }
    }
    TTbs::merge_shards(shards, spec, rng)
}

#[test]
fn merged_ttbs_equilibrium_mean_is_target() {
    // Theorem 3.1(ii)/(iii): the time-averaged merged sample size converges
    // to the global target n, for every shard count.
    for k in [2usize, 4, 8] {
        let spec = ShardSpec::ttbs(0.1, 1000, 100.0, k);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(400 + k as u64);
        let mut shards = TTbs::<u64>::make_shards(&spec);
        let mut splitter = BalancedSplitter::new(spec.lambda, k);
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
        // Warm to steady state, then time-average.
        let mut acc = 0.0;
        let rounds = 500u64;
        for t in 0..300 + rounds {
            let mut batch: Vec<u64> = (0..100).map(|i| t * 100 + i).collect();
            splitter.split(&mut batch, &mut parts);
            for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                shard.observe_shard(sub, &mut rng);
            }
            if t >= 300 {
                let size: usize = shards.iter().map(TTbs::len).sum();
                acc += size as f64;
            }
        }
        let mean = acc / rounds as f64;
        assert!(
            (mean / 1000.0 - 1.0).abs() < 0.05,
            "K={k}: mean merged size {mean}, target 1000"
        );
    }
}

#[test]
fn merged_ttbs_inclusion_ratio_is_exponential() {
    // Property (1) on the merged sample: items one batch apart appear with
    // probability ratio e^{−λ}.
    let lambda = 0.5f64;
    let trials = 30_000usize;
    for k in [2usize, 4] {
        let spec = ShardSpec::ttbs(lambda, 40, 20.0, k);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(500 + k as u64);
        let mut count_old = 0u64;
        let mut count_new = 0u64;
        for _ in 0..trials {
            let mut shards = TTbs::<u64>::make_shards(&spec);
            let mut splitter = BalancedSplitter::new(spec.lambda, k);
            let mut parts: Vec<Vec<u64>> = vec![Vec::new(); k];
            // Batch 1 tagged 0..20, batch 2 tagged 100..120, batch 3 empty.
            for (_t, base) in [(0usize, 0u64), (1, 100), (2, u64::MAX)] {
                let mut batch: Vec<u64> = if base == u64::MAX {
                    Vec::new()
                } else {
                    (base..base + 20).collect()
                };
                splitter.split(&mut batch, &mut parts);
                for (shard, sub) in shards.iter_mut().zip(parts.iter_mut()) {
                    shard.observe_shard(sub, &mut rng);
                }
            }
            let merged = TTbs::merge_shards(shards, &spec, &mut rng);
            count_old += merged.items().iter().filter(|&&x| x < 100).count() as u64;
            count_new += merged.items().iter().filter(|&&x| x >= 100).count() as u64;
        }
        let ratio = count_old as f64 / count_new as f64;
        let expect = (-lambda).exp();
        assert!(
            (ratio - expect).abs() < 0.05,
            "K={k}: ratio {ratio} vs e^-lambda {expect}"
        );
    }
}

#[test]
fn merged_ttbs_matches_single_node_size_distribution_mean() {
    // E[|S_t|] transient (Theorem 3.1(ii)) through the merged path.
    let (lambda, n, b) = (0.2f64, 50usize, 20.0);
    let t = 5u64;
    let p = (-lambda).exp();
    let expect = n as f64 + p.powi(t as i32) * (0.0 - n as f64);
    let spec = ShardSpec::ttbs(lambda, n, b, 4);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(600);
    let trials = 3_000;
    let mut acc = 0.0;
    for _ in 0..trials {
        let merged = run_sharded_ttbs(&spec, t, 20, &mut rng);
        acc += merged.len() as f64;
    }
    let mean = acc / trials as f64;
    assert!(
        (mean - expect).abs() < 1.0,
        "mean {mean} vs theory {expect}"
    );
}
