//! Multinomial naive Bayes over bags of words (§6.4).
//!
//! The paper follows Katakis et al. and classifies messages as
//! interesting / not-interesting with "Naive Bayes with a bag of words
//! model". Implemented from scratch: multinomial likelihood with Laplace
//! (add-one) smoothing, log-space scoring.

use tbs_datagen::text::Message;

/// Binary multinomial naive-Bayes text classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    vocab_size: usize,
    /// Per-class document counts \[not-interesting, interesting\].
    doc_counts: [u64; 2],
    /// Per-class total token counts.
    token_totals: [u64; 2],
    /// Per-class per-word token counts, `word_counts[class][word]`.
    word_counts: [Vec<u64>; 2],
    trained: bool,
}

impl NaiveBayes {
    /// New untrained classifier over a vocabulary of `vocab_size` words.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` is zero.
    pub fn new(vocab_size: usize) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        Self {
            vocab_size,
            doc_counts: [0; 2],
            token_totals: [0; 2],
            word_counts: [vec![0; vocab_size], vec![0; vocab_size]],
            trained: false,
        }
    }

    /// Retrain from scratch on the given sample of messages.
    pub fn train(&mut self, sample: &[Message]) {
        self.doc_counts = [0; 2];
        self.token_totals = [0; 2];
        for counts in &mut self.word_counts {
            counts.iter_mut().for_each(|c| *c = 0);
        }
        for msg in sample {
            let class = usize::from(msg.interesting);
            self.doc_counts[class] += 1;
            for &tok in &msg.tokens {
                let tok = tok as usize;
                assert!(tok < self.vocab_size, "token {tok} outside vocabulary");
                self.word_counts[class][tok] += 1;
                self.token_totals[class] += 1;
            }
        }
        self.trained = !sample.is_empty();
    }

    /// Whether the classifier has seen any training data.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Log posterior score (up to the shared evidence constant) of `class`
    /// for a token sequence, with add-one smoothing.
    fn log_score(&self, tokens: &[u32], class: usize) -> f64 {
        let total_docs = (self.doc_counts[0] + self.doc_counts[1]) as f64;
        // Laplace-smoothed class prior (classes never get −∞).
        let prior = (self.doc_counts[class] as f64 + 1.0) / (total_docs + 2.0);
        let denom = self.token_totals[class] as f64 + self.vocab_size as f64;
        let mut score = prior.ln();
        for &tok in tokens {
            let count = self.word_counts[class][tok as usize] as f64;
            score += ((count + 1.0) / denom).ln();
        }
        score
    }

    /// Predict whether a message is interesting. Returns `None` if
    /// untrained.
    pub fn predict(&self, tokens: &[u32]) -> Option<bool> {
        if !self.trained {
            return None;
        }
        Some(self.log_score(tokens, 1) > self.log_score(tokens, 0))
    }

    /// Percentage of messages in `batch` whose predicted interest label is
    /// wrong; untrained models misclassify everything.
    pub fn misclassification_pct(&self, batch: &[Message]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let wrong = batch
            .iter()
            .filter(|m| self.predict(&m.tokens) != Some(m.interesting))
            .count();
        100.0 * wrong as f64 / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_datagen::text::UsenetGenerator;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn msg(tokens: Vec<u32>, interesting: bool) -> Message {
        Message {
            tokens,
            topic: 0,
            interesting,
        }
    }

    #[test]
    fn learns_a_separable_vocabulary() {
        let mut nb = NaiveBayes::new(4);
        // Words 0,1 ↔ interesting; words 2,3 ↔ boring.
        let sample = vec![
            msg(vec![0, 1, 0], true),
            msg(vec![1, 0, 1], true),
            msg(vec![2, 3, 2], false),
            msg(vec![3, 2, 3], false),
        ];
        nb.train(&sample);
        assert_eq!(nb.predict(&[0, 1]), Some(true));
        assert_eq!(nb.predict(&[2, 3]), Some(false));
    }

    #[test]
    fn untrained_predicts_none() {
        let nb = NaiveBayes::new(10);
        assert_eq!(nb.predict(&[1, 2]), None);
        assert_eq!(nb.misclassification_pct(&[msg(vec![1], true)]), 100.0);
    }

    #[test]
    fn empty_training_set_stays_untrained() {
        let mut nb = NaiveBayes::new(10);
        nb.train(&[]);
        assert!(!nb.is_trained());
    }

    #[test]
    fn smoothing_handles_unseen_words() {
        let mut nb = NaiveBayes::new(100);
        nb.train(&[msg(vec![0], true), msg(vec![1], false)]);
        // Word 99 was never seen in training: must not panic or dominate.
        assert!(nb.predict(&[99]).is_some());
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let mut nb = NaiveBayes::new(10);
        nb.train(&[msg(vec![0, 1], true), msg(vec![2, 3], true)]);
        assert_eq!(nb.predict(&[5]), Some(true));
    }

    #[test]
    fn retraining_forgets_previous_counts() {
        let mut nb = NaiveBayes::new(4);
        nb.train(&[msg(vec![0, 0, 0], true), msg(vec![1], false)]);
        assert_eq!(nb.predict(&[0]), Some(true));
        // Flip the association.
        nb.train(&[msg(vec![0, 0, 0], false), msg(vec![1], true)]);
        assert_eq!(nb.predict(&[0]), Some(false));
    }

    #[test]
    fn learns_current_usenet_phase() {
        // Train on phase-0 messages: topic 0 is interesting. The classifier
        // should beat chance comfortably on held-out phase-0 data.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = UsenetGenerator::paper();
        let train: Vec<Message> = (0..250).map(|i| g.message(i, &mut rng)).collect();
        // Held-out messages still within phase 0 (indices < 300).
        let test: Vec<Message> = (250..300).map(|i| g.message(i, &mut rng)).collect();
        let mut nb = NaiveBayes::new(g.vocab_size() as usize);
        nb.train(&train);
        let err = nb.misclassification_pct(&test);
        assert!(err < 25.0, "in-phase error {err}%");
    }

    #[test]
    fn stale_model_fails_after_phase_flip() {
        // A model trained on phase 0 mislabels phase-1 data badly: it calls
        // topic 0 interesting when topic 1 now is.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = UsenetGenerator::paper();
        let train: Vec<Message> = (0..250).map(|i| g.message(i, &mut rng)).collect();
        let test: Vec<Message> = (0..200).map(|i| g.message(350 + i, &mut rng)).collect();
        let mut nb = NaiveBayes::new(g.vocab_size() as usize);
        nb.train(&train);
        let err = nb.misclassification_pct(&test);
        assert!(err > 40.0, "stale-model error {err}% unexpectedly low");
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn rejects_empty_vocab() {
        NaiveBayes::new(0);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_token() {
        let mut nb = NaiveBayes::new(2);
        nb.train(&[msg(vec![5], true)]);
    }
}
