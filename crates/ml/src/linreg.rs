//! Ordinary-least-squares linear regression (§6.3).
//!
//! Fitted from scratch via the normal equations `XᵀX β = Xᵀy`, solved with
//! Gaussian elimination and partial pivoting — ample for the paper's
//! two-feature streams and general enough for any small feature count.
//! The §6.3 generator has no intercept term, but the model supports one
//! (enabled by default) as any production regression would.

use tbs_datagen::regression::RegressionPoint;

/// Solve the linear system `a · x = b` in place (Gaussian elimination with
/// partial pivoting). Returns `None` if the matrix is singular to working
/// precision.
// Indexed loops mirror the textbook elimination; iterator forms obscure the
// row/column structure here.
#[allow(clippy::needless_range_loop)]
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    for col in 0..n {
        // Partial pivot: largest |entry| in this column.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// An OLS linear-regression model over fixed-dimension feature vectors.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Fitted coefficients, feature order; last entry is the intercept when
    /// `with_intercept` is set. Empty until trained.
    coef: Vec<f64>,
    with_intercept: bool,
}

impl LinearRegression {
    /// New untrained model; `with_intercept` appends a constant column.
    pub fn new(with_intercept: bool) -> Self {
        Self {
            coef: Vec::new(),
            with_intercept,
        }
    }

    /// Fitted coefficients (empty before training).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Whether the model has been fitted.
    pub fn is_trained(&self) -> bool {
        !self.coef.is_empty()
    }

    /// Fit on the sample by the normal equations. With fewer observations
    /// than parameters (or a singular design) the model keeps its previous
    /// coefficients — the model-management stance that too little data
    /// means "keep the current model" (§1).
    #[allow(clippy::needless_range_loop)]
    pub fn train(&mut self, sample: &[RegressionPoint]) {
        let d_features = 2;
        let d = d_features + usize::from(self.with_intercept);
        if sample.len() < d {
            return;
        }
        // Accumulate XᵀX (d×d) and Xᵀy (d).
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        let mut row = vec![0.0f64; d];
        for p in sample {
            row[0] = p.x[0];
            row[1] = p.x[1];
            if self.with_intercept {
                row[2] = 1.0;
            }
            for i in 0..d {
                for j in i..d {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * p.y;
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
        }
        if let Some(beta) = solve_linear_system(xtx, xty) {
            self.coef = beta;
        }
    }

    /// Predict the response for a feature vector. Returns `None` before the
    /// first successful fit.
    pub fn predict(&self, x: &[f64; 2]) -> Option<f64> {
        if !self.is_trained() {
            return None;
        }
        let mut y = self.coef[0] * x[0] + self.coef[1] * x[1];
        if self.with_intercept {
            y += self.coef[2];
        }
        Some(y)
    }

    /// Mean squared prediction error over a batch. An untrained model is
    /// scored as if predicting 0 for everything.
    pub fn mse(&self, batch: &[RegressionPoint]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch
            .iter()
            .map(|p| {
                let pred = self.predict(&p.x).unwrap_or(0.0);
                (pred - p.y).powi(2)
            })
            .sum::<f64>()
            / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_datagen::modes::Mode;
    use tbs_datagen::regression::RegressionGenerator;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve_linear_system(a, b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![3.0, 7.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_paper_coefficients() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = RegressionGenerator::paper();
        let sample = g.sample_batch(Mode::Normal, 5_000, &mut rng);
        let mut m = LinearRegression::new(true);
        m.train(&sample);
        let c = m.coefficients();
        assert!((c[0] - 4.2).abs() < 0.15, "b1 {}", c[0]);
        assert!((c[1] + 0.4).abs() < 0.15, "b2 {}", c[1]);
        assert!(c[2].abs() < 0.1, "intercept {}", c[2]);
    }

    #[test]
    fn noiseless_fit_is_exact() {
        // Deterministic y = 3x1 − 2x2 + 1.
        let pts: Vec<RegressionPoint> = (0..20)
            .map(|i| {
                let x1 = (i % 5) as f64 / 4.0;
                let x2 = (i / 5) as f64 / 3.0;
                RegressionPoint {
                    x: [x1, x2],
                    y: 3.0 * x1 - 2.0 * x2 + 1.0,
                }
            })
            .collect();
        let mut m = LinearRegression::new(true);
        m.train(&pts);
        let c = m.coefficients();
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] + 2.0).abs() < 1e-9);
        assert!((c[2] - 1.0).abs() < 1e-9);
        assert!(m.mse(&pts) < 1e-18);
    }

    #[test]
    fn mse_near_noise_floor_on_in_mode_data() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = RegressionGenerator::paper();
        let train = g.sample_batch(Mode::Normal, 2_000, &mut rng);
        let test = g.sample_batch(Mode::Normal, 2_000, &mut rng);
        let mut m = LinearRegression::new(true);
        m.train(&train);
        let mse = m.mse(&test);
        assert!(mse > 0.8 && mse < 1.3, "mse {mse} should approach σ²=1");
    }

    #[test]
    fn cross_mode_mse_is_large() {
        // A model trained on normal data is badly wrong on abnormal data —
        // the drift signal of Figure 12.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = RegressionGenerator::paper();
        let train = g.sample_batch(Mode::Normal, 2_000, &mut rng);
        let test = g.sample_batch(Mode::Abnormal, 2_000, &mut rng);
        let mut m = LinearRegression::new(true);
        m.train(&train);
        assert!(m.mse(&test) > 5.0);
    }

    #[test]
    fn too_little_data_keeps_previous_model() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g = RegressionGenerator::paper();
        let mut m = LinearRegression::new(true);
        m.train(&g.sample_batch(Mode::Normal, 100, &mut rng));
        let before = m.coefficients().to_vec();
        m.train(&[]); // empty sample: keep the current model (§1)
        assert_eq!(m.coefficients(), &before[..]);
    }

    #[test]
    fn untrained_predicts_none_and_scores_raw() {
        let m = LinearRegression::new(true);
        assert!(m.predict(&[0.5, 0.5]).is_none());
        let batch = [RegressionPoint {
            x: [0.0, 0.0],
            y: 2.0,
        }];
        assert_eq!(m.mse(&batch), 4.0);
    }
}
