//! k-nearest-neighbour classification (§6.2).
//!
//! The paper's first model: "a class is predicted for each item in an
//! incoming batch by taking a majority vote of the classes of the k nearest
//! neighbors in the current sample, based on Euclidean distance" with
//! `k = 7`. kNN is the motivating *non-parametric* case: there is no known
//! way to re-engineer it incrementally for drift, so sample-based retraining
//! is the natural adaptation mechanism — retraining is just replacing the
//! training set.

use tbs_datagen::gmm::LabeledPoint;

/// A kNN classifier over 2-D labelled points.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    training: Vec<LabeledPoint>,
}

impl KnnClassifier {
    /// Create an (untrained) classifier with neighbourhood size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            training: Vec::new(),
        }
    }

    /// Replace the training set — "retraining" for an instance-based model.
    pub fn train(&mut self, sample: &[LabeledPoint]) {
        self.training = sample.to_vec();
    }

    /// Number of stored training points.
    pub fn training_size(&self) -> usize {
        self.training.len()
    }

    /// Predict a label by majority vote among the k nearest training
    /// points. Returns `None` when the classifier has no training data.
    /// Distance ties are broken by training-set order; vote ties by the
    /// nearest member of the tied classes (the usual convention).
    pub fn predict(&self, x: f64, y: f64) -> Option<u16> {
        if self.training.is_empty() {
            return None;
        }
        let k = self.k.min(self.training.len());
        // Collect squared distances, then select the k smallest.
        let mut dists: Vec<(f64, u16)> = self
            .training
            .iter()
            .map(|p| ((p.x - x).powi(2) + (p.y - y).powi(2), p.label))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &mut dists[..k];
        // Order neighbours by distance so vote ties resolve to the closest.
        neighbours.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        let mut counts: std::collections::HashMap<u16, (usize, usize)> =
            std::collections::HashMap::new();
        for (rank, &(_, label)) in neighbours.iter().enumerate() {
            let entry = counts.entry(label).or_insert((0, rank));
            entry.0 += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| {
                // More votes wins; among equal votes, the closer first
                // occurrence (smaller rank) wins.
                a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1))
            })
            .map(|(label, _)| label)
    }

    /// Fraction (in percent) of `batch` items misclassified against their
    /// ground-truth labels. An untrained classifier misclassifies
    /// everything (100%).
    pub fn misclassification_pct(&self, batch: &[LabeledPoint]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let wrong = batch
            .iter()
            .filter(|p| self.predict(p.x, p.y) != Some(p.label))
            .count();
        100.0 * wrong as f64 / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, label: u16) -> LabeledPoint {
        LabeledPoint { x, y, label }
    }

    #[test]
    fn single_neighbour_nearest_wins() {
        let mut knn = KnnClassifier::new(1);
        knn.train(&[pt(0.0, 0.0, 0), pt(10.0, 10.0, 1)]);
        assert_eq!(knn.predict(1.0, 1.0), Some(0));
        assert_eq!(knn.predict(9.0, 9.0), Some(1));
    }

    #[test]
    fn majority_vote_overrules_single_closest() {
        let mut knn = KnnClassifier::new(3);
        // One very close label-1 point, two moderately close label-0 points.
        knn.train(&[pt(0.1, 0.0, 1), pt(1.0, 0.0, 0), pt(0.0, 1.0, 0)]);
        assert_eq!(knn.predict(0.0, 0.0), Some(0));
    }

    #[test]
    fn untrained_returns_none() {
        let knn = KnnClassifier::new(7);
        assert_eq!(knn.predict(0.0, 0.0), None);
        assert_eq!(knn.misclassification_pct(&[pt(0.0, 0.0, 3)]), 100.0);
    }

    #[test]
    fn k_larger_than_training_set_uses_all() {
        let mut knn = KnnClassifier::new(7);
        knn.train(&[pt(0.0, 0.0, 2)]);
        assert_eq!(knn.predict(5.0, 5.0), Some(2));
    }

    #[test]
    fn vote_tie_resolves_to_closest_class() {
        let mut knn = KnnClassifier::new(2);
        knn.train(&[pt(0.0, 0.0, 7), pt(3.0, 0.0, 9)]);
        // 1 vote each; class 7 is closer to the query.
        assert_eq!(knn.predict(1.0, 0.0), Some(7));
    }

    #[test]
    fn misclassification_percentage() {
        let mut knn = KnnClassifier::new(1);
        knn.train(&[pt(0.0, 0.0, 0), pt(10.0, 10.0, 1)]);
        let batch = [
            pt(0.5, 0.5, 0), // correct
            pt(9.5, 9.5, 1), // correct
            pt(0.5, 0.5, 1), // wrong (nearest is label 0)
            pt(9.0, 9.0, 0), // wrong
        ];
        assert_eq!(knn.misclassification_pct(&batch), 50.0);
    }

    #[test]
    fn empty_batch_scores_zero() {
        let knn = KnnClassifier::new(1);
        assert_eq!(knn.misclassification_pct(&[]), 0.0);
    }

    #[test]
    fn retraining_replaces_old_knowledge() {
        let mut knn = KnnClassifier::new(1);
        knn.train(&[pt(0.0, 0.0, 0)]);
        assert_eq!(knn.predict(0.0, 0.0), Some(0));
        knn.train(&[pt(0.0, 0.0, 5)]);
        assert_eq!(knn.predict(0.0, 0.0), Some(5));
        assert_eq!(knn.training_size(), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        KnnClassifier::new(0);
    }

    #[test]
    fn separable_clusters_high_accuracy() {
        // Two well-separated Gaussian-ish blobs: accuracy should be perfect.
        let mut knn = KnnClassifier::new(7);
        let mut train = Vec::new();
        for i in 0..20 {
            let o = i as f64 * 0.01;
            train.push(pt(0.0 + o, 0.0 + o, 0));
            train.push(pt(50.0 + o, 50.0 + o, 1));
        }
        knn.train(&train);
        let test = [pt(0.2, 0.3, 0), pt(50.3, 49.9, 1), pt(1.0, 0.0, 0)];
        assert_eq!(knn.misclassification_pct(&test), 0.0);
    }
}
