//! The online model-management loop (§6).
//!
//! Protocol per batch (the paper's evaluation discipline):
//!
//! 1. **Predict** — score the arriving batch with the model trained on the
//!    *current* sample (test-then-train, so every item is out-of-sample);
//! 2. **Update** — feed the batch to the sampling scheme;
//! 3. **Retrain** — refit the model on the scheme's current sample.
//!
//! All competing schemes (R-TBS, sliding window, uniform reservoir, …)
//! observe the *same* generated stream within a run, so per-batch error
//! series are directly comparable.

use rand::RngCore;
use tbs_core::traits::BatchSampler;
use tbs_datagen::modes::Mode;
use tbs_datagen::stream::StreamPlan;

use crate::knn::KnnClassifier;
use crate::linreg::LinearRegression;
use crate::naive_bayes::NaiveBayes;
use tbs_datagen::gmm::LabeledPoint;
use tbs_datagen::regression::RegressionPoint;
use tbs_datagen::text::Message;

/// A model that can be refit from scratch on a sample and scored on a batch.
pub trait OnlineModel<T> {
    /// Refit on the sampler's current sample.
    fn retrain(&mut self, sample: &[T]);
    /// Error of the current fit on an arriving batch (misclassification %
    /// or MSE, depending on the task).
    fn batch_error(&self, batch: &[T]) -> f64;
}

impl OnlineModel<LabeledPoint> for KnnClassifier {
    fn retrain(&mut self, sample: &[LabeledPoint]) {
        self.train(sample);
    }
    fn batch_error(&self, batch: &[LabeledPoint]) -> f64 {
        self.misclassification_pct(batch)
    }
}

impl OnlineModel<RegressionPoint> for LinearRegression {
    fn retrain(&mut self, sample: &[RegressionPoint]) {
        self.train(sample);
    }
    fn batch_error(&self, batch: &[RegressionPoint]) -> f64 {
        self.mse(batch)
    }
}

impl OnlineModel<Message> for NaiveBayes {
    fn retrain(&mut self, sample: &[Message]) {
        self.train(sample);
    }
    fn batch_error(&self, batch: &[Message]) -> f64 {
        self.misclassification_pct(batch)
    }
}

/// One sampling scheme + model under evaluation.
pub struct Contender<T> {
    /// Display name ("R-TBS", "SW", "Unif", …).
    pub name: String,
    /// The sampling scheme maintaining the training sample.
    pub sampler: Box<dyn BatchSampler<T>>,
    /// The model retrained on that sample.
    pub model: Box<dyn OnlineModel<T>>,
}

impl<T> Contender<T> {
    /// Bundle a named sampler/model pair.
    pub fn new(
        name: impl Into<String>,
        sampler: Box<dyn BatchSampler<T>>,
        model: Box<dyn OnlineModel<T>>,
    ) -> Self {
        Self {
            name: name.into(),
            sampler,
            model,
        }
    }
}

/// Per-contender result of one streamed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Contender name.
    pub name: String,
    /// Per-measured-batch error (index = batches after warm-up).
    pub errors: Vec<f64>,
    /// Expected sample size at each measured batch.
    pub sample_sizes: Vec<f64>,
}

/// Execute one run of the plan: every contender sees the same stream.
///
/// `generate` produces the batch items for a `(mode, size)` request.
pub fn run_stream<T: Clone>(
    plan: &StreamPlan,
    mut generate: impl FnMut(Mode, usize, &mut dyn RngCore) -> Vec<T>,
    contenders: &mut [Contender<T>],
    rng: &mut dyn RngCore,
) -> Vec<RunOutput> {
    let mut outputs: Vec<RunOutput> = contenders
        .iter()
        .map(|c| RunOutput {
            name: c.name.clone(),
            errors: Vec::with_capacity(plan.measured_batches as usize),
            sample_sizes: Vec::with_capacity(plan.measured_batches as usize),
        })
        .collect();

    for planned in plan.layout(rng) {
        let batch = generate(planned.mode, planned.size as usize, rng);
        for (contender, out) in contenders.iter_mut().zip(&mut outputs) {
            // 1. Predict on the arriving batch (measured phase only).
            if planned.measured_time.is_some() {
                out.errors.push(contender.model.batch_error(&batch));
            }
            // 2. Update the sample.
            contender.sampler.observe(batch.clone(), rng);
            // 3. Retrain on the refreshed sample.
            let sample = contender.sampler.sample(rng);
            contender.model.retrain(&sample);
            if planned.measured_time.is_some() {
                out.sample_sizes.push(contender.sampler.expected_size());
            }
        }
    }
    outputs
}

/// Element-wise mean of several runs' error series (for plotting stable
/// figure curves). All runs must have equal length and contender order.
pub fn mean_error_series(runs: &[Vec<RunOutput>]) -> Vec<RunOutput> {
    assert!(!runs.is_empty(), "need at least one run");
    let n_contenders = runs[0].len();
    (0..n_contenders)
        .map(|ci| {
            let name = runs[0][ci].name.clone();
            let len = runs[0][ci].errors.len();
            let mut errors = vec![0.0; len];
            let mut sizes = vec![0.0; len];
            for run in runs {
                assert_eq!(run[ci].errors.len(), len, "ragged runs");
                for (i, &e) in run[ci].errors.iter().enumerate() {
                    errors[i] += e;
                }
                for (i, &s) in run[ci].sample_sizes.iter().enumerate() {
                    sizes[i] += s;
                }
            }
            let scale = 1.0 / runs.len() as f64;
            errors.iter_mut().for_each(|e| *e *= scale);
            sizes.iter_mut().for_each(|s| *s *= scale);
            RunOutput {
                name,
                errors,
                sample_sizes: sizes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_core::{BatchedReservoir, CountWindow, RTbs};
    use tbs_datagen::gmm::GmmGenerator;
    use tbs_datagen::modes::ModeSchedule;
    use tbs_datagen::BatchSizeProcess;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    fn small_plan(measured: u64, schedule: ModeSchedule) -> StreamPlan {
        StreamPlan {
            warmup_batches: 20,
            measured_batches: measured,
            batch_sizes: BatchSizeProcess::Deterministic(60),
            schedule,
        }
    }

    fn knn_contenders(lambda: f64, n: usize, k: usize) -> Vec<Contender<LabeledPoint>> {
        vec![
            Contender::new(
                "R-TBS",
                Box::new(RTbs::new(lambda, n)),
                Box::new(KnnClassifier::new(k)),
            ),
            Contender::new(
                "SW",
                Box::new(CountWindow::new(n)),
                Box::new(KnnClassifier::new(k)),
            ),
            Contender::new(
                "Unif",
                Box::new(BatchedReservoir::new(n)),
                Box::new(KnnClassifier::new(k)),
            ),
        ]
    }

    #[test]
    fn run_produces_aligned_series() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let gmm = GmmGenerator::paper(&mut rng);
        let plan = small_plan(15, ModeSchedule::single_event());
        let mut contenders = knn_contenders(0.1, 300, 7);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut contenders,
            &mut rng,
        );
        assert_eq!(outputs.len(), 3);
        for o in &outputs {
            assert_eq!(o.errors.len(), 15);
            assert_eq!(o.sample_sizes.len(), 15);
            assert!(o.errors.iter().all(|&e| (0.0..=100.0).contains(&e)));
        }
    }

    #[test]
    fn warmed_up_models_beat_chance() {
        // With 100 classes, chance accuracy is ~1%; trained kNN on the
        // normal mode must be far better (error well below 90%).
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let gmm = GmmGenerator::paper(&mut rng);
        let plan = small_plan(10, ModeSchedule::AlwaysNormal);
        let mut contenders = knn_contenders(0.1, 300, 7);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut contenders,
            &mut rng,
        );
        for o in &outputs {
            let avg: f64 = o.errors.iter().sum::<f64>() / o.errors.len() as f64;
            assert!(avg < 60.0, "{} error {avg}% — not learning", o.name);
        }
    }

    #[test]
    fn mode_change_spikes_error_then_adaptive_schemes_recover() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let gmm = GmmGenerator::paper(&mut rng);
        let plan = small_plan(30, ModeSchedule::single_event());
        let mut contenders = knn_contenders(0.1, 300, 7);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut contenders,
            &mut rng,
        );
        let rtbs = &outputs[0];
        // Error right after the change (t=10) exceeds error before (t=9)...
        assert!(rtbs.errors[10] > rtbs.errors[9]);
        // ...and R-TBS recovers by the end of the abnormal stretch.
        assert!(rtbs.errors[19] < rtbs.errors[10]);
    }

    #[test]
    fn sample_sizes_respect_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let gmm = GmmGenerator::paper(&mut rng);
        let plan = small_plan(10, ModeSchedule::AlwaysNormal);
        let mut contenders = knn_contenders(0.1, 150, 7);
        let outputs = run_stream(
            &plan,
            |mode, size, rng| gmm.sample_batch(mode, size, rng),
            &mut contenders,
            &mut rng,
        );
        for o in &outputs {
            assert!(o.sample_sizes.iter().all(|&s| s <= 150.0 + 1e-9));
        }
    }

    #[test]
    fn mean_series_averages_runs() {
        let run1 = vec![RunOutput {
            name: "X".into(),
            errors: vec![10.0, 20.0],
            sample_sizes: vec![5.0, 5.0],
        }];
        let run2 = vec![RunOutput {
            name: "X".into(),
            errors: vec![30.0, 40.0],
            sample_sizes: vec![7.0, 7.0],
        }];
        let mean = mean_error_series(&[run1, run2]);
        assert_eq!(mean[0].errors, vec![20.0, 30.0]);
        assert_eq!(mean[0].sample_sizes, vec![6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn mean_series_rejects_empty() {
        mean_error_series(&[]);
    }
}
