//! Drift-triggered retraining (§7's model-management discussion).
//!
//! The paper positions time-biased sampling as *complementary* to
//! drift-detection systems like Velox: "after detecting drift through poor
//! model performance, Velox kicks off batch learning algorithms to retrain
//! the model", and a time-biased sample lets the retrained model recover
//! *quickly*. This module provides that missing piece: a simple
//! error-based drift detector and a retraining policy that refits only on
//! detection (plus a periodic fallback), instead of every batch.
//!
//! The detector flags drift when the current batch error exceeds the
//! rolling mean by `threshold_sigmas` standard deviations (with a floor to
//! ignore noise at near-zero error levels).

use std::collections::VecDeque;

/// Verdict for one observed batch error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftVerdict {
    /// Error is consistent with the recent regime.
    Stable,
    /// Error jumped — the data likely changed; retrain now.
    Drifted,
    /// Not enough history to judge yet.
    Warmup,
}

/// Rolling-statistics drift detector over per-batch error values.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: usize,
    threshold_sigmas: f64,
    /// Minimum absolute error jump to call drift (guards the σ≈0 case).
    min_jump: f64,
    history: VecDeque<f64>,
}

impl DriftDetector {
    /// Create a detector over a rolling window of `window` batch errors,
    /// flagging errors more than `threshold_sigmas` σ above the rolling
    /// mean (and at least `min_jump` above it).
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or the threshold is not positive.
    pub fn new(window: usize, threshold_sigmas: f64, min_jump: f64) -> Self {
        assert!(window >= 2, "need at least two batches of history");
        assert!(threshold_sigmas > 0.0, "threshold must be positive");
        assert!(min_jump >= 0.0, "min_jump must be non-negative");
        Self {
            window,
            threshold_sigmas,
            min_jump,
            history: VecDeque::with_capacity(window),
        }
    }

    /// Sensible defaults: window 10, 3σ, 5-point minimum jump (for errors
    /// expressed in percent).
    pub fn default_for_percent_errors() -> Self {
        Self::new(10, 3.0, 5.0)
    }

    /// Observe one batch error and judge it against the recent regime.
    /// The observation joins the history afterwards (so a drift spike does
    /// not immediately inflate the baseline it is compared against).
    pub fn observe(&mut self, error: f64) -> DriftVerdict {
        let verdict = if self.history.len() < 2 {
            DriftVerdict::Warmup
        } else {
            let n = self.history.len() as f64;
            let mean = self.history.iter().sum::<f64>() / n;
            let var = self
                .history
                .iter()
                .map(|e| (e - mean) * (e - mean))
                .sum::<f64>()
                / (n - 1.0);
            let sd = var.sqrt();
            let limit = mean + (self.threshold_sigmas * sd).max(self.min_jump);
            if error > limit {
                DriftVerdict::Drifted
            } else {
                DriftVerdict::Stable
            }
        };
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(error);
        verdict
    }

    /// Drop all history (e.g. after a retrain, to re-baseline).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Number of errors currently in the rolling window.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

/// Retraining policy: when to refit the model on the current sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainPolicy {
    /// Refit after every batch (the §6 evaluation protocol).
    EveryBatch,
    /// Refit every `k` batches.
    Periodic(u64),
    /// Refit when the detector flags drift, plus every `fallback` batches.
    OnDrift {
        /// Maximum batches between refits even without drift.
        fallback: u64,
    },
}

/// Decides refits by combining a policy with a detector.
#[derive(Debug, Clone)]
pub struct RetrainScheduler {
    policy: RetrainPolicy,
    detector: DriftDetector,
    since_retrain: u64,
    retrains: u64,
}

impl RetrainScheduler {
    /// Build a scheduler; the detector is only consulted for
    /// [`RetrainPolicy::OnDrift`].
    pub fn new(policy: RetrainPolicy, detector: DriftDetector) -> Self {
        Self {
            policy,
            detector,
            since_retrain: 0,
            retrains: 0,
        }
    }

    /// Observe the batch error; returns true when the model should be
    /// refit now.
    pub fn should_retrain(&mut self, batch_error: f64) -> bool {
        let verdict = self.detector.observe(batch_error);
        self.since_retrain += 1;
        let fire = match self.policy {
            RetrainPolicy::EveryBatch => true,
            RetrainPolicy::Periodic(k) => self.since_retrain >= k,
            RetrainPolicy::OnDrift { fallback } => {
                verdict == DriftVerdict::Drifted || self.since_retrain >= fallback
            }
        };
        if fire {
            self.since_retrain = 0;
            self.retrains += 1;
            if matches!(self.policy, RetrainPolicy::OnDrift { .. }) {
                // Re-baseline after adapting.
                self.detector.reset();
            }
        }
        fire
    }

    /// Total refits triggered so far.
    pub fn retrain_count(&self) -> u64 {
        self.retrains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_then_stable_on_flat_series() {
        let mut d = DriftDetector::new(5, 3.0, 2.0);
        assert_eq!(d.observe(10.0), DriftVerdict::Warmup);
        assert_eq!(d.observe(10.5), DriftVerdict::Warmup);
        for _ in 0..20 {
            assert_eq!(d.observe(10.2), DriftVerdict::Stable);
        }
    }

    #[test]
    fn flags_a_jump() {
        let mut d = DriftDetector::new(10, 3.0, 5.0);
        for e in [15.0, 16.0, 15.5, 14.8, 15.2, 16.1, 15.7, 15.0] {
            d.observe(e);
        }
        assert_eq!(d.observe(48.0), DriftVerdict::Drifted);
    }

    #[test]
    fn min_jump_suppresses_tiny_sigma_false_alarms() {
        // Perfectly constant history → σ = 0; a 1-point wiggle must not
        // count as drift when min_jump = 5.
        let mut d = DriftDetector::new(5, 3.0, 5.0);
        for _ in 0..5 {
            d.observe(10.0);
        }
        assert_eq!(d.observe(12.0), DriftVerdict::Stable);
        assert_eq!(d.observe(16.0), DriftVerdict::Drifted);
    }

    #[test]
    fn window_slides() {
        let mut d = DriftDetector::new(3, 3.0, 1.0);
        for e in [1.0, 2.0, 3.0, 4.0, 5.0] {
            d.observe(e);
        }
        assert_eq!(d.history_len(), 3);
    }

    #[test]
    fn reset_requires_rewarmup() {
        let mut d = DriftDetector::new(5, 3.0, 1.0);
        for _ in 0..5 {
            d.observe(1.0);
        }
        d.reset();
        assert_eq!(d.observe(100.0), DriftVerdict::Warmup);
    }

    #[test]
    fn every_batch_policy_always_fires() {
        let mut s = RetrainScheduler::new(
            RetrainPolicy::EveryBatch,
            DriftDetector::default_for_percent_errors(),
        );
        for _ in 0..10 {
            assert!(s.should_retrain(10.0));
        }
        assert_eq!(s.retrain_count(), 10);
    }

    #[test]
    fn periodic_policy_fires_every_k() {
        let mut s = RetrainScheduler::new(
            RetrainPolicy::Periodic(3),
            DriftDetector::default_for_percent_errors(),
        );
        let fires: Vec<bool> = (0..9).map(|_| s.should_retrain(10.0)).collect();
        assert_eq!(
            fires,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn on_drift_policy_fires_on_spike_and_fallback() {
        let mut s = RetrainScheduler::new(
            RetrainPolicy::OnDrift { fallback: 50 },
            DriftDetector::new(5, 3.0, 5.0),
        );
        // Stable regime: no retrains.
        for _ in 0..10 {
            assert!(!s.should_retrain(12.0));
        }
        // Spike → immediate retrain.
        assert!(s.should_retrain(55.0));
        assert_eq!(s.retrain_count(), 1);
        // Post-reset warmup tolerates the new level, then stays quiet until
        // the fallback horizon.
        let mut fired = 0;
        for _ in 0..49 {
            if s.should_retrain(12.0) {
                fired += 1;
            }
        }
        assert!(fired <= 1, "unexpected extra retrains: {fired}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_window() {
        DriftDetector::new(1, 3.0, 1.0);
    }
}
