//! Accuracy / robustness metrics for online model management (§6.2).
//!
//! The paper reports, per sampling scheme:
//!
//! * **accuracy** — the average per-batch error (misclassification % or
//!   MSE) over a run;
//! * **robustness** — the z% *expected shortfall* of the per-batch error
//!   series, computed from `t = 20` onward so the unavoidable error spike
//!   of the very first mode change does not dominate (Table 1 uses 10% ES;
//!   the small Usenet stream uses 20%).

use tbs_stats::summary::{expected_shortfall, mean};

/// Accuracy + robustness summary of one error series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Mean error over the whole measured series.
    pub mean_error: f64,
    /// Mean error from `es_start` onward.
    pub mean_error_after_start: f64,
    /// z% expected shortfall of the series from `es_start` onward.
    pub expected_shortfall: f64,
}

/// Summarize an error series the way Table 1 does.
///
/// `es_start` is the first batch index included in the ES computation
/// (paper: 20); `es_level` the shortfall level (paper: 0.10 for kNN /
/// regression, 0.20 for the short naive-Bayes stream).
pub fn summarize_series(series: &[f64], es_start: usize, es_level: f64) -> SeriesSummary {
    let tail = if es_start < series.len() {
        &series[es_start..]
    } else {
        &[]
    };
    SeriesSummary {
        mean_error: mean(series),
        mean_error_after_start: mean(tail),
        expected_shortfall: if tail.is_empty() {
            0.0
        } else {
            expected_shortfall(tail, es_level)
        },
    }
}

/// Average several runs' summaries (Table 1 averages 30 runs).
pub fn average_summaries(summaries: &[SeriesSummary]) -> SeriesSummary {
    let n = summaries.len().max(1) as f64;
    SeriesSummary {
        mean_error: summaries.iter().map(|s| s.mean_error).sum::<f64>() / n,
        mean_error_after_start: summaries
            .iter()
            .map(|s| s.mean_error_after_start)
            .sum::<f64>()
            / n,
        expected_shortfall: summaries.iter().map(|s| s.expected_shortfall).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_series() {
        let series = vec![10.0; 50];
        let s = summarize_series(&series, 20, 0.10);
        assert_eq!(s.mean_error, 10.0);
        assert_eq!(s.mean_error_after_start, 10.0);
        assert_eq!(s.expected_shortfall, 10.0);
    }

    #[test]
    fn es_ignores_pre_start_spike() {
        // Huge spike before t=20 must not contribute to ES.
        let mut series = vec![10.0; 50];
        series[5] = 100.0;
        let s = summarize_series(&series, 20, 0.10);
        assert_eq!(s.expected_shortfall, 10.0);
        assert!(s.mean_error > 10.0);
    }

    #[test]
    fn es_catches_post_start_spike() {
        let mut series = vec![10.0; 50];
        series[30] = 100.0;
        let s = summarize_series(&series, 20, 0.10);
        // Worst 10% of 30 values = 3 values: 100, 10, 10.
        assert!((s.expected_shortfall - 40.0).abs() < 1e-9);
    }

    #[test]
    fn short_series_handled() {
        let series = vec![5.0; 10];
        let s = summarize_series(&series, 20, 0.10);
        assert_eq!(s.mean_error, 5.0);
        assert_eq!(s.expected_shortfall, 0.0);
        assert_eq!(s.mean_error_after_start, 0.0);
    }

    #[test]
    fn averaging_runs() {
        let a = SeriesSummary {
            mean_error: 10.0,
            mean_error_after_start: 8.0,
            expected_shortfall: 20.0,
        };
        let b = SeriesSummary {
            mean_error: 20.0,
            mean_error_after_start: 12.0,
            expected_shortfall: 40.0,
        };
        let avg = average_summaries(&[a, b]);
        assert_eq!(avg.mean_error, 15.0);
        assert_eq!(avg.mean_error_after_start, 10.0);
        assert_eq!(avg.expected_shortfall, 30.0);
    }

    #[test]
    fn empty_average_is_zero() {
        let avg = average_summaries(&[]);
        assert_eq!(avg.mean_error, 0.0);
    }
}
