//! # tbs-ml
//!
//! From-scratch machine-learning substrate for the EDBT 2018
//! temporally-biased-sampling evaluation: the three model families the
//! paper retrains on maintained samples, the accuracy/robustness metrics it
//! reports, and the test-then-train pipeline tying streams, samplers and
//! models together.
//!
//! * [`knn`] — k-nearest-neighbour classification (§6.2, k = 7);
//! * [`linreg`] — OLS linear regression via normal equations (§6.3);
//! * [`naive_bayes`] — multinomial naive Bayes over bags of words (§6.4);
//! * [`metrics`] — mean error + expected-shortfall robustness summaries
//!   (Table 1);
//! * [`drift`] — error-based drift detection and drift-triggered
//!   retraining policies (the §7 Velox integration);
//! * [`pipeline`] — the predict → update → retrain loop with all competing
//!   schemes observing the same stream.

pub mod drift;
pub mod knn;
pub mod linreg;
pub mod metrics;
pub mod naive_bayes;
pub mod pipeline;

pub use drift::{DriftDetector, DriftVerdict, RetrainPolicy, RetrainScheduler};
pub use knn::KnnClassifier;
pub use linreg::LinearRegression;
pub use metrics::{average_summaries, summarize_series, SeriesSummary};
pub use naive_bayes::NaiveBayes;
pub use pipeline::{mean_error_series, run_stream, Contender, OnlineModel, RunOutput};
