//! Batch-stream assembly: batch-size process × mode schedule × generator.
//!
//! The §6 experiments all follow the same protocol: a warm-up period of
//! normal-mode batches (the classifiers' initial training data), then a
//! measured phase during which the mode schedule drives the generator.
//! [`StreamPlan`] captures the protocol; the ML pipeline iterates it.

use crate::batch::BatchSizeProcess;
use crate::modes::{Mode, ModeSchedule};
use rand::Rng;

/// Experiment stream protocol: warm-up then scheduled modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPlan {
    /// Number of warm-up batches (always normal mode).
    pub warmup_batches: u64,
    /// Number of measured batches after warm-up.
    pub measured_batches: u64,
    /// Batch-size process (applies to warm-up and measured phases alike).
    pub batch_sizes: BatchSizeProcess,
    /// Mode schedule for the measured phase, indexed from 0 at the first
    /// post-warm-up batch.
    pub schedule: ModeSchedule,
}

/// One batch of the planned stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedBatch {
    /// Global batch index (0-based, warm-up included).
    pub index: u64,
    /// Time after warm-up (`None` during warm-up, `Some(0)` for the first
    /// measured batch).
    pub measured_time: Option<u64>,
    /// Mode in force.
    pub mode: Mode,
    /// Number of items to generate.
    pub size: u64,
}

impl StreamPlan {
    /// The §6.2 default: 100 warm-up batches of 100 items.
    pub fn paper_default(measured_batches: u64, schedule: ModeSchedule) -> Self {
        Self {
            warmup_batches: 100,
            measured_batches,
            batch_sizes: BatchSizeProcess::Deterministic(100),
            schedule,
        }
    }

    /// Total number of batches (warm-up + measured).
    pub fn total_batches(&self) -> u64 {
        self.warmup_batches + self.measured_batches
    }

    /// Lay out the full stream of batch descriptors, drawing random batch
    /// sizes from `rng` where the process is stochastic.
    pub fn layout<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<PlannedBatch> {
        (0..self.total_batches())
            .map(|index| {
                let measured_time = index.checked_sub(self.warmup_batches);
                let mode = match measured_time {
                    None => Mode::Normal,
                    Some(t) => self.schedule.mode_at(t),
                };
                PlannedBatch {
                    index,
                    measured_time,
                    mode,
                    size: self.batch_sizes.size_at(index, rng),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn layout_counts_and_modes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let plan = StreamPlan::paper_default(30, ModeSchedule::single_event());
        let batches = plan.layout(&mut rng);
        assert_eq!(batches.len(), 130);
        // Warm-up is all normal with no measured time.
        for b in &batches[..100] {
            assert_eq!(b.mode, Mode::Normal);
            assert_eq!(b.measured_time, None);
            assert_eq!(b.size, 100);
        }
        // Measured phase follows the schedule.
        assert_eq!(batches[100].measured_time, Some(0));
        assert_eq!(batches[100].mode, Mode::Normal);
        assert_eq!(batches[110].mode, Mode::Abnormal);
        assert_eq!(batches[120].mode, Mode::Normal);
    }

    #[test]
    fn layout_with_random_batch_sizes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let plan = StreamPlan {
            warmup_batches: 10,
            measured_batches: 40,
            batch_sizes: BatchSizeProcess::UniformRandom { lo: 0, hi: 200 },
            schedule: ModeSchedule::periodic(10, 10),
        };
        let batches = plan.layout(&mut rng);
        assert_eq!(batches.len(), 50);
        assert!(batches.iter().all(|b| b.size <= 200));
        // Sizes should not all be identical.
        let first = batches[0].size;
        assert!(batches.iter().any(|b| b.size != first));
    }

    #[test]
    fn indices_are_global_and_contiguous() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let plan = StreamPlan::paper_default(5, ModeSchedule::AlwaysNormal);
        let batches = plan.layout(&mut rng);
        for (i, b) in batches.iter().enumerate() {
            assert_eq!(b.index, i as u64);
        }
    }
}
