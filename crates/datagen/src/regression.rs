//! Drifting linear-regression streams (§6.3).
//!
//! `y = b₁x₁ + b₂x₂ + ε` with `x₁, x₂ ~ U(0, 1)` and `ε ~ N(0, 1)`.
//! The coefficient vector flips between `(4.2, −0.4)` in normal mode and
//! `(−3.6, 3.8)` in abnormal mode, so a model trained on the wrong mode's
//! data is badly mis-calibrated — regression's analogue of the flipped
//! class frequencies in the kNN experiment.

use crate::modes::Mode;
use rand::Rng;
use tbs_stats::normal::normal;

/// One observation of the regression stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionPoint {
    /// Feature vector (x₁, x₂).
    pub x: [f64; 2],
    /// Response.
    pub y: f64,
}

/// The two-mode linear data generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionGenerator {
    /// Coefficients in normal mode.
    pub normal_coef: [f64; 2],
    /// Coefficients in abnormal mode.
    pub abnormal_coef: [f64; 2],
    /// Noise standard deviation.
    pub noise_sd: f64,
}

impl Default for RegressionGenerator {
    fn default() -> Self {
        Self::paper()
    }
}

impl RegressionGenerator {
    /// The paper's configuration: `(4.2, −0.4)` / `(−3.6, 3.8)`, σ = 1.
    pub fn paper() -> Self {
        Self {
            normal_coef: [4.2, -0.4],
            abnormal_coef: [-3.6, 3.8],
            noise_sd: 1.0,
        }
    }

    /// The true coefficients under `mode`.
    pub fn coefficients(&self, mode: Mode) -> [f64; 2] {
        match mode {
            Mode::Normal => self.normal_coef,
            Mode::Abnormal => self.abnormal_coef,
        }
    }

    /// Draw one observation under `mode`.
    pub fn sample<R: Rng + ?Sized>(&self, mode: Mode, rng: &mut R) -> RegressionPoint {
        let coef = self.coefficients(mode);
        let x = [rng.gen::<f64>(), rng.gen::<f64>()];
        let y = coef[0] * x[0] + coef[1] * x[1] + normal(rng, 0.0, self.noise_sd);
        RegressionPoint { x, y }
    }

    /// Draw a whole batch under `mode`.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        mode: Mode,
        size: usize,
        rng: &mut R,
    ) -> Vec<RegressionPoint> {
        (0..size).map(|_| self.sample(mode, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;
    use tbs_stats::summary::OnlineMoments;

    #[test]
    fn features_in_unit_square() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = RegressionGenerator::paper();
        for _ in 0..1_000 {
            let p = g.sample(Mode::Normal, &mut rng);
            assert!((0.0..1.0).contains(&p.x[0]));
            assert!((0.0..1.0).contains(&p.x[1]));
        }
    }

    #[test]
    fn mean_response_matches_coefficients() {
        // E[y] = b1·E[x1] + b2·E[x2] = (b1 + b2)/2.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = RegressionGenerator::paper();
        let mut acc = OnlineMoments::new();
        for _ in 0..100_000 {
            acc.push(g.sample(Mode::Normal, &mut rng).y);
        }
        let expect = (4.2 - 0.4) / 2.0;
        assert!((acc.mean() - expect).abs() < 0.02, "mean {}", acc.mean());
    }

    #[test]
    fn abnormal_mode_changes_relationship() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = RegressionGenerator::paper();
        let mut acc = OnlineMoments::new();
        for _ in 0..100_000 {
            acc.push(g.sample(Mode::Abnormal, &mut rng).y);
        }
        let expect = (-3.6 + 3.8) / 2.0;
        assert!((acc.mean() - expect).abs() < 0.02, "mean {}", acc.mean());
    }

    #[test]
    fn residual_noise_is_unit_variance() {
        // Var[y − b·x] = σ² = 1.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g = RegressionGenerator::paper();
        let coef = g.coefficients(Mode::Normal);
        let mut acc = OnlineMoments::new();
        for _ in 0..100_000 {
            let p = g.sample(Mode::Normal, &mut rng);
            acc.push(p.y - coef[0] * p.x[0] - coef[1] * p.x[1]);
        }
        assert!(
            (acc.variance() - 1.0).abs() < 0.03,
            "var {}",
            acc.variance()
        );
    }

    #[test]
    fn batch_sizes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let g = RegressionGenerator::paper();
        assert_eq!(g.sample_batch(Mode::Normal, 100, &mut rng).len(), 100);
    }
}
