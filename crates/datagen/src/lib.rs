//! # tbs-datagen
//!
//! Workload generators reproducing the evaluation streams of the EDBT 2018
//! temporally-biased-sampling paper:
//!
//! * [`batch`] — batch-size processes (deterministic / uniform / geometric
//!   growth and decay) driving Figures 1 and 11;
//! * [`modes`] — the normal/abnormal mode schedules (single event,
//!   `Periodic(δ, η)`) of §6.2;
//! * [`gmm`] — the 100-centroid Gaussian-mixture classification stream with
//!   mode-flipped class frequencies (kNN experiments);
//! * [`regression`] — the drifting two-feature linear stream (§6.3);
//! * [`text`] — a synthetic substitute for the Usenet2 recurring-context
//!   message stream (§6.4); see DESIGN.md for the substitution rationale;
//! * [`stream`] — warm-up + measured-phase stream plans tying the pieces
//!   together.

pub mod batch;
pub mod gmm;
pub mod modes;
pub mod regression;
pub mod stream;
pub mod text;

pub use batch::BatchSizeProcess;
pub use gmm::{GmmGenerator, LabeledPoint};
pub use modes::{Mode, ModeSchedule};
pub use regression::{RegressionGenerator, RegressionPoint};
pub use stream::{PlannedBatch, StreamPlan};
pub use text::{Message, UsenetGenerator};
