//! Gaussian-mixture classification streams (§6.2, kNN experiments).
//!
//! 100 class centroids drawn uniformly in `[0, 80]²`; each data point picks
//! a ground-truth class by mode-dependent relative frequencies — in normal
//! mode the first 50 classes are 5× more frequent than the rest, in abnormal
//! mode 5× *less* — and adds `N(0, 1)` noise per coordinate. Mode flips
//! therefore swap which half of label space dominates, which is what the
//! retrained kNN classifiers must track.

use crate::modes::Mode;
use rand::Rng;
use tbs_stats::normal::normal;

/// A labelled 2-D training/test point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledPoint {
    /// Feature coordinates.
    pub x: f64,
    /// Second feature coordinate.
    pub y: f64,
    /// Ground-truth class (0-based centroid index).
    pub label: u16,
}

/// The Gaussian-mixture generator with mode-switchable class frequencies.
#[derive(Debug, Clone)]
pub struct GmmGenerator {
    centroids: Vec<(f64, f64)>,
    /// Number of classes favoured in normal mode (the first
    /// `frequent_classes` of the centroid list).
    frequent_classes: usize,
    /// Frequency multiplier between favoured and disfavoured halves.
    frequency_ratio: f64,
    /// Per-coordinate Gaussian noise σ.
    noise_sd: f64,
}

impl GmmGenerator {
    /// The paper's configuration: 100 centroids on `[0, 80]²`, 50 frequent
    /// classes, ratio 5, σ = 1.
    pub fn paper<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(100, 80.0, 50, 5.0, 1.0, rng)
    }

    /// Fully parameterized constructor. Centroids are sampled uniformly in
    /// `[0, side]²` from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `frequent_classes > num_classes`, `num_classes == 0`, or
    /// the ratio/σ are non-positive.
    pub fn new<R: Rng + ?Sized>(
        num_classes: usize,
        side: f64,
        frequent_classes: usize,
        frequency_ratio: f64,
        noise_sd: f64,
        rng: &mut R,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(
            frequent_classes <= num_classes,
            "frequent class count exceeds class count"
        );
        assert!(frequency_ratio > 0.0, "frequency ratio must be positive");
        assert!(noise_sd > 0.0, "noise sd must be positive");
        let centroids = (0..num_classes)
            .map(|_| (rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        Self {
            centroids,
            frequent_classes,
            frequency_ratio,
            noise_sd,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Centroid of a class.
    pub fn centroid(&self, class: u16) -> (f64, f64) {
        self.centroids[class as usize]
    }

    /// Probability that a point of the given mode belongs to the *frequent*
    /// (normal-mode-favoured) group.
    fn frequent_group_probability(&self, mode: Mode) -> f64 {
        let k1 = self.frequent_classes as f64;
        let k2 = (self.centroids.len() - self.frequent_classes) as f64;
        match mode {
            // Frequent classes carry weight ratio·k1 against k2.
            Mode::Normal => self.frequency_ratio * k1 / (self.frequency_ratio * k1 + k2),
            // Roles swap: first half is 5× *less* frequent.
            Mode::Abnormal => k1 / (k1 + self.frequency_ratio * k2),
        }
    }

    /// Draw one labelled point under the given mode.
    pub fn sample<R: Rng + ?Sized>(&self, mode: Mode, rng: &mut R) -> LabeledPoint {
        let p_frequent = self.frequent_group_probability(mode);
        let class = if rng.gen::<f64>() < p_frequent {
            rng.gen_range(0..self.frequent_classes)
        } else {
            rng.gen_range(self.frequent_classes..self.centroids.len())
        } as u16;
        let (cx, cy) = self.centroids[class as usize];
        LabeledPoint {
            x: normal(rng, cx, self.noise_sd),
            y: normal(rng, cy, self.noise_sd),
            label: class,
        }
    }

    /// Draw a whole batch under the given mode.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        mode: Mode,
        size: usize,
        rng: &mut R,
    ) -> Vec<LabeledPoint> {
        (0..size).map(|_| self.sample(mode, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tbs_stats::rng::Xoshiro256PlusPlus;

    #[test]
    fn paper_configuration_shape() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = GmmGenerator::paper(&mut rng);
        assert_eq!(g.num_classes(), 100);
        for c in 0..100u16 {
            let (x, y) = g.centroid(c);
            assert!((0.0..=80.0).contains(&x));
            assert!((0.0..=80.0).contains(&y));
        }
    }

    #[test]
    fn normal_mode_favours_first_half_5_to_1() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = GmmGenerator::paper(&mut rng);
        let n = 120_000;
        let first_half = (0..n)
            .filter(|_| g.sample(Mode::Normal, &mut rng).label < 50)
            .count();
        let p = first_half as f64 / n as f64;
        assert!((p - 5.0 / 6.0).abs() < 0.01, "p {p}");
    }

    #[test]
    fn abnormal_mode_flips_frequencies() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = GmmGenerator::paper(&mut rng);
        let n = 120_000;
        let first_half = (0..n)
            .filter(|_| g.sample(Mode::Abnormal, &mut rng).label < 50)
            .count();
        let p = first_half as f64 / n as f64;
        assert!((p - 1.0 / 6.0).abs() < 0.01, "p {p}");
    }

    #[test]
    fn points_cluster_around_their_centroid() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g = GmmGenerator::paper(&mut rng);
        for _ in 0..2_000 {
            let pt = g.sample(Mode::Normal, &mut rng);
            let (cx, cy) = g.centroid(pt.label);
            let d = ((pt.x - cx).powi(2) + (pt.y - cy).powi(2)).sqrt();
            assert!(d < 6.0, "point {d} sds from its centroid");
        }
    }

    #[test]
    fn batch_sampling_counts() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let g = GmmGenerator::paper(&mut rng);
        assert_eq!(g.sample_batch(Mode::Normal, 100, &mut rng).len(), 100);
        assert!(g.sample_batch(Mode::Normal, 0, &mut rng).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(6);
        let g1 = GmmGenerator::paper(&mut r1);
        let g2 = GmmGenerator::paper(&mut r2);
        assert_eq!(
            g1.sample(Mode::Normal, &mut r1),
            g2.sample(Mode::Normal, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "frequent class count")]
    fn rejects_bad_split() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        GmmGenerator::new(10, 80.0, 11, 5.0, 1.0, &mut rng);
    }
}
