//! Normal/abnormal mode schedules (§6.2).
//!
//! The evaluation streams operate in one of two *modes*; the temporal
//! pattern of mode switches is what stresses the samplers:
//!
//! * **Single event** — normal up to `t = 10`, abnormal on `[10, 20)`, then
//!   normal again (a holiday, market drop, outage…).
//! * **Periodic(δ, η)** — δ normal batches alternating with η abnormal ones
//!   (diurnal/weekly periodicities).
//!
//! Times are measured in batches *after warm-up*; warm-up batches (negative
//! times) are always normal.

/// The generation mode of the stream at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The baseline data distribution.
    Normal,
    /// The disrupted distribution (frequencies flipped / coefficients
    /// changed, depending on the generator).
    Abnormal,
}

/// A deterministic schedule of mode switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSchedule {
    /// Never leaves normal mode.
    AlwaysNormal,
    /// Abnormal during `[start, end)` (in batches after warm-up), normal
    /// otherwise — the §6.2 "single event" pattern with `start = 10`,
    /// `end = 20`.
    SingleEvent {
        /// First abnormal batch.
        start: u64,
        /// First batch back to normal.
        end: u64,
    },
    /// `normal` normal batches alternating with `abnormal` abnormal ones,
    /// starting in normal mode — the paper's `Periodic(δ, η)`.
    Periodic {
        /// Length δ of each normal stretch.
        normal: u64,
        /// Length η of each abnormal stretch.
        abnormal: u64,
    },
}

impl ModeSchedule {
    /// The paper's single-event pattern: abnormal on `[10, 20)`.
    pub fn single_event() -> Self {
        ModeSchedule::SingleEvent { start: 10, end: 20 }
    }

    /// The paper's `Periodic(δ, η)` pattern.
    pub fn periodic(delta: u64, eta: u64) -> Self {
        assert!(delta > 0 && eta > 0, "periodic phases must be non-empty");
        ModeSchedule::Periodic {
            normal: delta,
            abnormal: eta,
        }
    }

    /// Mode at time `t` (batches after warm-up). Negative times — i.e.
    /// warm-up — should be queried as... they are not: warm-up is always
    /// [`Mode::Normal`] by convention and handled by the caller.
    pub fn mode_at(&self, t: u64) -> Mode {
        match *self {
            ModeSchedule::AlwaysNormal => Mode::Normal,
            ModeSchedule::SingleEvent { start, end } => {
                if t >= start && t < end {
                    Mode::Abnormal
                } else {
                    Mode::Normal
                }
            }
            ModeSchedule::Periodic { normal, abnormal } => {
                if t % (normal + abnormal) < normal {
                    Mode::Normal
                } else {
                    Mode::Abnormal
                }
            }
        }
    }

    /// Short label used in experiment output, e.g. `P(10,10)`.
    pub fn label(&self) -> String {
        match *self {
            ModeSchedule::AlwaysNormal => "Normal".to_string(),
            ModeSchedule::SingleEvent { .. } => "Single Event".to_string(),
            ModeSchedule::Periodic { normal, abnormal } => {
                format!("P({normal},{abnormal})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_event_window() {
        let s = ModeSchedule::single_event();
        assert_eq!(s.mode_at(0), Mode::Normal);
        assert_eq!(s.mode_at(9), Mode::Normal);
        assert_eq!(s.mode_at(10), Mode::Abnormal);
        assert_eq!(s.mode_at(19), Mode::Abnormal);
        assert_eq!(s.mode_at(20), Mode::Normal);
        assert_eq!(s.mode_at(1000), Mode::Normal);
    }

    #[test]
    fn periodic_10_10_cycles() {
        let s = ModeSchedule::periodic(10, 10);
        for t in 0..10 {
            assert_eq!(s.mode_at(t), Mode::Normal, "t={t}");
        }
        for t in 10..20 {
            assert_eq!(s.mode_at(t), Mode::Abnormal, "t={t}");
        }
        assert_eq!(s.mode_at(20), Mode::Normal);
        assert_eq!(s.mode_at(30), Mode::Abnormal);
    }

    #[test]
    fn periodic_asymmetric() {
        // P(30,10): 30 normal, 10 abnormal.
        let s = ModeSchedule::periodic(30, 10);
        assert_eq!(s.mode_at(29), Mode::Normal);
        assert_eq!(s.mode_at(30), Mode::Abnormal);
        assert_eq!(s.mode_at(39), Mode::Abnormal);
        assert_eq!(s.mode_at(40), Mode::Normal);
    }

    #[test]
    fn labels() {
        assert_eq!(ModeSchedule::periodic(10, 10).label(), "P(10,10)");
        assert_eq!(ModeSchedule::single_event().label(), "Single Event");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_phase() {
        ModeSchedule::periodic(0, 5);
    }
}
